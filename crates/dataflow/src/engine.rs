//! The lazy, memoizing evaluation engine.
//!
//! Paper §2: "When data is present on all of a box's inputs, the box can
//! 'fire', producing results on one or more outputs.  Execution is lazy,
//! evaluating only what is required to produce the demanded
//! visualization."
//!
//! The engine is demand-driven: [`Engine::demand`] pulls one output port,
//! recursively firing upstream boxes.  Every fired box's outputs are
//! cached under a structural *signature* — a hash of the node's revision
//! and its transitive input signatures — so an edit to one box
//! invalidates exactly its downstream cone while everything else is a
//! cache hit.  [`eval_eager`] is the Tioga-1 baseline for the A1
//! ablation: recompute everything, no cache.

use crate::boxes::{BoxKind, CompOpKind, RelOpKind};
use crate::error::FlowError;
use crate::graph::{Graph, NodeId};
use crate::plan;
use crate::port::Data;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tioga2_display::attr_ops;
use tioga2_display::compose::{replicate_within, stitch};
use tioga2_display::defaults::{make_display_relation, redefault};
use tioga2_display::drilldown::{
    overlay, reorder_layer, set_range, shuffle_to_top, MismatchPolicy,
};
use tioga2_display::lift::{apply_to_composite, apply_to_relation};
use tioga2_display::{DisplayRelation, Displayable};
use tioga2_expr::{Expr, UnaryOp};
use tioga2_obs::{CacheStatus, DemandTrace, EventLog, OpNode, Recorder, SessionEvent, SpanId};
use tioga2_relational::ops;
use tioga2_relational::{
    fault, govern, Budget, BudgetMeter, CancelToken, Catalog, Delta, RelError, RowChange,
};

/// Evaluation counters, used by tests and the ablation benches.
///
/// These are always maintained (they are a handful of integer adds per
/// box fire); richer telemetry — per-box spans, per-node cache tallies,
/// latency histograms — flows through the engine's [`Recorder`] and is
/// only collected when an enabled recorder is installed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Boxes actually fired.
    pub box_evals: u64,
    /// Demands satisfied from the memo cache.
    pub cache_hits: u64,
    /// Total tuples entering fired boxes.
    pub rows_in: u64,
    /// Total tuples leaving fired boxes.
    pub rows_out: u64,
}

struct CacheEntry {
    sig: u64,
    outputs: Vec<Data>,
}

/// Outcome of one [`Engine::apply_delta`] walk, also surfaced as the
/// `plan.delta.{applied,fallback,rows}` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Cached entries patched in place (memo boundaries refreshed,
    /// aggregates merged, chains pushed through).
    pub applied: u64,
    /// Tainted entries with no applicable delta rule, evicted instead.
    pub fallback: u64,
    /// Row changes pushed into patched entries (`delta.rows()` each).
    pub rows: u64,
    /// Total entries removed from either cache (fallbacks plus sweeps
    /// of deleted boxes).
    pub evicted: u64,
}

/// Memoized result of one planned demand, keyed by the plan fingerprint
/// (canonical plan text + boundary structural signatures), so any edit
/// that changes the chain or anything upstream of it misses naturally.
struct PlanCacheEntry {
    fp: u64,
    output: Data,
    /// The pre-rewrite plan (window wrap included) whose execution
    /// produced `output`, kept so [`Engine::apply_delta`] can push
    /// base-table deltas through the chain and patch `output` in place.
    plan: plan::Plan,
}

/// Default capacity of the finished-[`DemandTrace`] ring (oldest evicted
/// first).  Small: traces exist for `:explain analyze`, `sys.demands`,
/// and flamegraph export, not as a durable log.  Override per process
/// with `TIOGA2_TRACE_RING`, per engine with [`Engine::set_trace_ring`].
pub const DEMAND_TRACE_RING: usize = 32;

/// With a recorder enabled (but no explicit analyze and no armed
/// slowlog), attribute one planned demand in this many.  Full
/// attribution threads a counting/timing cell through every tuple pull
/// — cheap per row but multiplied by every row of every monitored
/// demand; sampling keeps fleet telemetry under its <2% overhead budget
/// (the A11 ablation) while `sys.demands` still fills from ordinary
/// renders.
pub const TRACE_SAMPLE_PERIOD: u64 = 64;

/// Trace-ring capacity from `TIOGA2_TRACE_RING`, clamped to >= 1;
/// [`DEMAND_TRACE_RING`] when unset or unparsable.
fn env_trace_ring() -> usize {
    std::env::var("TIOGA2_TRACE_RING")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .unwrap_or(DEMAND_TRACE_RING)
        .max(1)
}

/// The lazy engine.  One engine is attached to one top-level graph; inner
/// (encapsulated) graphs get transient sub-engines.
pub struct Engine {
    catalog: Catalog,
    cache: HashMap<NodeId, CacheEntry>,
    plan_cache: HashMap<(NodeId, usize), PlanCacheEntry>,
    pub stats: EvalStats,
    recorder: Arc<dyn Recorder>,
    /// Worker count for partition-parallel plan execution; copied from
    /// [`tioga2_relational::par::threads`] at construction.
    threads: usize,
    /// Ring of the last [`Engine::trace_ring`] per-demand trace trees.
    /// Populated by [`Engine::demand_analyzed`] and while the slowlog is
    /// armed unconditionally, and by a 1-in-[`TRACE_SAMPLE_PERIOD`]
    /// sample of planned demands while an enabled recorder is installed.
    demand_traces: VecDeque<DemandTrace>,
    /// Recordable plan executions seen, for the sampling decision
    /// (plan-cache hits do not count — they never build traces).
    trace_sample_seq: u64,
    /// Capacity of `demand_traces`; `TIOGA2_TRACE_RING` at construction.
    trace_ring: usize,
    /// Traces evicted from the ring over this engine's lifetime (also
    /// surfaced as the `demand.traces_dropped` counter).
    traces_dropped: u64,
    next_demand_id: u64,
    /// Session event journal sink; when armed, every planned demand's
    /// outcome and every cache invalidation is appended as a typed event.
    journal: Option<EventLog>,
    /// Declarative budget applied to every demand (row cap, deadline,
    /// cancel token).  `None` means ungoverned; seeded from
    /// `TIOGA2_BUDGET` at construction.
    budget: Option<Budget>,
    /// The in-flight demand's started budget meter, shared by every
    /// governed site of that demand (streams, workers, box fires).  Set
    /// by the outermost containment frame, inherited by sub-engines.
    meter: Option<Arc<BudgetMeter>>,
    /// Per-engine fault-plan override.  `None` falls back to the
    /// process-global registry (`TIOGA2_FAULTS` / `fault::install`), so
    /// tests can inject deterministically without cross-engine bleed.
    faults: Option<Arc<fault::FaultPlan>>,
    /// Containment nesting depth: demand-outcome counters and panic
    /// cache-invalidation run only when the outermost frame unwinds.
    govern_depth: usize,
    /// Protocol request id stamped onto traces and journaled demand
    /// events until the next [`Engine::set_request_id`]; 0 outside a
    /// request context (REPL, tests).
    request_id: u64,
    /// Slow-demand sink plus the `{tenant, session}` labels its entries
    /// carry; installed by the session (standalone: from
    /// `TIOGA2_SLOWLOG`; under `tiogad`: the daemon's fleet-wide log).
    slowlog: Option<(Arc<tioga2_obs::SlowLog>, String, String)>,
}

fn fnv1a(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl Engine {
    pub fn new(catalog: Catalog) -> Self {
        Engine {
            catalog,
            cache: HashMap::new(),
            plan_cache: HashMap::new(),
            stats: EvalStats::default(),
            recorder: tioga2_obs::noop(),
            threads: tioga2_relational::par::threads(),
            demand_traces: VecDeque::new(),
            trace_sample_seq: 0,
            trace_ring: env_trace_ring(),
            traces_dropped: 0,
            next_demand_id: 0,
            journal: None,
            budget: govern::env_budget(),
            meter: None,
            faults: None,
            govern_depth: 0,
            request_id: 0,
            slowlog: None,
        }
    }

    /// Stamp subsequent demands with a protocol request id (0 clears).
    /// `tiogad`'s session worker sets this per frame before running the
    /// command, so traces and journal events correlate to the wire.
    pub fn set_request_id(&mut self, request_id: u64) {
        self.request_id = request_id;
    }

    /// The request id subsequent demands will be stamped with.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Install the slow-demand sink with the labels its entries carry.
    pub fn set_slowlog(&mut self, log: Arc<tioga2_obs::SlowLog>, tenant: &str, session: &str) {
        self.slowlog = Some((log, tenant.to_string(), session.to_string()));
    }

    /// The installed slow-demand sink, if any.
    pub fn slowlog(&self) -> Option<&Arc<tioga2_obs::SlowLog>> {
        self.slowlog.as_ref().map(|(log, _, _)| log)
    }

    /// Install (or clear) the budget applied to subsequent demands.
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.budget = budget;
    }

    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// Install (or clear) a fault plan scoped to this engine alone; when
    /// unset, demands consult the process-global registry instead.
    pub fn set_fault_plan(&mut self, plan: Option<fault::FaultPlan>) {
        self.faults = plan.map(Arc::new);
    }

    /// Attach a cancel token to the current budget (creating an otherwise
    /// empty budget if none is set).  The session uses this so a
    /// superseding render can cancel the in-flight demand cooperatively.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        match (&mut self.budget, token) {
            (Some(b), t) => b.token = t,
            (None, Some(t)) => self.budget = Some(Budget::new().with_token(t)),
            (None, None) => {}
        }
    }

    /// Classify a demand error for counters and trace status.
    fn error_status(e: &FlowError) -> &'static str {
        match e {
            FlowError::Rel(RelError::BudgetExceeded(_)) => "budget_exceeded",
            FlowError::Rel(RelError::Cancelled) => "cancelled",
            FlowError::Rel(RelError::FaultInjected(_)) => "fault_injected",
            FlowError::Rel(RelError::Panic(_)) => "panic",
            _ => "error",
        }
    }

    /// The containment frame wrapped around every public demand entry
    /// point: starts the budget meter (outermost frame only), catches
    /// panics from box procedures and operator code into structured
    /// [`RelError::Panic`] errors, and — when the outermost frame sees a
    /// failure — bumps the outcome counters and, for panics, drops every
    /// memo/plan-cache entry so a poisoned partial result is never served.
    fn contain<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> Result<T, FlowError>,
    ) -> Result<T, FlowError> {
        self.govern_depth += 1;
        let owns_meter = self.meter.is_none() && self.budget.is_some();
        if owns_meter {
            self.meter = Some(self.budget.as_ref().expect("checked above").start());
        }
        // An already-cancelled token (or blown deadline) aborts before any
        // evaluation happens.
        let preflight = match &self.meter {
            Some(m) => m.probe().map_err(FlowError::from),
            None => Ok(()),
        };
        let result = match preflight {
            Ok(()) => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(self)))
                .unwrap_or_else(|p| Err(FlowError::Rel(RelError::Panic(govern::panic_message(p))))),
            Err(e) => Err(e),
        };
        if owns_meter {
            self.meter = None;
        }
        self.govern_depth -= 1;
        if self.govern_depth == 0 {
            if let Err(e) = &result {
                let status = Self::error_status(e);
                match status {
                    "budget_exceeded" => self.recorder.add("demand.budget_exceeded", 1),
                    "cancelled" => self.recorder.add("demand.cancelled", 1),
                    "fault_injected" => self.recorder.add("faults.injected", 1),
                    "panic" => {
                        self.recorder.add("demand.panics_contained", 1);
                        // A panic can strike mid-insert anywhere in the
                        // demand's cone; discard everything it may have
                        // touched rather than serve a poisoned partial.
                        self.invalidate_all();
                    }
                    _ => {}
                }
            }
        }
        result
    }

    /// The retained per-demand trace trees, oldest first.
    pub fn demand_traces(&self) -> &VecDeque<DemandTrace> {
        &self.demand_traces
    }

    /// Current capacity of the demand-trace ring.
    pub fn trace_ring(&self) -> usize {
        self.trace_ring
    }

    /// Traces evicted from the ring over this engine's lifetime.
    pub fn traces_dropped(&self) -> u64 {
        self.traces_dropped
    }

    /// Resize the demand-trace ring (clamped to >= 1).  Shrinking evicts
    /// the oldest traces immediately; evictions count as dropped.
    pub fn set_trace_ring(&mut self, capacity: usize) {
        self.trace_ring = capacity.max(1);
        while self.demand_traces.len() > self.trace_ring {
            self.demand_traces.pop_front();
            self.traces_dropped += 1;
            self.recorder.add("demand.traces_dropped", 1);
        }
    }

    /// Attach (or detach) the session event journal.  When armed, every
    /// planned demand appends a [`SessionEvent::Demand`] outcome and
    /// every invalidation a [`SessionEvent::CacheInvalidation`].
    pub fn set_journal(&mut self, journal: Option<EventLog>) {
        self.journal = journal;
    }

    pub fn journal(&self) -> Option<&EventLog> {
        self.journal.as_ref()
    }

    /// The most recent trace for a given demanded `(node, port)`, if one
    /// is still in the ring.
    pub fn last_trace_for(&self, node: NodeId, port: usize) -> Option<&DemandTrace> {
        let label_prefix = format!("{node}.{port} ");
        self.demand_traces.iter().rev().find(|t| t.label.starts_with(&label_prefix))
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Worker count used by partition-parallel plan execution.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Override this engine's worker count (clamped to >= 1).  Purely an
    /// execution strategy: results are identical at any setting, so the
    /// plan cache is *not* invalidated.
    pub fn set_threads(&mut self, n: usize) {
        self.threads = n.max(1);
    }

    /// Number of live plan-cache entries (tests & diagnostics).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Install an instrumentation sink.  Sub-engines spawned for
    /// encapsulated boxes inherit it.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.recorder = recorder;
    }

    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Drop all memoized results (catalog updates call this: base-table
    /// contents are outside the structural signature).  Records a
    /// `cache.invalidations` counter event with the number of entries
    /// evicted journaled alongside.
    pub fn invalidate_all(&mut self) {
        // Plan results embed base-table contents too: same lifetime, and
        // the counter reports both kinds of evicted entries.
        let evicted = (self.cache.len() + self.plan_cache.len()) as u64;
        self.cache.clear();
        self.plan_cache.clear();
        self.recorder.add("cache.invalidations", 1);
        self.recorder.add("cache.invalidated_entries", evicted);
        if let Some(j) = &self.journal {
            j.append(SessionEvent::CacheInvalidation { scope: "all".into(), entries: evicted });
        }
    }

    /// Does `kind` read any of `tables` from the catalog?  Encapsulated
    /// boxes are searched recursively (inner graph and plugs).  `Custom`
    /// boxes are treated as readers conservatively: their closure is
    /// opaque, so we cannot prove they ignore the catalog.
    fn kind_reads(kind: &BoxKind, tables: &[String]) -> bool {
        match kind {
            BoxKind::Table(t) => tables.iter().any(|x| x == t),
            BoxKind::Encapsulated { def, plugs } => {
                def.graph.nodes().any(|n| Self::kind_reads(&n.kind, tables))
                    || plugs.iter().any(|p| Self::kind_reads(p, tables))
            }
            BoxKind::Custom(_) => true,
            _ => false,
        }
    }

    /// The nodes whose demand cone reads one of `tables`: every node
    /// whose kind reads a listed table, propagated downstream to a
    /// fixpoint (graphs are interactive-UI sized; quadratic worst case
    /// is fine).
    fn tainted_nodes(graph: &Graph, tables: &[String]) -> HashSet<NodeId> {
        let mut tainted: HashSet<NodeId> =
            graph.nodes().filter(|n| Self::kind_reads(&n.kind, tables)).map(|n| n.id).collect();
        loop {
            let mut grew = false;
            for n in graph.nodes() {
                if !tainted.contains(&n.id)
                    && n.inputs.iter().flatten().any(|(src, _)| tainted.contains(src))
                {
                    tainted.insert(n.id);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        tainted
    }

    /// Drop only the memoized results whose demand cone reads one of
    /// `tables` — a node is evicted iff its kind reads a listed table or
    /// any transitive input does.  Entries keyed by nodes no longer in
    /// `graph` are evicted too (nothing can be proven about a deleted
    /// box).  Returns the number of entries evicted.  This is what
    /// `sys.*` refreshes use so that unrelated cached plans survive.
    pub fn invalidate_reading(&mut self, graph: &Graph, tables: &[String]) -> u64 {
        let tainted = Self::tainted_nodes(graph, tables);
        let before = self.cache.len() + self.plan_cache.len();
        self.cache.retain(|id, _| graph.node(*id).is_ok() && !tainted.contains(id));
        self.plan_cache.retain(|(id, _), _| graph.node(*id).is_ok() && !tainted.contains(id));
        let evicted = (before - self.cache.len() - self.plan_cache.len()) as u64;
        self.recorder.add("cache.invalidations", 1);
        self.recorder.add("cache.invalidated_entries", evicted);
        if let Some(j) = &self.journal {
            // The journaled scope carries the *actual* table list so
            // `sys.events` and replay can tell a selective eviction from
            // a full flush (whose scope is `"all"`).
            j.append(SessionEvent::CacheInvalidation { scope: tables.join(","), entries: evicted });
        }
        evicted
    }

    /// Propagate a committed base-table [`Delta`] through the caches:
    /// patch every memoized result a delta rule covers in place, evict
    /// (selectively — never [`Engine::invalidate_all`]) the tainted
    /// entries no rule covers, and leave everything whose demand cone
    /// does not read the edited table untouched.
    ///
    /// Rules, per cached entry:
    /// * **Table boundary** memo entries for the edited table are
    ///   refreshed from the catalog (a snapshot + display-header
    ///   rebuild, O(1) in Arc clones — tuples are shared).
    /// * **Mergeable aggregates** — an `Aggregate` box fed directly by
    ///   the edited table — are patched by
    ///   [`tioga2_relational::aggregate::patch_aggregate_update`].
    /// * **Plan-cache chains** of Restrict / Project / Rename (window
    ///   wraps included) over the edited table are patched by
    ///   [`plan::patch_chain`].
    /// * Everything else tainted falls back to eviction: Sort, Distinct,
    ///   Sample, Limit, Join, `__seq`-dependent predicates, Custom
    ///   boxes, multi-source plans, aggregate ties/floats.
    ///
    /// Fingerprints and structural signatures exclude base-table
    /// contents, so a patched entry keeps hitting.  Each patch attempt
    /// charges the engine budget (`delta.rows()` per entry) and passes
    /// the `delta` fault site; a budget denial, injected fault, or panic
    /// inside a patch evicts that entry instead — a fault mid-delta can
    /// never leave a poisoned cache.
    pub fn apply_delta(&mut self, graph: &Graph, delta: &Delta) -> DeltaOutcome {
        let tables = [delta.table.clone()];
        let tainted = Self::tainted_nodes(graph, &tables);
        let meter = self.budget.as_ref().map(|b| b.start());
        let faults = self.faults.clone().or_else(fault::current);
        // One fresh display relation serves every reference to the table
        // (display headers are schema-derived, not content-derived).
        let base = self
            .catalog
            .snapshot(&delta.table)
            .ok()
            .and_then(|rel| make_display_relation(rel, delta.table.clone()).ok());
        let mut out = DeltaOutcome::default();
        let mut coord = 0u64;

        // Budget + fault + panic containment around one patch attempt:
        // any denial degrades to eviction for that entry only.
        let mut guard = |f: &mut dyn FnMut() -> Option<Data>| -> Option<Data> {
            coord += 1;
            if let Some(m) = &meter {
                m.charge(delta.rows()).ok()?;
            }
            // The fault trip goes *inside* the containment: a panic
            // action must degrade to eviction exactly like a real one.
            let site = coord - 1;
            let faults = faults.as_ref();
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(fp) = faults {
                    fp.trip("delta", site).ok()?;
                }
                f()
            }))
            .ok()
            .flatten()
        };

        // Box memo cache.
        let ids: Vec<NodeId> = self.cache.keys().copied().collect();
        for id in ids {
            if graph.node(id).is_err() {
                self.cache.remove(&id);
                out.evicted += 1;
                continue;
            }
            if !tainted.contains(&id) {
                continue;
            }
            let patched = {
                let cache = &self.cache;
                guard(&mut || {
                    Self::patch_memo_entry(graph, id, cache.get(&id)?, base.as_ref()?, delta)
                })
            };
            match patched {
                Some(data) => {
                    let entry = self.cache.get_mut(&id).expect("present above");
                    entry.outputs = vec![data];
                    out.applied += 1;
                    out.rows += delta.rows();
                }
                None => {
                    self.cache.remove(&id);
                    out.fallback += 1;
                    out.evicted += 1;
                }
            }
        }

        // Plan cache.
        let keys: Vec<(NodeId, usize)> = self.plan_cache.keys().copied().collect();
        for key in keys {
            if graph.node(key.0).is_err() {
                self.plan_cache.remove(&key);
                out.evicted += 1;
                continue;
            }
            let entry = self.plan_cache.get(&key).expect("key just listed");
            let srcs = entry.plan.sources();
            if !srcs.iter().any(|(n, _)| tainted.contains(n)) {
                continue; // demand cone never reads the edited table
            }
            let single_table_src = srcs.len() == 1
                && graph
                    .node(srcs[0].0)
                    .is_ok_and(|n| matches!(&n.kind, BoxKind::Table(t) if *t == delta.table));
            let patched = if single_table_src {
                let (plan_ref, output_ref) = (&entry.plan, &entry.output);
                guard(&mut || {
                    let Data::D(Displayable::R(dr)) = output_ref else { return None };
                    let patched = plan::patch_chain(plan_ref, base.as_ref()?, dr, &delta.changes)?;
                    Some(Data::D(Displayable::R(patched)))
                })
            } else {
                None
            };
            match patched {
                Some(data) => {
                    self.plan_cache.get_mut(&key).expect("present above").output = data;
                    out.applied += 1;
                    out.rows += delta.rows();
                }
                None => {
                    self.plan_cache.remove(&key);
                    out.fallback += 1;
                    out.evicted += 1;
                }
            }
        }

        self.recorder.add("plan.delta.applied", out.applied);
        self.recorder.add("plan.delta.fallback", out.fallback);
        self.recorder.add("plan.delta.rows", out.rows);
        if out.evicted > 0 {
            self.recorder.add("cache.invalidations", 1);
            self.recorder.add("cache.invalidated_entries", out.evicted);
        }
        if let Some(j) = &self.journal {
            j.append(SessionEvent::CacheInvalidation {
                scope: delta.table.clone(),
                entries: out.evicted,
            });
        }
        out
    }

    /// The delta rules for one box memo entry; `None` means fallback.
    fn patch_memo_entry(
        graph: &Graph,
        id: NodeId,
        entry: &CacheEntry,
        base: &DisplayRelation,
        delta: &Delta,
    ) -> Option<Data> {
        let node = graph.node(id).ok()?;
        match &node.kind {
            // The edited table itself: refresh the boundary from the
            // catalog (same structural signature — contents are outside
            // it — so downstream fingerprints keep matching).
            BoxKind::Table(t) if *t == delta.table => Some(Data::D(Displayable::R(base.clone()))),
            // A mergeable aggregate directly over the edited table.
            BoxKind::RelOp { op: RelOpKind::Aggregate { keys, aggs }, .. } => {
                let (src, sport) = node.inputs.first()?.as_ref()?;
                if *sport != 0
                    || node.inputs.len() != 1
                    || !matches!(&graph.node(*src).ok()?.kind,
                                 BoxKind::Table(t) if *t == delta.table)
                {
                    return None;
                }
                let [Data::D(Displayable::R(dr))] = entry.outputs.as_slice() else {
                    return None;
                };
                let krefs: Vec<&str> = keys.iter().map(String::as_str).collect();
                let mut rel = dr.rel.clone();
                for ch in &delta.changes {
                    let RowChange::Update { old, new } = ch else { return None };
                    rel = tioga2_relational::aggregate::patch_aggregate_update(
                        &base.rel, &rel, &krefs, aggs, old, new,
                    )?;
                }
                let mut out = dr.clone();
                out.rel = rel;
                Some(Data::D(Displayable::R(out)))
            }
            _ => None,
        }
    }

    /// Demand the value on `(node, out_port)` of `graph`.
    pub fn demand(&mut self, graph: &Graph, node: NodeId, port: usize) -> Result<Data, FlowError> {
        let span = if self.recorder.is_enabled() {
            self.recorder.span_begin("engine.demand", &format!("{node}:{port}"))
        } else {
            SpanId::NONE
        };
        let result = self.contain(|e| {
            let mut sigs = HashMap::new();
            e.eval_node(graph, node, &[], &[], &mut sigs)
        });
        if !span.is_none() {
            self.recorder.span_end(span, &[("ok", result.is_ok() as i64)]);
        }
        result?
            .get(port)
            .cloned()
            .ok_or_else(|| FlowError::Graph(format!("{node} has no output {port}")))
    }

    /// Demand the displayable on `(node, out_port)`.
    pub fn demand_displayable(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
    ) -> Result<Displayable, FlowError> {
        Ok(self.demand(graph, node, port)?.into_displayable()?)
    }

    /// Demand `(node, out_port)` through the plan layer: lower the
    /// maximal relational chain feeding it to a [`Plan`], rewrite it
    /// (fusion / pushdown / pruning), and run it as one streaming
    /// pipeline.  Falls back to [`Engine::demand`] when there is no chain
    /// to plan.  Results are memoized in a separate plan cache keyed on
    /// the plan fingerprint, so box edits invalidate exactly as the
    /// box-at-a-time path does.
    pub fn demand_planned(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
    ) -> Result<Data, FlowError> {
        self.demand_planned_opts(graph, node, port, true, None)
    }

    /// [`Engine::demand_planned`] with knobs: `rewrite` toggles the
    /// optimizer (the A5 ablation runs with it off), and `window` is an
    /// extra synthesized Restrict applied at the top of the plan — the
    /// viewer pushes its visible-region and slider-range predicate here.
    pub fn demand_planned_opts(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
        rewrite: bool,
        window: Option<&Expr>,
    ) -> Result<Data, FlowError> {
        self.demand_planned_impl(graph, node, port, rewrite, window, false).map(|(d, _)| d)
    }

    /// `:explain analyze`: execute the planned demand *with attribution
    /// forced on* (even under a disabled recorder) and return both the
    /// result and its [`DemandTrace`].  Unlike the passive path, a plan
    /// cache hit does not short-circuit — the demand is re-executed so
    /// per-operator rows and times are real, while the trace still
    /// reports that the cache *would* have answered.  `None` when the
    /// demand has no relational chain to plan (single box / non-R data).
    pub fn demand_analyzed(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
        rewrite: bool,
        window: Option<&Expr>,
    ) -> Result<(Data, Option<DemandTrace>), FlowError> {
        self.demand_planned_impl(graph, node, port, rewrite, window, true)
    }

    fn demand_planned_impl(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
        rewrite: bool,
        window: Option<&Expr>,
        force_trace: bool,
    ) -> Result<(Data, Option<DemandTrace>), FlowError> {
        let journal_armed = self.journal.as_ref().is_some_and(|j| j.is_enabled());
        if !journal_armed {
            return self.contain(|e| {
                e.demand_planned_inner(graph, node, port, rewrite, window, force_trace)
            });
        }
        // Journaling armed: record the demand's lifecycle outcome —
        // including aborts classified by `error_status` — as one event.
        let t0 = Instant::now();
        let id_before = self.next_demand_id;
        let result = self
            .contain(|e| e.demand_planned_inner(graph, node, port, rewrite, window, force_trace));
        // A pushed trace consumed `id_before`; otherwise claim it so
        // journal demand ids stay aligned with trace ids.
        if self.next_demand_id == id_before {
            self.next_demand_id += 1;
        }
        let name = graph.node(node).map(|n| n.name()).unwrap_or_else(|_| "?".to_string());
        let (status, rows_out, detail) = match &result {
            Ok((Data::D(Displayable::R(dr)), _)) => {
                ("ok".into(), dr.rel.len() as u64, String::new())
            }
            Ok(_) => ("ok".into(), 0, String::new()),
            Err(e) => (Self::error_status(e).to_string(), 0, format!("{e}")),
        };
        if let Some(j) = &self.journal {
            j.append(SessionEvent::Demand {
                demand_id: id_before,
                request_id: self.request_id,
                label: format!("{node}.{port} ({name})"),
                status,
                rows_out,
                wall_ns: t0.elapsed().as_nanos() as u64,
                threads: self.threads as u64,
                detail,
            });
        }
        result
    }

    fn demand_planned_inner(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
        rewrite: bool,
        window: Option<&Expr>,
        force_trace: bool,
    ) -> Result<(Data, Option<DemandTrace>), FlowError> {
        let t0 = Instant::now();
        let orig = crate::lower::lower(graph, node, port);
        if orig.is_source() && window.is_none() {
            return Ok((self.demand(graph, node, port)?, None));
        }
        // Attribution policy.  Full per-operator attribution threads an
        // extra counting/timing layer through every tuple pull — a few
        // percent of demand wall time, too much to charge every gesture
        // of every monitored session.  So: an explicit analyze and an
        // armed slowlog attribute *every* demand (the slowlog must hold
        // a full trace for any over-threshold demand it captures); a
        // merely-enabled recorder attributes a 1-in-
        // [`TRACE_SAMPLE_PERIOD`] sample (decided after the plan-cache
        // probe, so hits never burn sample slots), which is what fills
        // `sys.demands` from ordinary renders.  The `demand.latency_ns`
        // histogram sees every demand either way.
        let slow_armed =
            self.slowlog.as_ref().is_some_and(|(log, _, _)| log.threshold_ns().is_some());
        let mut record = force_trace || slow_armed;
        let may_sample = self.recorder.is_enabled();
        // Canon strings of every subtree present in the user's program:
        // executed nodes outside this set were synthesized by the window
        // wrap or moved/produced by the optimizer (trace provenance).
        let orig_canons = (record || may_sample).then(|| {
            let mut set = HashSet::new();
            collect_canons(&orig, &mut set);
            set
        });
        let window_str = window.map(|w| format!("{w}"));
        let plan = match window {
            Some(w) => plan::Plan::Restrict { input: Box::new(orig), pred: w.clone() },
            None => orig,
        };

        // Fingerprint before evaluating anything: canonical plan text
        // plus the structural signature of every boundary.  Base-table
        // contents are outside it, exactly like the box memo cache —
        // `invalidate_all` clears both.
        let mut sigs = HashMap::new();
        let mut words = vec![plan::hash_str(&plan.canon()), rewrite as u64];
        for (n, p) in plan.sources() {
            words.push(self.signature(graph, n, 0, &mut sigs)?);
            words.push(p as u64);
        }
        let fp = fnv1a(words);
        // Sweep entries whose root box no longer exists: fingerprints are
        // keyed by `(node, port)`, so a deleted box's entry would
        // otherwise linger for the whole session.
        self.plan_cache.retain(|(n, _), _| graph.node(*n).is_ok());
        let mut would_hit = false;
        if let Some(entry) = self.plan_cache.get(&(node, port)) {
            if entry.fp == fp {
                self.recorder.add("plan.cache_hits", 1);
                if !force_trace {
                    self.recorder.observe_ns("demand.latency_ns", t0.elapsed().as_nanos() as u64);
                    return Ok((entry.output.clone(), None));
                }
                would_hit = true;
            }
        }
        if !record && may_sample {
            let seq = self.trace_sample_seq;
            self.trace_sample_seq += 1;
            record = seq.is_multiple_of(TRACE_SAMPLE_PERIOD);
        }

        // Evaluate the boundaries through the normal memoized path.  A
        // non-relational boundary means the chain is not actually R
        // shaped; fall back to box-at-a-time.
        let mut srcs = plan::SourceMap::new();
        let mut src_memo: HashMap<(NodeId, usize), CacheStatus> = HashMap::new();
        for (n, p) in plan.sources() {
            let evals_before = self.stats.box_evals;
            match self.demand(graph, n, p)? {
                Data::D(Displayable::R(dr)) => {
                    if record {
                        // Nothing fired => the boundary cone was fully
                        // memoized.
                        let status = if self.stats.box_evals == evals_before {
                            CacheStatus::Hit
                        } else {
                            CacheStatus::Miss
                        };
                        src_memo.insert((n, p), status);
                    }
                    srcs.insert((n, p), dr);
                }
                _ => return Ok((self.demand(graph, node, port)?, None)),
            }
        }

        // Display metadata is replayed from the *original* plan; the
        // rewriter only has to preserve stored tuple contents.
        let final_header = plan::header_of(&plan, &srcs)?;
        let (exec_plan, rw) = if rewrite {
            plan::rewrite(plan.clone(), &srcs)
        } else {
            (plan.clone(), plan::RewriteStats::default())
        };
        let span = if self.recorder.is_enabled() {
            for (rule, n) in &rw.counts {
                self.recorder.add(&format!("plan.rewrite.{rule}"), *n);
            }
            self.recorder.span_begin("plan.execute", &format!("{node}:{port}"))
        } else {
            SpanId::NONE
        };
        let attr = record.then(|| plan::AttrNode::build(&exec_plan, graph));
        let gov = plan::ExecGov {
            meter: self.meter.clone(),
            faults: self.faults.clone().or_else(fault::current),
        };
        let result = plan::execute_governed(
            &exec_plan,
            &final_header,
            &srcs,
            self.threads,
            attr.as_ref(),
            &gov,
        );
        if let Ok((_, es)) = &result {
            if es.par_segments > 0 {
                self.recorder.add("plan.parallel.segments", es.par_segments);
                self.recorder.add("plan.parallel.rows", es.par_rows);
            }
            if es.par_worker_panics > 0 {
                self.recorder.add("plan.parallel.worker_panics", es.par_worker_panics);
            }
        }
        if !span.is_none() {
            let rows = result.as_ref().map_or(-1, |(dr, _)| dr.rel.len() as i64);
            let segs = result.as_ref().map_or(0, |(_, es)| es.par_segments as i64);
            self.recorder.span_end(
                span,
                &[
                    ("plan_ops", exec_plan.op_count() as i64),
                    ("rewrites", rw.total() as i64),
                    ("rows_out", rows),
                    ("threads", self.threads as i64),
                    ("par_segments", segs),
                ],
            );
        }
        let push_trace = |eng: &mut Self, es: &plan::ExecStats, status: &str| {
            attr.as_ref().map(|attr| {
                let orig_canons =
                    orig_canons.as_ref().expect("canon set collected whenever attr is");
                let root =
                    build_op_node(&exec_plan, attr, &src_memo, orig_canons, window_str.as_deref());
                let name = graph.node(node).map(|n| n.name()).unwrap_or_else(|_| "?".to_string());
                let t = DemandTrace {
                    demand_id: eng.next_demand_id,
                    request_id: eng.request_id,
                    label: format!("{node}.{port} ({name})"),
                    total_ns: t0.elapsed().as_nanos() as u64,
                    threads: eng.threads,
                    par_segments: es.par_segments,
                    plan_cache: if would_hit { CacheStatus::Hit } else { CacheStatus::Miss },
                    rewrites: rw.counts.iter().map(|(r, n)| (r.to_string(), *n)).collect(),
                    status: status.to_string(),
                    root,
                };
                eng.next_demand_id += 1;
                if let Some((log, tenant, session)) = &eng.slowlog {
                    log.observe(tenant, session, &t);
                }
                while eng.demand_traces.len() >= eng.trace_ring {
                    eng.demand_traces.pop_front();
                    eng.traces_dropped += 1;
                    eng.recorder.add("demand.traces_dropped", 1);
                }
                eng.demand_traces.push_back(t.clone());
                t
            })
        };
        let (out_dr, es) = match result {
            Ok(v) => v,
            Err(e) => {
                // Keep the failure visible: the partial attribution cells
                // become an *aborted* trace in the ring (`:explain
                // analyze` / `sys.demands` show how far the demand got).
                push_trace(self, &plan::ExecStats::default(), Self::error_status(&e));
                self.recorder.observe_ns("demand.latency_ns", t0.elapsed().as_nanos() as u64);
                return Err(e);
            }
        };
        let data = Data::D(Displayable::R(out_dr));
        self.plan_cache.insert((node, port), PlanCacheEntry { fp, output: data.clone(), plan });
        let trace = push_trace(self, &es, "ok");
        self.recorder.observe_ns("demand.latency_ns", t0.elapsed().as_nanos() as u64);
        Ok((data, trace))
    }

    /// [`Engine::demand_planned`], unwrapped to a displayable.
    pub fn demand_displayable_planned(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
    ) -> Result<Displayable, FlowError> {
        Ok(self.demand_planned(graph, node, port)?.into_displayable()?)
    }

    /// The display-relation *header* (schema + methods + metadata, no
    /// tuples) the planned demand of `(node, port)` would produce, or
    /// `None` when the output is not a planned relational chain.  Cheap:
    /// boundaries are demanded through the memo cache, the chain itself
    /// is replayed on empty relations.  The viewer uses this to build its
    /// window predicate before demanding any tuples.
    pub fn plan_root_header(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
    ) -> Result<Option<DisplayRelation>, FlowError> {
        let plan = crate::lower::lower(graph, node, port);
        if plan.is_source() {
            return Ok(None);
        }
        let mut srcs = plan::SourceMap::new();
        for (n, p) in plan.sources() {
            match self.demand(graph, n, p)? {
                Data::D(Displayable::R(dr)) => {
                    srcs.insert((n, p), dr);
                }
                _ => return Ok(None),
            }
        }
        Ok(Some(plan::header_of(&plan, &srcs)?))
    }

    /// Render the plan for `(node, port)`: the lowered chain, the rules
    /// that fired, and the optimized form.  Backs the REPL's `:explain`.
    pub fn explain(
        &mut self,
        graph: &Graph,
        node: NodeId,
        port: usize,
    ) -> Result<String, FlowError> {
        let plan = crate::lower::lower(graph, node, port);
        if plan.is_source() {
            return Ok(format!("{node}.{port}: single box, no relational chain to plan\n"));
        }
        let mut srcs = plan::SourceMap::new();
        for (n, p) in plan.sources() {
            match self.demand(graph, n, p)? {
                Data::D(Displayable::R(dr)) => {
                    srcs.insert((n, p), dr);
                }
                _ => {
                    return Ok(format!(
                        "{node}.{port}: chain feeds non-relational data; planned \
                         execution does not apply\n"
                    ))
                }
            }
        }
        let (opt, rw) = plan::rewrite(plan.clone(), &srcs);
        let mut out = format!("plan for {node}.{port}:\n{}", plan.pretty(graph));
        if rw.counts.is_empty() {
            out.push_str("no rewrites apply\n");
        } else {
            out.push_str("rewrites:\n");
            for (rule, n) in &rw.counts {
                out.push_str(&format!("  {rule} x{n}\n"));
            }
            out.push_str(&format!("optimized:\n{}", opt.pretty(graph)));
        }
        Ok(out)
    }

    fn signature(
        &self,
        graph: &Graph,
        id: NodeId,
        env_sig: u64,
        sigs: &mut HashMap<NodeId, u64>,
    ) -> Result<u64, FlowError> {
        if let Some(s) = sigs.get(&id) {
            return Ok(*s);
        }
        let node = graph.node(id)?;
        let mut words = vec![node.rev, env_sig];
        for inp in &node.inputs {
            match inp {
                Some((src, port)) => {
                    words.push(self.signature(graph, *src, env_sig, sigs)?);
                    words.push(*port as u64 + 1);
                }
                None => words.push(u64::MAX),
            }
        }
        let s = fnv1a(words);
        sigs.insert(id, s);
        Ok(s)
    }

    fn eval_node(
        &mut self,
        graph: &Graph,
        id: NodeId,
        env: &[Data],
        plugs: &[BoxKind],
        sigs: &mut HashMap<NodeId, u64>,
    ) -> Result<Vec<Data>, FlowError> {
        // Environment-dependent evaluations (inside encapsulations) are
        // handled by sub-engines, whose caches are per-instantiation, so
        // an env signature of 0 at the top level is sound.
        let sig = self.signature(graph, id, 0, sigs)?;
        if let Some(entry) = self.cache.get(&id) {
            if entry.sig == sig {
                self.stats.cache_hits += 1;
                if self.recorder.is_enabled() {
                    let node = graph.node(id)?;
                    self.recorder.add("engine.cache_hits", 1);
                    self.recorder.cache_access(&format!("{}#{id}", node.name()), true);
                }
                return Ok(entry.outputs.clone());
            }
        }
        let node = graph.node(id)?.clone();
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for (i, inp) in node.inputs.iter().enumerate() {
            match inp {
                Some((src, port)) => {
                    let outs = self.eval_node(graph, *src, env, plugs, sigs)?;
                    inputs.push(
                        outs.get(*port).cloned().ok_or_else(|| {
                            FlowError::Graph(format!("{src} has no output {port}"))
                        })?,
                    );
                }
                None => {
                    return Err(FlowError::Dangling { node: node.name(), port: i });
                }
            }
        }
        let rows_in: u64 = inputs.iter().map(data_rows).sum();
        // Box-at-a-time governance point: charge the fire's input rows
        // and observe cancellation/deadline before evaluating the body.
        if let Some(m) = &self.meter {
            m.charge(rows_in)?;
        }
        self.stats.box_evals += 1;
        self.stats.rows_in += rows_in;
        // Fire span: all string work is gated on an enabled recorder so
        // the disabled path costs two virtual calls and the row sums.
        let span = if self.recorder.is_enabled() {
            self.recorder.add("engine.box_evals", 1);
            self.recorder.cache_access(&format!("{}#{id}", node.name()), false);
            self.recorder
                .span_begin(&format!("fire:{}", node.name()), &format!("{}#{id}", node.name()))
        } else {
            SpanId::NONE
        };
        let result = self.eval_kind(&node.kind, inputs, env, plugs);
        if !span.is_none() {
            let rows_out = result.as_ref().map(|outs| outs.iter().map(data_rows).sum::<u64>());
            self.recorder.span_end(
                span,
                &[("rows_in", rows_in as i64), ("rows_out", rows_out.map_or(-1, |r| r as i64))],
            );
        }
        let outputs = result?;
        self.stats.rows_out += outputs.iter().map(data_rows).sum::<u64>();
        if outputs.len() != node.out_types.len() {
            return Err(FlowError::Eval(format!(
                "box '{}' produced {} outputs, expected {}",
                node.name(),
                outputs.len(),
                node.out_types.len()
            )));
        }
        self.cache.insert(id, CacheEntry { sig, outputs: outputs.clone() });
        Ok(outputs)
    }

    fn eval_kind(
        &mut self,
        kind: &BoxKind,
        mut inputs: Vec<Data>,
        env: &[Data],
        plugs: &[BoxKind],
    ) -> Result<Vec<Data>, FlowError> {
        match kind {
            BoxKind::Table(name) => {
                let rel = self.catalog.snapshot(name)?;
                let dr = make_display_relation(rel, name.clone())?;
                Ok(vec![Data::D(Displayable::R(dr))])
            }
            BoxKind::Join(pred) => {
                let right = displayable_relation(inputs.pop(), "Join right")?;
                let left = displayable_relation(inputs.pop(), "Join left")?;
                let joined = ops::join(&left.rel, &right.rel, pred)?;
                let dr = redefault(joined, &left)?;
                Ok(vec![Data::D(Displayable::R(dr))])
            }
            BoxKind::RelOp { op, sel, .. } => {
                let d = input_displayable(inputs.pop(), op.name())?;
                let rec = &self.recorder;
                let out =
                    apply_to_relation(&d, *sel, |dr| apply_rel_op_recorded(op, dr, rec.as_ref()))?;
                Ok(vec![Data::D(out)])
            }
            BoxKind::CompOp { op, sel, .. } => {
                let d = input_displayable(inputs.pop(), op.name())?;
                let out = apply_to_composite(&d, *sel, |c| match op {
                    CompOpKind::Shuffle(i) => shuffle_to_top(c, *i),
                    CompOpKind::Reorder { from, to } => reorder_layer(c, *from, *to),
                })?;
                Ok(vec![Data::D(out)])
            }
            BoxKind::Overlay { offset, invariant } => {
                let top = input_displayable(inputs.pop(), "Overlay top")?.into_composite()?;
                let bottom = input_displayable(inputs.pop(), "Overlay bottom")?.into_composite()?;
                let policy =
                    if *invariant { MismatchPolicy::Invariant } else { MismatchPolicy::Reject };
                let c = overlay(&bottom, &top, offset, policy)?;
                Ok(vec![Data::D(Displayable::C(c))])
            }
            BoxKind::Stitch { layout, .. } => {
                let mut composites = Vec::with_capacity(inputs.len());
                for d in inputs {
                    composites.push(input_displayable(Some(d), "Stitch")?.into_composite()?);
                }
                let g = stitch(composites, *layout)?;
                Ok(vec![Data::D(Displayable::G(g))])
            }
            BoxKind::Replicate { horizontal, vertical, sel, .. } => {
                let d = input_displayable(inputs.pop(), "Replicate")?;
                let g = replicate_within(&d, *sel, horizontal.clone(), vertical.clone())?;
                Ok(vec![Data::D(Displayable::G(g))])
            }
            BoxKind::Switch(pred) => {
                let dr = displayable_relation(inputs.pop(), "Switch")?;
                let yes = ops::restrict(&dr.rel, pred)?;
                let not_pred = Expr::Unary(UnaryOp::Not, Box::new(pred.clone()));
                let no = ops::restrict(&dr.rel, &not_pred)?;
                let mut dyes = dr.clone();
                dyes.rel = yes;
                let mut dno = dr;
                dno.rel = no;
                Ok(vec![Data::D(Displayable::R(dyes)), Data::D(Displayable::R(dno))])
            }
            BoxKind::Const(v) => Ok(vec![Data::Scalar(v.clone())]),
            BoxKind::ParamRestrict { pred, params, sel, .. } => {
                let mut bound = std::collections::BTreeMap::new();
                // inputs: [displayable, scalar...] in declaration order.
                let scalars = inputs.split_off(1);
                for ((name, _), data) in params.iter().zip(scalars) {
                    match data {
                        Data::Scalar(v) => {
                            bound.insert(name.clone(), v);
                        }
                        Data::D(_) => {
                            return Err(FlowError::Eval(format!(
                                "parameter '{name}' received a displayable"
                            )))
                        }
                    }
                }
                let d = input_displayable(inputs.pop(), "Restrict(params)")?;
                let out = apply_to_relation(&d, *sel, |dr| {
                    let mut o = dr.clone();
                    o.rel = ops::restrict_with_params(&dr.rel, pred, &bound)?;
                    Ok(o)
                })?;
                Ok(vec![Data::D(out)])
            }
            BoxKind::Tee(_) => {
                let d = inputs.pop().ok_or_else(|| FlowError::Eval("T needs an input".into()))?;
                Ok(vec![d.clone(), d])
            }
            BoxKind::Viewer { .. } => {
                let d =
                    inputs.pop().ok_or_else(|| FlowError::Eval("Viewer needs an input".into()))?;
                Ok(vec![d])
            }
            BoxKind::Param { idx, .. } => env
                .get(*idx)
                .cloned()
                .map(|d| vec![d])
                .ok_or_else(|| FlowError::Eval(format!("unbound parameter {idx}"))),
            BoxKind::Hole { idx, .. } => {
                let plug = plugs
                    .get(*idx)
                    .ok_or_else(|| FlowError::Eval(format!("hole {idx} has no plug")))?
                    .clone();
                self.eval_kind(&plug, inputs, env, plugs)
            }
            BoxKind::Encapsulated { def, plugs: my_plugs } => {
                // Fresh sub-engine: inner results are represented in the
                // outer cache by this node's own entry.
                let mut sub = Engine::new(self.catalog.clone());
                sub.set_recorder(self.recorder.clone());
                // The enclosing demand's governance follows the work: the
                // sub-engine charges the *same* meter, so budgets span
                // encapsulation boundaries.
                sub.budget = self.budget.clone();
                sub.meter = self.meter.clone();
                sub.faults = self.faults.clone();
                let mut outs = Vec::with_capacity(def.output_bindings.len());
                let mut sigs = HashMap::new();
                for (node, port) in &def.output_bindings {
                    let vals = sub.eval_node(&def.graph, *node, &inputs, my_plugs, &mut sigs)?;
                    outs.push(vals.get(*port).cloned().ok_or_else(|| {
                        FlowError::Eval(format!("encapsulated output {node}.{port} missing"))
                    })?);
                }
                self.stats.box_evals += sub.stats.box_evals;
                self.stats.cache_hits += sub.stats.cache_hits;
                self.stats.rows_in += sub.stats.rows_in;
                self.stats.rows_out += sub.stats.rows_out;
                Ok(outs)
            }
            BoxKind::Custom(c) => (c.f)(&inputs),
        }
    }
}

/// All subtree canon strings of `plan`.  Used for trace provenance: an
/// executed node whose canon is absent from the user's original plan was
/// synthesized (window wrap) or produced/moved by the optimizer.
fn collect_canons(plan: &plan::Plan, out: &mut HashSet<String>) {
    out.insert(plan.canon());
    for child in plan.children() {
        collect_canons(child, out);
    }
}

/// Roll one executed plan node plus its fed attribution mirror into a
/// trace-tree node.  `rows_in` is derived, never measured twice: the sum
/// of the children's outputs (a source's input is its own scan count).
fn build_op_node(
    plan_node: &plan::Plan,
    attr: &plan::AttrNode,
    src_memo: &HashMap<(NodeId, usize), CacheStatus>,
    orig_canons: &HashSet<String>,
    window_pred: Option<&str>,
) -> OpNode {
    let children: Vec<OpNode> = plan_node
        .children()
        .into_iter()
        .zip(&attr.children)
        .map(|(p, a)| build_op_node(p, a, src_memo, orig_canons, window_pred))
        .collect();
    let rows_out = attr.cell.rows_out();
    let rows_in = match plan_node {
        plan::Plan::Source { .. } => rows_out,
        _ => children.iter().map(|c| c.rows_out).sum(),
    };
    let cache = match plan_node {
        plan::Plan::Source { node, port } => {
            src_memo.get(&(*node, *port)).copied().unwrap_or(CacheStatus::NotCached)
        }
        _ => CacheStatus::NotCached,
    };
    let provenance = if orig_canons.contains(&plan_node.canon()) {
        String::new()
    } else if matches!(plan_node, plan::Plan::Restrict { pred, .. }
        if window_pred == Some(format!("{pred}").as_str()))
    {
        "window".to_string()
    } else {
        "rewritten".to_string()
    };
    OpNode {
        op: attr.label.clone(),
        rows_in,
        rows_out,
        ns: attr.cell.est_ns(),
        cache,
        provenance,
        par_workers: attr.par_workers.load(Ordering::Relaxed),
        children,
    }
}

/// Tuple count of a dataflow value: scalars carry no rows.
fn data_rows(d: &Data) -> u64 {
    match d {
        Data::D(d) => d.tuple_count() as u64,
        Data::Scalar(_) => 0,
    }
}

fn input_displayable(d: Option<Data>, what: &str) -> Result<Displayable, FlowError> {
    match d {
        Some(Data::D(d)) => Ok(d),
        Some(Data::Scalar(v)) => {
            Err(FlowError::Eval(format!("{what} expected a displayable, got scalar {v}")))
        }
        None => Err(FlowError::Eval(format!("{what} is missing an input"))),
    }
}

fn displayable_relation(d: Option<Data>, what: &str) -> Result<DisplayRelation, FlowError> {
    match input_displayable(d, what)? {
        Displayable::R(r) => Ok(r),
        other => {
            Err(FlowError::Eval(format!("{what} expected a relation, got {}", other.type_tag())))
        }
    }
}

/// [`apply_rel_op`] wrapped in a `relop:<name>` span carrying the
/// relation's rows in/out.  Disabled recorders short-circuit to the
/// plain call.
pub fn apply_rel_op_recorded(
    op: &RelOpKind,
    dr: &DisplayRelation,
    rec: &dyn Recorder,
) -> Result<DisplayRelation, tioga2_display::DisplayError> {
    if !rec.is_enabled() {
        return apply_rel_op(op, dr);
    }
    let span = rec.span_begin(&format!("relop:{}", op.name()), "");
    let result = apply_rel_op(op, dr);
    let rows_out = result.as_ref().map_or(-1, |out| out.rel.len() as i64);
    rec.span_end(span, &[("rows_in", dr.rel.len() as i64), ("rows_out", rows_out)]);
    result
}

/// Apply one relation-level operation to a display relation.
pub fn apply_rel_op(
    op: &RelOpKind,
    dr: &DisplayRelation,
) -> Result<DisplayRelation, tioga2_display::DisplayError> {
    match op {
        RelOpKind::Restrict(pred) => {
            let mut out = dr.clone();
            out.rel = ops::restrict(&dr.rel, pred)?;
            Ok(out)
        }
        RelOpKind::Project(cols) => {
            let fields: Vec<&str> = cols.iter().map(String::as_str).collect();
            let rel = ops::project(&dr.rel, &fields)?;
            redefault(rel, dr)
        }
        RelOpKind::Sample { p, seed } => {
            let mut out = dr.clone();
            out.rel = ops::sample(&dr.rel, *p, *seed)?;
            Ok(out)
        }
        RelOpKind::Aggregate { keys, aggs } => {
            let keys: Vec<&str> = keys.iter().map(String::as_str).collect();
            let rel = tioga2_relational::aggregate(&dr.rel, &keys, aggs)?;
            redefault(rel, dr)
        }
        RelOpKind::Distinct(attrs) => {
            let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let mut out = dr.clone();
            out.rel = tioga2_relational::distinct(&dr.rel, &attrs)?;
            Ok(out)
        }
        RelOpKind::Limit { offset, count } => {
            let mut out = dr.clone();
            out.rel = tioga2_relational::limit(&dr.rel, *offset, *count);
            Ok(out)
        }
        RelOpKind::Rename { from, to } => {
            let mut out = dr.clone();
            out.rel = tioga2_relational::rename(&dr.rel, from, to)?;
            out.rename_attr_refs(from, to);
            out.validate()?;
            Ok(out)
        }
        RelOpKind::Sort(keys) => {
            let keys: Vec<(&str, bool)> = keys.iter().map(|(k, a)| (k.as_str(), *a)).collect();
            let mut out = dr.clone();
            out.rel = ops::sort(&dr.rel, &keys)?;
            Ok(out)
        }
        RelOpKind::AddAttribute { name, ty, def, role } => {
            attr_ops::add_attribute(dr, name, ty.clone(), def.clone(), *role)
        }
        RelOpKind::RemoveAttribute(name) => attr_ops::remove_attribute(dr, name),
        RelOpKind::SetAttribute { name, ty, def } => {
            attr_ops::set_attribute(dr, name, ty.clone(), def.clone())
        }
        RelOpKind::SwapAttributes(a, b) => attr_ops::swap_attributes(dr, a, b),
        RelOpKind::ScaleAttribute(name, k) => attr_ops::scale_attribute(dr, name, *k),
        RelOpKind::TranslateAttribute(name, c) => attr_ops::translate_attribute(dr, name, *c),
        RelOpKind::CombineDisplays { first, second, dx, dy, new_name } => {
            attr_ops::combine_displays(dr, first, second, (*dx, *dy), new_name)
        }
        RelOpKind::SetActiveDisplay(name) => attr_ops::set_active_display(dr, name),
        RelOpKind::SetRange { min, max } => set_range(dr, *min, *max),
        RelOpKind::SetLayerName(name) => {
            let mut out = dr.clone();
            out.name = name.clone();
            Ok(out)
        }
    }
}

/// The Tioga-1 baseline: eagerly evaluate *every* sink after an edit with
/// no caching (fresh engine).  Returns the stats of the full recompute.
pub fn eval_eager(graph: &Graph, catalog: &Catalog) -> Result<(Vec<Data>, EvalStats), FlowError> {
    let mut engine = Engine::new(catalog.clone());
    let mut out = Vec::new();
    for sink in graph.sinks() {
        let node = graph.node(sink)?;
        for port in 0..node.out_types.len() {
            out.push(engine.demand(graph, sink, port)?);
        }
    }
    Ok((out, engine.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::{BoxRegistry, CustomBox};
    use crate::encapsulate::encapsulate;
    use crate::port::PortType;
    use tioga2_expr::{parse, ScalarType as T, Value};
    use tioga2_relational::relation::RelationBuilder;

    fn catalog() -> Catalog {
        let c = Catalog::new();
        let mut b = RelationBuilder::new()
            .field("name", T::Text)
            .field("state", T::Text)
            .field("altitude", T::Float);
        for (n, s, a) in [
            ("Baton Rouge", "LA", 17.0),
            ("New Orleans", "LA", 2.0),
            ("Shreveport", "LA", 55.0),
            ("Austin", "TX", 149.0),
        ] {
            b = b.row(vec![Value::Text(n.into()), Value::Text(s.into()), Value::Float(a)]);
        }
        c.register("Stations", b.build().unwrap());
        c
    }

    fn restrict(src: &str) -> BoxKind {
        BoxKind::rel(RelOpKind::Restrict(parse(src).unwrap()))
    }

    #[test]
    fn table_then_restrict_pipeline() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, r, 0).unwrap();
        let mut e = Engine::new(catalog());
        let d = e.demand_displayable(&g, r, 0).unwrap();
        assert_eq!(d.tuple_count(), 3);
        assert_eq!(e.stats.box_evals, 2);
    }

    #[test]
    fn unknown_table_is_an_error() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Nope".into()));
        let mut e = Engine::new(catalog());
        assert!(e.demand(&g, t, 0).is_err());
    }

    #[test]
    fn dangling_input_reported() {
        let mut g = Graph::new();
        let r = g.add(restrict("state = 'LA'"));
        let mut e = Engine::new(catalog());
        assert!(matches!(e.demand(&g, r, 0), Err(FlowError::Dangling { .. })));
    }

    #[test]
    fn memoization_and_invalidation() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let r2 = g.add(restrict("altitude > 10.0"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(r1, 0, r2, 0).unwrap();
        let mut e = Engine::new(catalog());
        e.demand(&g, r2, 0).unwrap();
        assert_eq!(e.stats.box_evals, 3);

        // Re-demand: all cache hits, no evals.
        e.demand(&g, r2, 0).unwrap();
        assert_eq!(e.stats.box_evals, 3);
        assert!(e.stats.cache_hits >= 1);

        // Edit the tail box: only it re-fires.
        g.update_kind(r2, restrict("altitude > 20.0")).unwrap();
        e.demand(&g, r2, 0).unwrap();
        assert_eq!(e.stats.box_evals, 4, "only the edited box re-evaluates");

        // Edit the head box: the whole cone re-fires.
        g.update_kind(r1, restrict("state = 'TX'")).unwrap();
        e.demand(&g, r2, 0).unwrap();
        assert_eq!(e.stats.box_evals, 6);
    }

    #[test]
    fn laziness_only_demanded_cone_fires() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let r2 = g.add(restrict("state = 'TX'"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(t, 0, r2, 0).unwrap();
        let mut e = Engine::new(catalog());
        e.demand(&g, r1, 0).unwrap();
        assert_eq!(e.stats.box_evals, 2, "r2 was never demanded");
    }

    #[test]
    fn tee_duplicates() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let tee = g.add(BoxKind::Tee(PortType::R));
        let r1 = g.add(restrict("state = 'LA'"));
        let r2 = g.add(restrict("state = 'TX'"));
        g.connect(t, 0, tee, 0).unwrap();
        g.connect(tee, 0, r1, 0).unwrap();
        g.connect(tee, 1, r2, 0).unwrap();
        let mut e = Engine::new(catalog());
        assert_eq!(e.demand_displayable(&g, r1, 0).unwrap().tuple_count(), 3);
        assert_eq!(e.demand_displayable(&g, r2, 0).unwrap().tuple_count(), 1);
        // The table fired once: tee reused the cached upstream.
        assert_eq!(e.stats.box_evals, 4);
    }

    #[test]
    fn switch_routes_by_predicate() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let sw = g.add(BoxKind::Switch(parse("altitude > 50.0").unwrap()));
        g.connect(t, 0, sw, 0).unwrap();
        let mut e = Engine::new(catalog());
        let hi = e.demand_displayable(&g, sw, 0).unwrap();
        let lo = e.demand_displayable(&g, sw, 1).unwrap();
        assert_eq!(hi.tuple_count(), 2);
        assert_eq!(lo.tuple_count(), 2);
    }

    #[test]
    fn join_evaluates() {
        let cat = catalog();
        let mut obs = RelationBuilder::new()
            .field("station", T::Text)
            .field("temp", T::Float)
            .build()
            .unwrap();
        obs.push_row(vec![Value::Text("Austin".into()), Value::Float(35.0)]).unwrap();
        cat.register("Obs", obs);
        let mut g = Graph::new();
        let a = g.add(BoxKind::Table("Stations".into()));
        let b = g.add(BoxKind::Table("Obs".into()));
        let j = g.add(BoxKind::Join(parse("name = station").unwrap()));
        g.connect(a, 0, j, 0).unwrap();
        g.connect(b, 0, j, 1).unwrap();
        let mut e = Engine::new(cat);
        let d = e.demand_displayable(&g, j, 0).unwrap();
        assert_eq!(d.tuple_count(), 1);
    }

    #[test]
    fn viewer_passes_through() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let v = g.add(BoxKind::Viewer { canvas: "main".into(), ty: PortType::R });
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, v, 0).unwrap();
        g.connect(v, 0, r, 0).unwrap();
        let mut e = Engine::new(catalog());
        // The viewer observes the full table; downstream keeps working.
        assert_eq!(e.demand_displayable(&g, v, 0).unwrap().tuple_count(), 4);
        assert_eq!(e.demand_displayable(&g, r, 0).unwrap().tuple_count(), 3);
    }

    #[test]
    fn stitch_and_overlay() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let tee = g.add(BoxKind::Tee(PortType::R));
        g.connect(t, 0, tee, 0).unwrap();
        let ov = g.add(BoxKind::Overlay { offset: vec![], invariant: true });
        g.connect(tee, 0, ov, 0).unwrap();
        g.connect(tee, 1, ov, 1).unwrap();
        let st = g.add(BoxKind::Stitch { arity: 2, layout: tioga2_display::Layout::Horizontal });
        let t2 = g.add(BoxKind::Table("Stations".into()));
        g.connect(ov, 0, st, 0).unwrap();
        g.connect(t2, 0, st, 1).unwrap();
        let mut e = Engine::new(catalog());
        match e.demand_displayable(&g, st, 0).unwrap() {
            Displayable::G(grp) => {
                assert_eq!(grp.members.len(), 2);
                assert_eq!(grp.members[0].layers.len(), 2, "overlay stacked two layers");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encapsulated_box_evaluates() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let s = g.add(BoxKind::rel(RelOpKind::Sort(vec![("altitude".into(), true)])));
        let r2 = g.add(restrict("altitude > 10.0"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(r1, 0, s, 0).unwrap();
        g.connect(s, 0, r2, 0).unwrap();
        let def = std::sync::Arc::new(encapsulate(&g, &[r1, s, r2], &[], "LaPipeline").unwrap());

        // Use the encapsulated box in a fresh program.
        let mut g2 = Graph::new();
        let t2 = g2.add(BoxKind::Table("Stations".into()));
        let ebox = g2.add(def.instantiate(vec![]).unwrap());
        g2.connect(t2, 0, ebox, 0).unwrap();
        let mut e = Engine::new(catalog());
        let d = e.demand_displayable(&g2, ebox, 0).unwrap();
        assert_eq!(d.tuple_count(), 2);
    }

    #[test]
    fn encapsulated_hole_plugs_behave_as_macro() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let mid = g.add(restrict("TRUE"));
        let r2 = g.add(restrict("altitude > 0.0"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(r1, 0, mid, 0).unwrap();
        g.connect(mid, 0, r2, 0).unwrap();
        let def =
            std::sync::Arc::new(encapsulate(&g, &[r1, mid, r2], &[vec![mid]], "Holey").unwrap());

        let mut g2 = Graph::new();
        let t2 = g2.add(BoxKind::Table("Stations".into()));
        // Plug the hole with a Sample box -> probabilistic filter.
        let inst =
            def.instantiate(vec![BoxKind::rel(RelOpKind::Sample { p: 1.0, seed: 7 })]).unwrap();
        let ebox = g2.add(inst);
        g2.connect(t2, 0, ebox, 0).unwrap();
        let mut e = Engine::new(catalog());
        assert_eq!(e.demand_displayable(&g2, ebox, 0).unwrap().tuple_count(), 3);

        // A different plug changes the behaviour: restrict to altitude < 10.
        let inst2 = def.instantiate(vec![restrict("altitude < 10.0")]).unwrap();
        g2.replace_kind(ebox, inst2).unwrap();
        assert_eq!(e.demand_displayable(&g2, ebox, 0).unwrap().tuple_count(), 1);
    }

    #[test]
    fn custom_box_fires() {
        let mut reg = BoxRegistry::default();
        let custom = std::sync::Arc::new(CustomBox {
            name: "TakeFirst".into(),
            in_types: vec![PortType::R],
            out_types: vec![PortType::R],
            f: Box::new(|ins| {
                let d = ins[0].clone().into_displayable().map_err(FlowError::from)?;
                match d {
                    Displayable::R(mut dr) => {
                        let first = dr.rel.tuples().first().cloned();
                        let keep = first.map(|t| t.row_id);
                        dr.rel.tuples_mut().retain(|t| Some(t.row_id) == keep);
                        Ok(vec![Data::D(Displayable::R(dr))])
                    }
                    other => Ok(vec![Data::D(other)]),
                }
            }),
        });
        reg.register_custom(custom.clone());
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let c = g.add(reg.get("TakeFirst").unwrap().kind.clone().unwrap());
        g.connect(t, 0, c, 0).unwrap();
        let mut e = Engine::new(catalog());
        assert_eq!(e.demand_displayable(&g, c, 0).unwrap().tuple_count(), 1);
    }

    #[test]
    fn eager_baseline_recomputes_everything() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let r2 = g.add(restrict("altitude > 10.0"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(r1, 0, r2, 0).unwrap();
        let cat = catalog();
        let (out1, stats1) = eval_eager(&g, &cat).unwrap();
        assert_eq!(out1.len(), 1);
        assert_eq!(stats1.box_evals, 3);
        // Lazy engine across two consecutive identical demands fires 3
        // boxes total; eager across two "edits" fires 6.
        let (_, stats2) = eval_eager(&g, &cat).unwrap();
        assert_eq!(stats1.box_evals + stats2.box_evals, 6);
    }

    #[test]
    fn catalog_update_visible_after_invalidate() {
        let cat = catalog();
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let mut e = Engine::new(cat.clone());
        assert_eq!(e.demand_displayable(&g, t, 0).unwrap().tuple_count(), 4);
        tioga2_relational::update::insert_row(
            &cat,
            "Stations",
            vec![Value::Text("Lafayette".into()), Value::Text("LA".into()), Value::Float(11.0)],
        )
        .unwrap();
        // Structural signature unchanged -> stale cache until invalidated.
        assert_eq!(e.demand_displayable(&g, t, 0).unwrap().tuple_count(), 4);
        e.invalidate_all();
        assert_eq!(e.demand_displayable(&g, t, 0).unwrap().tuple_count(), 5);
    }

    #[test]
    fn recorder_sees_fires_hits_and_invalidations() {
        use tioga2_obs::InMemoryRecorder;
        let rec = std::sync::Arc::new(InMemoryRecorder::new());
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, r, 0).unwrap();
        let mut e = Engine::new(catalog());
        e.set_recorder(rec.clone());

        e.demand(&g, r, 0).unwrap();
        assert_eq!(rec.counter("engine.box_evals"), Some(2));
        let spans = rec.completed_spans();
        let fires: Vec<&str> =
            spans.iter().filter(|s| s.name.starts_with("fire:")).map(|s| s.name.as_str()).collect();
        assert_eq!(fires.len(), 2);
        // Fire spans nest under the demand span; the relop span nests
        // under the Restrict fire.
        assert!(spans.iter().any(|s| s.name == "engine.demand" && s.depth == 0));
        assert!(spans.iter().any(|s| s.name.starts_with("fire:") && s.depth > 0));
        assert!(spans.iter().any(|s| s.name == "relop:Restrict"));
        // Rows flowed: the restrict saw 4 in, 3 out.
        let relop = spans.iter().find(|s| s.name == "relop:Restrict").unwrap();
        assert_eq!(relop.fields, vec![("rows_in", 4), ("rows_out", 3)]);
        assert_eq!(e.stats.rows_in, 4, "table takes no rows, restrict takes 4");
        assert_eq!(e.stats.rows_out, 7, "table emits 4, restrict emits 3");

        // Second demand: pure cache hits, no new fire spans.
        e.demand(&g, r, 0).unwrap();
        assert_eq!(rec.counter("engine.box_evals"), Some(2));
        assert_eq!(rec.counter("engine.cache_hits"), Some(1));
        let tallies = rec.node_cache_tallies();
        let restrict_tally =
            tallies.iter().find(|(k, _)| k.starts_with("Restrict")).map(|(_, v)| *v).unwrap();
        assert_eq!(restrict_tally.misses, 1);
        assert_eq!(restrict_tally.hits, 1);

        // Invalidation records its counter event.
        e.invalidate_all();
        assert_eq!(rec.counter("cache.invalidations"), Some(1));
        assert_eq!(rec.counter("cache.invalidated_entries"), Some(2));
    }

    #[test]
    fn demand_analyzed_builds_a_trace_tree() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let r2 = g.add(restrict("altitude > 10.0"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(r1, 0, r2, 0).unwrap();
        let mut e = Engine::new(catalog());
        let (_, trace) = e.demand_analyzed(&g, r2, 0, true, None).unwrap();
        let trace = trace.unwrap();
        assert_eq!(trace.plan_cache, CacheStatus::Miss);
        // The two restricts fused: the root is optimizer-made.
        assert!(trace.rewrites.iter().any(|(r, _)| r == "fuse_restricts"), "{:?}", trace.rewrites);
        assert_eq!(trace.root.provenance, "rewritten");
        assert_eq!(trace.root.rows_in, 4);
        assert_eq!(trace.root.rows_out, 2, "LA stations above 10m");
        let src = &trace.root.children[0];
        assert_eq!(src.rows_out, 4);
        assert_eq!(src.cache, CacheStatus::Miss, "first demand fires the table box");
        assert_eq!(src.provenance, "");

        // Analyze again: the plan cache would have answered, and the
        // boundary cone is memoized now — but rows are still real.
        let (_, trace2) = e.demand_analyzed(&g, r2, 0, true, None).unwrap();
        let trace2 = trace2.unwrap();
        assert_eq!(trace2.plan_cache, CacheStatus::Hit);
        assert_eq!(trace2.root.children[0].cache, CacheStatus::Hit);
        assert_eq!(trace2.root.rows_out, 2);
        assert_eq!(e.demand_traces().len(), 2);
        assert!(e.last_trace_for(r2, 0).is_some());
    }

    #[test]
    fn analyzed_window_restrict_is_marked() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, r, 0).unwrap();
        let w = parse("altitude > 10.0").unwrap();
        let mut e = Engine::new(catalog());
        // Rewrites off so the synthesized window restrict stays on top.
        let (_, trace) = e.demand_analyzed(&g, r, 0, false, Some(&w)).unwrap();
        let root = trace.unwrap().root;
        assert_eq!(root.provenance, "window");
        assert_eq!(root.children[0].provenance, "", "the user's own restrict");
    }

    #[test]
    fn passive_planned_demands_fill_the_trace_ring_only_when_recording() {
        use tioga2_obs::InMemoryRecorder;
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, r, 0).unwrap();
        let mut e = Engine::new(catalog());
        e.demand_planned(&g, r, 0).unwrap();
        assert!(e.demand_traces().is_empty(), "noop recorder: no attribution");
        let rec = std::sync::Arc::new(InMemoryRecorder::new());
        e.set_recorder(rec.clone());
        e.invalidate_all();
        e.demand_planned(&g, r, 0).unwrap();
        assert_eq!(e.demand_traces().len(), 1, "first recordable demand is sampled");
        let trace = &e.demand_traces()[0];
        assert_eq!(trace.root.rows_out, 3);
        assert_eq!(trace.threads, e.threads());
        // The next TRACE_SAMPLE_PERIOD-1 recordable demands ride without
        // attribution; the one after is sampled again.
        for _ in 0..(TRACE_SAMPLE_PERIOD - 1) {
            e.invalidate_all();
            e.demand_planned(&g, r, 0).unwrap();
        }
        assert_eq!(e.demand_traces().len(), 1, "1-in-{TRACE_SAMPLE_PERIOD} sampling");
        e.invalidate_all();
        e.demand_planned(&g, r, 0).unwrap();
        assert_eq!(e.demand_traces().len(), 2);
        // ...but the latency histogram saw every demand, sampled or not.
        let hists = rec.histograms();
        let lat = hists.get("demand.latency_ns").expect("demand latency histogram");
        assert_eq!(lat.count(), TRACE_SAMPLE_PERIOD + 1);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, r, 0).unwrap();
        let mut e = Engine::new(catalog());
        for _ in 0..(DEMAND_TRACE_RING + 5) {
            e.demand_analyzed(&g, r, 0, true, None).unwrap();
        }
        assert_eq!(e.demand_traces().len(), DEMAND_TRACE_RING);
        let first = e.demand_traces()[0].demand_id;
        assert_eq!(first, 5, "oldest traces evicted");
    }

    #[test]
    fn stats_rows_accumulate_without_recorder() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r = g.add(restrict("state = 'LA'"));
        g.connect(t, 0, r, 0).unwrap();
        let mut e = Engine::new(catalog());
        e.demand(&g, r, 0).unwrap();
        assert_eq!(e.stats.rows_in, 4);
        assert_eq!(e.stats.rows_out, 7);
    }

    #[test]
    fn project_keeps_everything_visualizable() {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let p = g.add(BoxKind::rel(RelOpKind::Project(vec!["name".into()])));
        g.connect(t, 0, p, 0).unwrap();
        let mut e = Engine::new(catalog());
        let d = e.demand_displayable(&g, p, 0).unwrap();
        match d {
            Displayable::R(dr) => {
                dr.validate().unwrap();
                assert_eq!(dr.rel.schema().len(), 1);
                assert!(!dr.tuple_display(0).unwrap().is_empty());
            }
            other => panic!("{other:?}"),
        }
    }
}
