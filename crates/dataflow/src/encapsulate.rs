//! **Encapsulate** (paper §4.1): turning a region of a program into a new
//! box, optionally with *holes*.
//!
//! "The user specifies a portion of the program to be encapsulated by
//! drawing a closed curve around a region of the program.  Edges cut by
//! the curve are the inputs and outputs of the new box. ...  The user
//! draws additional closed areas within the program region ...  These
//! areas become 'holes' — they are not included in the encapsulated box,
//! and edges cut by a hole are unconnected.  To use an encapsulated box
//! with holes, the user must specify a box — with compatible types — that
//! can be plugged into each hole."
//!
//! Holes make encapsulated boxes higher-order: graphical macros.

use crate::boxes::BoxKind;
use crate::error::FlowError;
use crate::graph::{Graph, NodeId};
use crate::port::PortType;
use std::collections::BTreeMap;

/// Signature of one hole.
#[derive(Debug, Clone, PartialEq)]
pub struct HoleSig {
    pub in_types: Vec<PortType>,
    pub out_types: Vec<PortType>,
}

/// A reusable encapsulated box definition.
#[derive(Debug, Clone, PartialEq)]
pub struct EncapsulatedDef {
    pub name: String,
    /// The inner program.  Outer inputs appear as `BoxKind::Param` nodes;
    /// holes appear as `BoxKind::Hole` nodes.
    pub graph: Graph,
    pub in_types: Vec<PortType>,
    pub out_types: Vec<PortType>,
    /// Inner `(node, out_port)` exposed as each outer output.
    pub output_bindings: Vec<(NodeId, usize)>,
    pub holes: Vec<HoleSig>,
}

impl EncapsulatedDef {
    /// Instantiate as a box, supplying one plug per hole.  Plug
    /// signatures must match the hole signatures exactly in arity and
    /// accept the hole's incoming types.
    pub fn instantiate(
        self: &std::sync::Arc<Self>,
        plugs: Vec<BoxKind>,
    ) -> Result<BoxKind, FlowError> {
        if plugs.len() != self.holes.len() {
            return Err(FlowError::Edit(format!(
                "'{}' has {} hole(s) but {} plug(s) were supplied",
                self.name,
                self.holes.len(),
                plugs.len()
            )));
        }
        for (i, (plug, hole)) in plugs.iter().zip(&self.holes).enumerate() {
            let (pin, pout) = plug.signature();
            if pin.len() != hole.in_types.len() || pout.len() != hole.out_types.len() {
                return Err(FlowError::Type(format!(
                    "plug '{}' arity does not match hole {i}",
                    plug.name()
                )));
            }
            for (need, have) in pin.iter().zip(&hole.in_types) {
                if !need.accepts(have) {
                    return Err(FlowError::Type(format!(
                        "plug '{}' input does not accept hole {i} input type {have}",
                        plug.name()
                    )));
                }
            }
            for (have, need) in pout.iter().zip(&hole.out_types) {
                if !need.accepts(have) {
                    return Err(FlowError::Type(format!(
                        "plug '{}' output {have} does not satisfy hole {i} output type {need}",
                        plug.name()
                    )));
                }
            }
        }
        Ok(BoxKind::Encapsulated { def: self.clone(), plugs })
    }
}

/// Encapsulate `region` of `graph` (with optional `hole_regions`, which
/// must be disjoint subsets of `region`) into a named definition.
///
/// * Edges entering the region from outside become inputs (`Param`s).
/// * Edges leaving the region become outputs (one per distinct source
///   port, in discovery order).
/// * Nodes in a hole region are replaced by a single `Hole` box whose
///   ports are the edges crossing the hole boundary.
pub fn encapsulate(
    graph: &Graph,
    region: &[NodeId],
    hole_regions: &[Vec<NodeId>],
    name: impl Into<String>,
) -> Result<EncapsulatedDef, FlowError> {
    let name = name.into();
    if region.is_empty() {
        return Err(FlowError::Edit("cannot encapsulate an empty region".into()));
    }
    let in_region = |id: NodeId| region.contains(&id);
    for id in region {
        graph.node(*id)?;
    }
    for (hi, hole) in hole_regions.iter().enumerate() {
        for id in hole {
            if !in_region(*id) {
                return Err(FlowError::Edit(format!("hole {hi} node {id} is outside the region")));
            }
        }
        for other in &hole_regions[hi + 1..] {
            if hole.iter().any(|n| other.contains(n)) {
                return Err(FlowError::Edit("hole regions must be disjoint".into()));
            }
        }
    }
    let hole_of = |id: NodeId| hole_regions.iter().position(|h| h.contains(&id));

    let mut inner = Graph::new();
    let mut map: BTreeMap<NodeId, NodeId> = BTreeMap::new();

    // First pass: create the inner copies of kept (non-hole) nodes.
    for id in region {
        if hole_of(*id).is_none() {
            let node = graph.node(*id)?;
            map.insert(*id, inner.add(node.kind.clone()));
        }
    }

    // Build hole signatures and nodes.  For each hole region: inputs are
    // edges from kept/outer nodes into the hole; outputs are edges from
    // the hole into kept nodes.
    let mut holes: Vec<HoleSig> = Vec::new();
    let mut hole_nodes: Vec<NodeId> = Vec::new();
    // (hole idx, source outside-hole (outer id, out_port)) in port order.
    let mut hole_input_edges: Vec<Vec<(NodeId, usize)>> = Vec::new();
    // For each hole: map (hole-member node, out_port) -> hole out port.
    let mut hole_out_ports: Vec<BTreeMap<(NodeId, usize), usize>> = Vec::new();

    for hole in hole_regions {
        let mut sig = HoleSig { in_types: vec![], out_types: vec![] };
        let mut in_edges = Vec::new();
        let mut out_ports = BTreeMap::new();
        for id in hole {
            let node = graph.node(*id)?;
            for (in_port, inp) in node.inputs.iter().enumerate() {
                if let Some((src, src_port)) = inp {
                    if hole_of(*src).is_none() {
                        // Edge cut by the hole boundary: a hole input.
                        sig.in_types.push(node.in_types[in_port].clone());
                        in_edges.push((*src, *src_port));
                    }
                }
            }
        }
        for id in hole {
            for (cons, _, out_port) in graph.consumers(*id) {
                if in_region(cons) && hole_of(cons).is_none() {
                    let key = (*id, out_port);
                    if let std::collections::btree_map::Entry::Vacant(e) = out_ports.entry(key) {
                        let p = sig.out_types.len();
                        sig.out_types.push(graph.node(*id)?.out_types[out_port].clone());
                        e.insert(p);
                    }
                }
            }
        }
        let hn = inner.add(BoxKind::Hole {
            idx: holes.len(),
            in_types: sig.in_types.clone(),
            out_types: sig.out_types.clone(),
        });
        holes.push(sig);
        hole_nodes.push(hn);
        hole_input_edges.push(in_edges);
        hole_out_ports.push(out_ports);
    }

    // Second pass: re-create edges among kept nodes; crossing edges
    // become Params; edges from holes attach to the hole nodes.
    let mut in_types: Vec<PortType> = Vec::new();
    // One Param per distinct outer (source node, out_port).
    let mut param_for: BTreeMap<(NodeId, usize), NodeId> = BTreeMap::new();
    let mut get_param = |inner: &mut Graph,
                         in_types: &mut Vec<PortType>,
                         src: NodeId,
                         port: usize,
                         ty: PortType| {
        *param_for.entry((src, port)).or_insert_with(|| {
            let idx = in_types.len();
            in_types.push(ty.clone());
            inner.add(BoxKind::Param { idx, ty })
        })
    };

    for id in region {
        if hole_of(*id).is_some() {
            continue;
        }
        let node = graph.node(*id)?;
        for (in_port, inp) in node.inputs.iter().enumerate() {
            let Some((src, src_port)) = inp else { continue };
            if let Some(hi) = hole_of(*src) {
                // Edge out of a hole: connect from the hole node.
                let hp = hole_out_ports[hi][&(*src, *src_port)];
                inner.connect(hole_nodes[hi], hp, map[id], in_port)?;
            } else if in_region(*src) {
                inner.connect(map[src], *src_port, map[id], in_port)?;
            } else {
                // Edge entering the region: an outer input.
                let ty = graph.node(*src)?.out_types[*src_port].clone();
                let p = get_param(&mut inner, &mut in_types, *src, *src_port, ty);
                inner.connect(p, 0, map[id], in_port)?;
            }
        }
    }

    // Hole input edges that originate outside the region need Params too.
    for (hi, edges) in hole_input_edges.iter().enumerate() {
        for (port_idx, (src, src_port)) in edges.iter().enumerate() {
            if in_region(*src) {
                inner.connect(map[src], *src_port, hole_nodes[hi], port_idx)?;
            } else {
                let ty = graph.node(*src)?.out_types[*src_port].clone();
                let p = get_param(&mut inner, &mut in_types, *src, *src_port, ty);
                inner.connect(p, 0, hole_nodes[hi], port_idx)?;
            }
        }
    }

    // Outputs: edges from kept region nodes to outside nodes.
    let mut out_types: Vec<PortType> = Vec::new();
    let mut output_bindings: Vec<(NodeId, usize)> = Vec::new();
    let mut seen_out: BTreeMap<(NodeId, usize), usize> = BTreeMap::new();
    for id in region {
        if hole_of(*id).is_some() {
            continue;
        }
        for (cons, _, out_port) in graph.consumers(*id) {
            if !in_region(cons) {
                let key = (*id, out_port);
                if let std::collections::btree_map::Entry::Vacant(e) = seen_out.entry(key) {
                    e.insert(out_types.len());
                    out_types.push(graph.node(*id)?.out_types[out_port].clone());
                    output_bindings.push((map[id], out_port));
                }
            }
        }
    }
    if out_types.is_empty() {
        // A region with no outgoing edges exposes the outputs of its
        // sink nodes, so the encapsulated box is still useful.
        for id in region {
            if hole_of(*id).is_some() {
                continue;
            }
            if graph.consumers(*id).is_empty() {
                let node = graph.node(*id)?;
                for (out_port, ty) in node.out_types.iter().enumerate() {
                    out_types.push(ty.clone());
                    output_bindings.push((map[id], out_port));
                }
            }
        }
    }
    if out_types.is_empty() {
        return Err(FlowError::Edit("encapsulated region exposes no outputs".into()));
    }

    Ok(EncapsulatedDef { name, graph: inner, in_types, out_types, output_bindings, holes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::RelOpKind;
    use tioga2_expr::parse;

    fn restrict(src: &str) -> BoxKind {
        BoxKind::rel(RelOpKind::Restrict(parse(src).unwrap()))
    }

    /// Table -> Restrict -> Sample -> Restrict(sink); encapsulate the
    /// middle two.
    fn chain() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let r1 = g.add(restrict("state = 'LA'"));
        let s = g.add(BoxKind::rel(RelOpKind::Sample { p: 0.5, seed: 1 }));
        let r2 = g.add(restrict("altitude > 0.0"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(r1, 0, s, 0).unwrap();
        g.connect(s, 0, r2, 0).unwrap();
        (g, vec![t, r1, s, r2])
    }

    #[test]
    fn encapsulate_middle_of_chain() {
        let (g, ids) = chain();
        let def = encapsulate(&g, &[ids[1], ids[2]], &[], "LaSample").unwrap();
        assert_eq!(def.in_types, vec![PortType::R]);
        assert_eq!(def.out_types, vec![PortType::R]);
        assert!(def.holes.is_empty());
        // Inner graph: Param + Restrict + Sample.
        assert_eq!(def.graph.len(), 3);
    }

    #[test]
    fn encapsulate_whole_program_has_sink_outputs() {
        let (g, ids) = chain();
        let def = encapsulate(&g, &ids, &[], "All").unwrap();
        assert!(def.in_types.is_empty());
        assert_eq!(def.out_types, vec![PortType::R]);
    }

    #[test]
    fn encapsulate_with_hole() {
        let (g, ids) = chain();
        // Region = r1, s, r2 with s as a hole.
        let def = encapsulate(&g, &[ids[1], ids[2], ids[3]], &[vec![ids[2]]], "WithHole").unwrap();
        assert_eq!(def.holes.len(), 1);
        assert_eq!(def.holes[0].in_types, vec![PortType::R]);
        assert_eq!(def.holes[0].out_types, vec![PortType::R]);
        // Instantiate with a compatible plug.
        let arc = std::sync::Arc::new(def);
        let inst = arc.instantiate(vec![restrict("altitude < 100.0")]).unwrap();
        let (pin, pout) = inst.signature();
        assert_eq!(pin, vec![PortType::R]);
        assert_eq!(pout, vec![PortType::R]);
        // Wrong plug count / type rejected.
        assert!(arc.instantiate(vec![]).is_err());
        assert!(arc.instantiate(vec![BoxKind::Join(parse("a = b").unwrap())]).is_err());
    }

    #[test]
    fn empty_region_rejected() {
        let (g, _) = chain();
        assert!(encapsulate(&g, &[], &[], "x").is_err());
    }

    #[test]
    fn hole_outside_region_rejected() {
        let (g, ids) = chain();
        assert!(encapsulate(&g, &[ids[1]], &[vec![ids[2]]], "x").is_err());
    }

    #[test]
    fn overlapping_holes_rejected() {
        let (g, ids) = chain();
        assert!(encapsulate(&g, &[ids[1], ids[2]], &[vec![ids[1]], vec![ids[1]]], "x").is_err());
    }

    #[test]
    fn multi_input_region() {
        // Two tables joined; encapsulating the join yields two inputs.
        let mut g = Graph::new();
        let a = g.add(BoxKind::Table("A".into()));
        let b = g.add(BoxKind::Table("B".into()));
        let j = g.add(BoxKind::Join(parse("id = id_2").unwrap()));
        g.connect(a, 0, j, 0).unwrap();
        g.connect(b, 0, j, 1).unwrap();
        let def = encapsulate(&g, &[j], &[], "JoinOnly").unwrap();
        assert_eq!(def.in_types, vec![PortType::R, PortType::R]);
    }

    #[test]
    fn fan_out_within_region_dedupes_params() {
        // One outer source feeding two region nodes: a single Param.
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("A".into()));
        let r1 = g.add(restrict("a = 1"));
        let r2 = g.add(restrict("a = 2"));
        g.connect(t, 0, r1, 0).unwrap();
        g.connect(t, 0, r2, 0).unwrap();
        let def = encapsulate(&g, &[r1, r2], &[], "Fan").unwrap();
        assert_eq!(def.in_types.len(), 1, "one Param for one outer source port");
        assert_eq!(def.out_types.len(), 2, "both sinks exposed");
    }
}
