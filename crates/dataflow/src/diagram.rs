//! Rendering the program window itself — the boxes-and-arrows diagram of
//! paper Figure 1.
//!
//! The layout is a simple layered (Sugiyama-lite) arrangement: nodes are
//! ranked by their longest path from a source, ranks become columns, and
//! edges run left to right.  Output formats: self-contained SVG (for the
//! figure regenerator) and Graphviz DOT (for external tooling).

use crate::graph::{Graph, NodeId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Node box size and spacing in SVG pixels.
const BOX_W: i32 = 150;
const BOX_H: i32 = 44;
const H_GAP: i32 = 60;
const V_GAP: i32 = 26;
const MARGIN: i32 = 20;

/// Computed diagram layout: `(node, column, row)` plus total grid size.
#[derive(Debug, Clone)]
pub struct DiagramLayout {
    pub positions: BTreeMap<NodeId, (usize, usize)>,
    pub cols: usize,
    pub rows: usize,
}

/// Rank every node by longest distance from a source, then stack each
/// rank's nodes in id order.
pub fn layout(graph: &Graph) -> DiagramLayout {
    // Longest-path rank via memoized DFS over input edges (graphs are
    // DAGs by construction).
    fn rank(graph: &Graph, id: NodeId, memo: &mut BTreeMap<NodeId, usize>) -> usize {
        if let Some(r) = memo.get(&id) {
            return *r;
        }
        let r = graph
            .node(id)
            .map(|n| {
                n.inputs
                    .iter()
                    .flatten()
                    .map(|(src, _)| rank(graph, *src, memo) + 1)
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        memo.insert(id, r);
        r
    }
    let mut memo = BTreeMap::new();
    let mut by_rank: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for id in graph.node_ids() {
        let r = rank(graph, id, &mut memo);
        by_rank.entry(r).or_default().push(id);
    }
    let mut positions = BTreeMap::new();
    let mut rows = 1;
    for (col, ids) in by_rank.values().enumerate() {
        rows = rows.max(ids.len());
        for (row, id) in ids.iter().enumerate() {
            positions.insert(*id, (col, row));
        }
    }
    DiagramLayout { positions, cols: by_rank.len().max(1), rows }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn px(col: usize, row: usize) -> (i32, i32) {
    (MARGIN + col as i32 * (BOX_W + H_GAP), MARGIN + row as i32 * (BOX_H + V_GAP))
}

/// Render the program window as a self-contained SVG document.
pub fn to_svg(graph: &Graph) -> String {
    let l = layout(graph);
    let width = MARGIN * 2 + l.cols as i32 * (BOX_W + H_GAP) - H_GAP.min(0);
    let height = MARGIN * 2 + l.rows as i32 * (BOX_H + V_GAP);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width}\" height=\"{height}\" viewBox=\"0 0 {width} {height}\" font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"#fbfbf7\"/>");

    // Edges first (under the boxes).
    for n in graph.nodes() {
        let Some(&(tc, tr)) = l.positions.get(&n.id) else { continue };
        let (tx, ty) = px(tc, tr);
        for (in_port, inp) in n.inputs.iter().enumerate() {
            let Some((src, out_port)) = inp else { continue };
            let Some(&(sc, sr)) = l.positions.get(src) else { continue };
            let (sx, sy) = px(sc, sr);
            let src_n = graph.node(*src).expect("edge source exists");
            let x0 = sx + BOX_W;
            let y0 = sy + BOX_H * (*out_port as i32 + 1) / (src_n.out_types.len() as i32 + 1);
            let x1 = tx;
            let y1 = ty + BOX_H * (in_port as i32 + 1) / (n.in_types.len() as i32 + 1);
            let mx = (x0 + x1) / 2;
            let _ = writeln!(
                out,
                "<path d=\"M {x0} {y0} C {mx} {y0}, {mx} {y1}, {x1} {y1}\" fill=\"none\" stroke=\"#666666\" stroke-width=\"1.5\"/>"
            );
            // Arrowhead.
            let _ = writeln!(
                out,
                "<polygon points=\"{x1},{y1} {},{} {},{}\" fill=\"#666666\"/>",
                x1 - 7,
                y1 - 4,
                x1 - 7,
                y1 + 4
            );
        }
    }

    // Boxes.
    for n in graph.nodes() {
        let Some(&(c, r)) = l.positions.get(&n.id) else { continue };
        let (x, y) = px(c, r);
        let is_viewer = matches!(n.kind, crate::boxes::BoxKind::Viewer { .. });
        let fill = if is_viewer { "#e8f0fe" } else { "#ffffff" };
        let _ = writeln!(
            out,
            "<rect x=\"{x}\" y=\"{y}\" width=\"{BOX_W}\" height=\"{BOX_H}\" rx=\"6\" fill=\"{fill}\" stroke=\"#333333\" stroke-width=\"1.5\"/>"
        );
        let name = esc(&n.name());
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\">{name}</text>",
            x + BOX_W / 2,
            y + 18
        );
        let sig: String = format!(
            "{} → {}",
            n.in_types.iter().map(|t| t.code()).collect::<Vec<_>>().join(","),
            n.out_types.iter().map(|t| t.code()).collect::<Vec<_>>().join(",")
        );
        let _ = writeln!(
            out,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" fill=\"#888888\" font-size=\"9\">{} {}</text>",
            x + BOX_W / 2,
            y + 34,
            n.id,
            esc(&sig)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render the program as Graphviz DOT.
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::from(
        "digraph tioga2 {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n",
    );
    for n in graph.nodes() {
        let _ =
            writeln!(out, "  n{} [label=\"{}\\n{}\"];", n.id.0, n.name().replace('"', "'"), n.id);
    }
    for n in graph.nodes() {
        for (in_port, inp) in n.inputs.iter().enumerate() {
            if let Some((src, out_port)) = inp {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [taillabel=\"{}\", headlabel=\"{}\"];",
                    src.0, n.id.0, out_port, in_port
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::{BoxKind, RelOpKind};
    use crate::port::PortType;
    use tioga2_expr::parse;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("Stations".into()));
        let tee = g.add(BoxKind::Tee(PortType::R));
        let r = g.add(BoxKind::rel(RelOpKind::Restrict(parse("state = 'LA'").unwrap())));
        let v1 = g.add(BoxKind::Viewer { canvas: "main".into(), ty: PortType::R });
        let v2 = g.add(BoxKind::Viewer { canvas: "probe".into(), ty: PortType::R });
        g.connect(t, 0, tee, 0).unwrap();
        g.connect(tee, 0, r, 0).unwrap();
        g.connect(r, 0, v1, 0).unwrap();
        g.connect(tee, 1, v2, 0).unwrap();
        g
    }

    #[test]
    fn layout_ranks_follow_dataflow() {
        let g = sample_graph();
        let l = layout(&g);
        assert_eq!(l.cols, 4, "table, tee, (restrict|viewer2), ...");
        let ids = g.node_ids();
        let col = |i: usize| l.positions[&ids[i]].0;
        assert_eq!(col(0), 0, "table is a source");
        assert!(col(1) > col(0));
        assert!(col(2) > col(1));
        assert!(col(3) > col(2), "viewer after restrict");
        assert!(col(4) > col(1), "probe viewer after the tee");
    }

    #[test]
    fn svg_contains_every_box_and_edge() {
        let g = sample_graph();
        let svg = to_svg(&g);
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<rect x=").count(), g.len(), "one box per node");
        // 4 edges -> 4 paths + arrowheads.
        assert_eq!(svg.matches("<path").count(), 4);
        assert_eq!(svg.matches("<polygon").count(), 4);
        assert!(svg.contains("Stations"));
        assert!(svg.contains("Viewer[main]"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let g = sample_graph();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), 4);
        assert_eq!(
            dot.matches("label=").count(),
            g.len() + 2 * 4,
            "node labels + edge port labels"
        );
    }

    #[test]
    fn empty_graph_diagrams() {
        let g = Graph::new();
        assert!(to_svg(&g).contains("</svg>"));
        assert!(to_dot(&g).contains("digraph"));
        let l = layout(&g);
        assert_eq!(l.positions.len(), 0);
    }
}
