//! # tioga2-dataflow
//!
//! The boxes-and-arrows program model of Tioga-2 (paper §2, §4):
//!
//! * **Boxes** are primitive procedures with typed input and output ports;
//!   unlike the original Tioga, boxes may have **multiple outputs**, which
//!   is how control flow enters the language (§1.2 principle 5 — the
//!   [`boxes::BoxKind::Switch`] box realizes the paper's
//!   "if condition then deliver data to box i else deliver data to box j").
//! * **Edges** connect outputs to inputs of compatible types; "any attempt
//!   to connect an output to an input of incompatible type is a type
//!   error".  The displayable subtyping `R ≤ C ≤ G` is applied at edges.
//! * **Execution is lazy**, "evaluating only what is required to produce
//!   the demanded visualization": the [`engine::Engine`] pulls demanded
//!   outputs through memoized, signature-invalidated box evaluations.  An
//!   eager whole-program evaluator ([`engine::eval_eager`]) reproduces
//!   Tioga-1 behaviour for the ablation benches.
//! * **Program editing** (paper Figure 2) lives in [`edit`]: Apply Box
//!   matching, the two legal Delete Box cases, Replace Box, **T** nodes,
//!   and snapshot-based undo/redo.
//! * **Encapsulate** (with *holes* — graphical macros / higher-order
//!   functions) lives in [`encapsulate`].
//! * Programs persist to a line-oriented text format ([`persist`]),
//!   fulfilling Save/Load/Add Program.

pub mod boxes;
pub mod diagram;
pub mod edit;
pub mod encapsulate;
pub mod engine;
pub mod error;
pub mod graph;
pub mod lower;
pub mod persist;
pub mod plan;
pub mod port;

pub use boxes::{BoxKind, BoxRegistry, BoxTemplate, CustomBox};
pub use edit::Journal;
pub use encapsulate::EncapsulatedDef;
pub use engine::{DeltaOutcome, Engine, EvalStats};
pub use error::FlowError;
pub use graph::{Graph, Node, NodeId};
pub use lower::lower;
pub use plan::{AttrNode, Plan, RewriteStats};
pub use port::{Data, PortType};
