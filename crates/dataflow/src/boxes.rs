//! Box kinds: the primitive procedures of Tioga-2 programs.
//!
//! Relation-level operations (`RelOpKind`) are *shape-polymorphic*: the
//! paper's operator overloading (§2) lets a Restrict apply to a composite
//! or group input, with the user's point-and-click component selection
//! recorded in the box.  The node's port types are fixed to the shape at
//! insertion time, so edge type checking stays exact.

use crate::encapsulate::EncapsulatedDef;
use crate::error::FlowError;
use crate::port::PortType;
use std::sync::Arc;
use tioga2_display::attr_ops::AttrRole;
use tioga2_display::compose::PartitionSpec;
use tioga2_display::{Layout, Selection};
use tioga2_expr::{Expr, ScalarType};

/// A relation-level operation (`R -> R` in Figure 3 / Figure 5 / Figure 6
/// terms), applicable to C and G shapes through a selection.
#[derive(Debug, Clone, PartialEq)]
pub enum RelOpKind {
    /// Figure 3 **Restrict**: filter to tuples satisfying the predicate.
    Restrict(Expr),
    /// Figure 3 **Project**: keep the named stored fields.
    Project(Vec<String>),
    /// Figure 3 **Sample**: keep tuples with probability `p` (seeded).
    Sample { p: f64, seed: u64 },
    /// Sort by attributes (asc flag per key).
    Sort(Vec<(String, bool)>),
    /// GROUP BY + aggregate columns (big-programmer query surface).
    Aggregate { keys: Vec<String>, aggs: Vec<tioga2_relational::AggSpec> },
    /// DISTINCT on the given attributes (all stored fields if empty).
    Distinct(Vec<String>),
    /// LIMIT/OFFSET in current tuple order.
    Limit { offset: usize, count: usize },
    /// Rename a stored field (method references are rewritten).
    Rename { from: String, to: String },
    /// Figure 5 **Add Attribute**.
    AddAttribute { name: String, ty: ScalarType, def: Expr, role: AttrRole },
    /// Figure 5 **Remove Attribute**.
    RemoveAttribute(String),
    /// Figure 5 **Set Attribute**.
    SetAttribute { name: String, ty: ScalarType, def: Expr },
    /// Figure 5 **Swap Attributes**.
    SwapAttributes(String, String),
    /// Figure 5 **Scale Attribute**.
    ScaleAttribute(String, f64),
    /// Figure 5 **Translate Attribute**.
    TranslateAttribute(String, f64),
    /// Figure 5 **Combine Displays**.
    CombineDisplays { first: String, second: String, dx: f64, dy: f64, new_name: String },
    /// Make an alternative display the active one.
    SetActiveDisplay(String),
    /// Figure 6 **Set Range**: elevation range of the layer.
    SetRange { min: f64, max: f64 },
    /// Rename the layer (shown in elevation maps).
    SetLayerName(String),
}

impl RelOpKind {
    /// Menu name of the operation.
    pub fn name(&self) -> &'static str {
        match self {
            RelOpKind::Restrict(_) => "Restrict",
            RelOpKind::Project(_) => "Project",
            RelOpKind::Sample { .. } => "Sample",
            RelOpKind::Sort(_) => "Sort",
            RelOpKind::Aggregate { .. } => "Aggregate",
            RelOpKind::Distinct(_) => "Distinct",
            RelOpKind::Limit { .. } => "Limit",
            RelOpKind::Rename { .. } => "Rename",
            RelOpKind::AddAttribute { .. } => "Add Attribute",
            RelOpKind::RemoveAttribute(_) => "Remove Attribute",
            RelOpKind::SetAttribute { .. } => "Set Attribute",
            RelOpKind::SwapAttributes(_, _) => "Swap Attributes",
            RelOpKind::ScaleAttribute(_, _) => "Scale Attribute",
            RelOpKind::TranslateAttribute(_, _) => "Translate Attribute",
            RelOpKind::CombineDisplays { .. } => "Combine Displays",
            RelOpKind::SetActiveDisplay(_) => "Set Active Display",
            RelOpKind::SetRange { .. } => "Set Range",
            RelOpKind::SetLayerName(_) => "Set Layer Name",
        }
    }
}

/// A composite-level operation (`C -> C`), applicable to G through a
/// member selection.
#[derive(Debug, Clone, PartialEq)]
pub enum CompOpKind {
    /// Figure 6 **Shuffle**: move a layer to the top of the drawing order.
    Shuffle(usize),
    /// Elevation-map reordering (generalizes Shuffle).
    Reorder { from: usize, to: usize },
}

impl CompOpKind {
    pub fn name(&self) -> &'static str {
        match self {
            CompOpKind::Shuffle(_) => "Shuffle",
            CompOpKind::Reorder { .. } => "Reorder",
        }
    }
}

/// A big-programmer box: an opaque function registered with the system
/// (paper §1.2 principle 5 — the big programmer / little programmer
/// model is retained).
pub struct CustomBox {
    pub name: String,
    pub in_types: Vec<PortType>,
    pub out_types: Vec<PortType>,
    #[allow(clippy::type_complexity)]
    pub f: Box<
        dyn Fn(&[crate::port::Data]) -> Result<Vec<crate::port::Data>, FlowError> + Send + Sync,
    >,
}

impl std::fmt::Debug for CustomBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CustomBox")
            .field("name", &self.name)
            .field("in_types", &self.in_types)
            .field("out_types", &self.out_types)
            .finish_non_exhaustive()
    }
}

impl PartialEq for CustomBox {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.in_types == other.in_types
            && self.out_types == other.out_types
    }
}

/// The kind (and parameters) of one box.
#[derive(Debug, Clone, PartialEq)]
pub enum BoxKind {
    /// Figure 3 **Add Table**: "for every relation known to the Tioga-2
    /// system there is a box of the same name that takes no inputs and
    /// produces as output the tuples of the relation."
    Table(String),
    /// Figure 3 **Join** (theta join; predicate over the combined naming).
    Join(Expr),
    /// A shape-polymorphic relation-level op at a component selection.
    RelOp { op: RelOpKind, shape: PortType, sel: Selection },
    /// A shape-polymorphic composite-level op.
    CompOp { op: CompOpKind, shape: PortType, sel: Selection },
    /// Figure 6 **Overlay** of two composites.  `invariant` records the
    /// user's answer to the dimension-mismatch warning.
    Overlay { offset: Vec<f64>, invariant: bool },
    /// §7.3 **Stitch** of `arity` composites into a group.
    Stitch { arity: usize, layout: Layout },
    /// §7.4 **Replicate** at a component selection.
    Replicate {
        horizontal: PartitionSpec,
        vertical: Option<PartitionSpec>,
        shape: PortType,
        sel: Selection,
    },
    /// Control-flow routing via multiple outputs: tuples satisfying the
    /// predicate exit output 0, the rest exit output 1.
    Switch(Expr),
    /// A scalar constant source — "a runtime parameter supplied by the
    /// user" (§2).  Editing its value in place re-fires only the cone
    /// that consumes it.
    Const(tioga2_expr::Value),
    /// Restrict with named scalar parameters: input 0 is the displayable,
    /// inputs 1.. are scalars bound to `params[i].0` inside the
    /// predicate.
    ParamRestrict { pred: Expr, params: Vec<(String, ScalarType)>, shape: PortType, sel: Selection },
    /// Figure 2 **T**: "passes its input unchanged to both outputs".
    Tee(PortType),
    /// A viewer attached to an edge; passes its input through so viewers
    /// can be installed "on any arc in a diagram" (§10).  `canvas` names
    /// the canvas window that renders this box's input.
    Viewer { canvas: String, ty: PortType },
    /// Input binding inside an encapsulated definition.
    Param { idx: usize, ty: PortType },
    /// A hole inside an encapsulated definition (§4.1): unbound until the
    /// encapsulated box is instantiated with a plug.
    Hole { idx: usize, in_types: Vec<PortType>, out_types: Vec<PortType> },
    /// An instantiated encapsulated box with one plug kind per hole.
    Encapsulated { def: Arc<EncapsulatedDef>, plugs: Vec<BoxKind> },
    /// A registered big-programmer function.
    Custom(Arc<CustomBox>),
}

impl BoxKind {
    /// Input and output port types.
    pub fn signature(&self) -> (Vec<PortType>, Vec<PortType>) {
        match self {
            BoxKind::Table(_) => (vec![], vec![PortType::R]),
            BoxKind::Join(_) => (vec![PortType::R, PortType::R], vec![PortType::R]),
            BoxKind::RelOp { shape, .. } => (vec![shape.clone()], vec![shape.clone()]),
            BoxKind::CompOp { shape, .. } => (vec![shape.clone()], vec![shape.clone()]),
            BoxKind::Overlay { .. } => (vec![PortType::C, PortType::C], vec![PortType::C]),
            BoxKind::Stitch { arity, .. } => {
                (vec![PortType::C; (*arity).max(1)], vec![PortType::G])
            }
            BoxKind::Replicate { shape, .. } => (vec![shape.clone()], vec![PortType::G]),
            BoxKind::Switch(_) => (vec![PortType::R], vec![PortType::R, PortType::R]),
            BoxKind::Const(v) => (
                vec![],
                vec![PortType::Scalar(v.scalar_type().unwrap_or(tioga2_expr::ScalarType::Text))],
            ),
            BoxKind::ParamRestrict { params, shape, .. } => {
                let mut ins = vec![shape.clone()];
                ins.extend(params.iter().map(|(_, t)| PortType::Scalar(t.clone())));
                (ins, vec![shape.clone()])
            }
            BoxKind::Tee(t) => (vec![t.clone()], vec![t.clone(), t.clone()]),
            BoxKind::Viewer { ty, .. } => (vec![ty.clone()], vec![ty.clone()]),
            BoxKind::Param { ty, .. } => (vec![], vec![ty.clone()]),
            BoxKind::Hole { in_types, out_types, .. } => (in_types.clone(), out_types.clone()),
            BoxKind::Encapsulated { def, .. } => (def.in_types.clone(), def.out_types.clone()),
            BoxKind::Custom(c) => (c.in_types.clone(), c.out_types.clone()),
        }
    }

    /// Display name for diagrams and menus.
    pub fn name(&self) -> String {
        match self {
            BoxKind::Table(t) => t.clone(),
            BoxKind::Join(_) => "Join".into(),
            BoxKind::RelOp { op, .. } => op.name().into(),
            BoxKind::CompOp { op, .. } => op.name().into(),
            BoxKind::Overlay { .. } => "Overlay".into(),
            BoxKind::Stitch { .. } => "Stitch".into(),
            BoxKind::Replicate { .. } => "Replicate".into(),
            BoxKind::Switch(_) => "Switch".into(),
            BoxKind::Const(v) => format!("Const({})", v.display_text()),
            BoxKind::ParamRestrict { .. } => "Restrict(params)".into(),
            BoxKind::Tee(_) => "T".into(),
            BoxKind::Viewer { canvas, .. } => format!("Viewer[{canvas}]"),
            BoxKind::Param { idx, .. } => format!("Param{idx}"),
            BoxKind::Hole { idx, .. } => format!("Hole{idx}"),
            BoxKind::Encapsulated { def, .. } => def.name.clone(),
            BoxKind::Custom(c) => c.name.clone(),
        }
    }

    /// Convenience constructor for the common R-shaped relation op.
    pub fn rel(op: RelOpKind) -> BoxKind {
        BoxKind::RelOp { op, shape: PortType::R, sel: Selection::default() }
    }

    /// Convenience constructor for the common C-shaped composite op.
    pub fn comp(op: CompOpKind) -> BoxKind {
        BoxKind::CompOp { op, shape: PortType::C, sel: Selection::default() }
    }
}

/// A named, instantiable box template — the "menu of all boxes available"
/// (§3).  Templates with `None` kinds are parameterized primitives that
/// prompt for arguments; concrete templates (encapsulated, custom) carry
/// a kind.
#[derive(Debug, Clone)]
pub struct BoxTemplate {
    pub name: String,
    pub in_types: Vec<PortType>,
    pub out_types: Vec<PortType>,
    pub kind: Option<BoxKind>,
}

/// Registry of instantiable boxes: primitives, encapsulated definitions,
/// and big-programmer custom boxes.
#[derive(Debug, Clone, Default)]
pub struct BoxRegistry {
    templates: Vec<BoxTemplate>,
}

impl BoxRegistry {
    /// A registry pre-populated with the parameterized primitives.
    pub fn with_primitives() -> Self {
        let r2r = (vec![PortType::R], vec![PortType::R]);
        let mut reg = BoxRegistry::default();
        for name in [
            "Restrict",
            "Project",
            "Sample",
            "Sort",
            "Aggregate",
            "Distinct",
            "Limit",
            "Rename",
            "Add Attribute",
            "Remove Attribute",
            "Set Attribute",
            "Swap Attributes",
            "Scale Attribute",
            "Translate Attribute",
            "Combine Displays",
            "Set Active Display",
            "Set Range",
            "Set Layer Name",
        ] {
            reg.templates.push(BoxTemplate {
                name: name.into(),
                in_types: r2r.0.clone(),
                out_types: r2r.1.clone(),
                kind: None,
            });
        }
        reg.templates.push(BoxTemplate {
            name: "Join".into(),
            in_types: vec![PortType::R, PortType::R],
            out_types: vec![PortType::R],
            kind: None,
        });
        reg.templates.push(BoxTemplate {
            name: "Overlay".into(),
            in_types: vec![PortType::C, PortType::C],
            out_types: vec![PortType::C],
            kind: None,
        });
        reg.templates.push(BoxTemplate {
            name: "Shuffle".into(),
            in_types: vec![PortType::C],
            out_types: vec![PortType::C],
            kind: None,
        });
        reg.templates.push(BoxTemplate {
            name: "Stitch".into(),
            in_types: vec![PortType::C, PortType::C],
            out_types: vec![PortType::G],
            kind: None,
        });
        reg.templates.push(BoxTemplate {
            name: "Replicate".into(),
            in_types: vec![PortType::R],
            out_types: vec![PortType::G],
            kind: None,
        });
        reg.templates.push(BoxTemplate {
            name: "Switch".into(),
            in_types: vec![PortType::R],
            out_types: vec![PortType::R, PortType::R],
            kind: None,
        });
        reg
    }

    pub fn register(&mut self, template: BoxTemplate) {
        self.templates.retain(|t| t.name != template.name);
        self.templates.push(template);
    }

    /// Register an encapsulated definition as an instantiable box.
    pub fn register_encapsulated(&mut self, def: Arc<EncapsulatedDef>) {
        // Holes must be plugged at instantiation; the template advertises
        // the box's own signature.
        self.register(BoxTemplate {
            name: def.name.clone(),
            in_types: def.in_types.clone(),
            out_types: def.out_types.clone(),
            kind: if def.holes.is_empty() {
                Some(BoxKind::Encapsulated { def: def.clone(), plugs: vec![] })
            } else {
                None
            },
        });
    }

    pub fn register_custom(&mut self, custom: Arc<CustomBox>) {
        self.register(BoxTemplate {
            name: custom.name.clone(),
            in_types: custom.in_types.clone(),
            out_types: custom.out_types.clone(),
            kind: Some(BoxKind::Custom(custom.clone())),
        });
    }

    pub fn templates(&self) -> &[BoxTemplate] {
        &self.templates
    }

    pub fn get(&self, name: &str) -> Option<&BoxTemplate> {
        self.templates.iter().find(|t| t.name == name)
    }

    /// **Apply Box** matching (§4.1): "a menu of all boxes whose inputs
    /// match the types of the selected edges."
    pub fn matching(&self, edge_types: &[PortType]) -> Vec<&BoxTemplate> {
        self.templates
            .iter()
            .filter(|t| {
                t.in_types.len() == edge_types.len()
                    && t.in_types.iter().zip(edge_types).all(|(need, have)| need.accepts(have))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tioga2_expr::parse;

    #[test]
    fn signatures() {
        assert_eq!(BoxKind::Table("Stations".into()).signature(), (vec![], vec![PortType::R]));
        let restrict = BoxKind::rel(RelOpKind::Restrict(parse("a = 1").unwrap()));
        assert_eq!(restrict.signature(), (vec![PortType::R], vec![PortType::R]));
        let switch = BoxKind::Switch(parse("a = 1").unwrap());
        assert_eq!(switch.signature().1.len(), 2, "multiple outputs");
        let stitch = BoxKind::Stitch { arity: 3, layout: Layout::Horizontal };
        assert_eq!(stitch.signature().0.len(), 3);
        let tee = BoxKind::Tee(PortType::C);
        assert_eq!(tee.signature(), (vec![PortType::C], vec![PortType::C, PortType::C]));
    }

    #[test]
    fn shape_polymorphic_relop() {
        let op = RelOpKind::Restrict(parse("a = 1").unwrap());
        let on_group = BoxKind::RelOp { op, shape: PortType::G, sel: Selection::at(0, 1) };
        assert_eq!(on_group.signature(), (vec![PortType::G], vec![PortType::G]));
    }

    #[test]
    fn registry_matching_by_edge_types() {
        let reg = BoxRegistry::with_primitives();
        let r_matches = reg.matching(&[PortType::R]);
        assert!(r_matches.iter().any(|t| t.name == "Restrict"));
        assert!(r_matches.iter().any(|t| t.name == "Shuffle"), "R coerces to C");
        assert!(!r_matches.iter().any(|t| t.name == "Join"), "Join wants two edges");
        let rr = reg.matching(&[PortType::R, PortType::R]);
        assert!(rr.iter().any(|t| t.name == "Join"));
        assert!(rr.iter().any(|t| t.name == "Stitch"));
        let g = reg.matching(&[PortType::G]);
        assert!(!g.iter().any(|t| t.name == "Shuffle"), "G does not coerce down to C");
    }

    #[test]
    fn registry_register_replaces_by_name() {
        let mut reg = BoxRegistry::default();
        reg.register(BoxTemplate {
            name: "X".into(),
            in_types: vec![],
            out_types: vec![PortType::R],
            kind: Some(BoxKind::Table("t".into())),
        });
        reg.register(BoxTemplate {
            name: "X".into(),
            in_types: vec![],
            out_types: vec![PortType::R],
            kind: Some(BoxKind::Table("u".into())),
        });
        assert_eq!(reg.templates().len(), 1);
        assert_eq!(reg.get("X").unwrap().kind, Some(BoxKind::Table("u".into())));
    }

    #[test]
    fn custom_box_registration() {
        let mut reg = BoxRegistry::default();
        let custom = Arc::new(CustomBox {
            name: "Identity".into(),
            in_types: vec![PortType::R],
            out_types: vec![PortType::R],
            f: Box::new(|ins| Ok(ins.to_vec())),
        });
        reg.register_custom(custom);
        assert!(reg.get("Identity").is_some());
        assert_eq!(reg.matching(&[PortType::R]).len(), 1);
    }

    #[test]
    fn box_names() {
        assert_eq!(BoxKind::Table("Stations".into()).name(), "Stations");
        assert_eq!(BoxKind::Tee(PortType::R).name(), "T");
        assert_eq!(
            BoxKind::Viewer { canvas: "main".into(), ty: PortType::R }.name(),
            "Viewer[main]"
        );
    }
}
