//! Error type for the environment layer.

use std::fmt;
use tioga2_dataflow::FlowError;
use tioga2_display::DisplayError;
use tioga2_relational::RelError;
use tioga2_viewer::ViewError;

#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    Flow(FlowError),
    Display(DisplayError),
    Rel(RelError),
    View(ViewError),
    /// Unknown canvas, program, or other session-level lookup failure.
    Session(String),
    /// Update-dialog error (bad field text, no hit, untraceable tuple).
    Update(String),
}

impl From<FlowError> for CoreError {
    fn from(e: FlowError) -> Self {
        CoreError::Flow(e)
    }
}

impl From<DisplayError> for CoreError {
    fn from(e: DisplayError) -> Self {
        CoreError::Display(e)
    }
}

impl From<RelError> for CoreError {
    fn from(e: RelError) -> Self {
        CoreError::Rel(e)
    }
}

impl From<ViewError> for CoreError {
    fn from(e: ViewError) -> Self {
        CoreError::View(e)
    }
}

impl From<tioga2_expr::ExprError> for CoreError {
    fn from(e: tioga2_expr::ExprError) -> Self {
        CoreError::Rel(RelError::from(e))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Flow(e) => write!(f, "{e}"),
            CoreError::Display(e) => write!(f, "{e}"),
            CoreError::Rel(e) => write!(f, "{e}"),
            CoreError::View(e) => write!(f, "{e}"),
            CoreError::Session(m) => write!(f, "session error: {m}"),
            CoreError::Update(m) => write!(f, "update error: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}
