//! The command surface: one typed [`Command`] per paper operation.
//!
//! Historically the REPL owned both the parser and the dispatch bodies
//! (~1.2k lines of `match` in `src/repl.rs`), and the `:help` text was a
//! separate hand-maintained constant that drifted from the real grammar.
//! This module is the single source of truth for all three:
//!
//! * [`Command`] — the typed surface.  `parse` turns one line into a
//!   command, `format` renders the canonical line back (`parse ∘ format`
//!   is the identity, pinned by round-trip tests), so any front end —
//!   the REPL, `tiogad`'s wire protocol, a script runner — speaks the
//!   same language.
//! * [`dispatch`] — executes one command against a [`Session`].  Errors
//!   are strings and never poison the session (edits roll back).
//! * [`COMMANDS`] — the spec table.  `help_text()` is generated from it,
//!   and each entry carries a canonical `example` that the tests parse,
//!   format, and re-parse, so the help text cannot drift from the
//!   grammar again.

use crate::{CoreError, Session};
use tioga2_dataflow::NodeId;
use tioga2_display::attr_ops::AttrRole;
use tioga2_display::compose::PartitionSpec;
use tioga2_display::{Layout, Selection};
use tioga2_expr::{ScalarType, Value};
use tioga2_relational::{AggFunc, AggSpec};

/// Outcome of one dispatched command.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Text to print (or frame back over the wire).
    Message(String),
    /// The client asked to leave.
    Quit,
}

/// Errors surface as strings; the session itself is never poisoned.
pub type CommandResult = Result<Response, String>;

/// `:budget` subcommands.  The spec is kept as its source string (it is
/// validated at parse time) so `Command` stays `PartialEq`.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetCmd {
    Show,
    Off,
    Set(String),
}

/// `:faults` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultsCmd {
    Show,
    Off,
    Arm(String),
}

/// `:trace` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceCmd {
    On,
    Off,
    Export(String),
    Prom(String),
    Folded(String),
}

/// `:slowlog` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum SlowlogCmd {
    /// Show the armed state and every captured slow demand.
    Show,
    /// Disarm capture (entries are kept).
    Off,
    /// Arm at a millisecond threshold (0 captures every traced demand).
    Threshold(u64),
    /// Drop the captured entries.
    Clear,
}

/// `:journal` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalCmd {
    Status,
    Tail(Option<usize>),
    Save(String),
    Snapshot,
    Recover(String),
}

/// `:watch` subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchCmd {
    Show,
    Off,
    All,
    Kind(String),
}

/// `programs` subcommands (the bare form lists the library).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgramsCmd {
    List,
    Export(String),
    Restore(String),
}

/// One REPL/wire command — every variant maps onto a `Session` method,
/// i.e. onto a paper operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Quit,
    Help(Option<String>),
    Ops,
    Tables,
    Boxes,
    Programs(ProgramsCmd),
    AddTable { name: String },
    Restrict { node: NodeId, predicate: String },
    Project { node: NodeId, fields: Vec<String> },
    Sample { node: NodeId, p: f64, seed: u64 },
    Sort { node: NodeId, keys: Vec<(String, bool)> },
    Join { left: NodeId, right: NodeId, predicate: String },
    Switch { node: NodeId, predicate: String },
    Aggregate { node: NodeId, keys: Vec<String>, aggs: Vec<AggSpec> },
    Distinct { node: NodeId, attrs: Vec<String> },
    Limit { node: NodeId, offset: usize, count: usize },
    SetAttr { node: NodeId, name: String, ty: ScalarType, def: String },
    AddAttr { node: NodeId, name: String, ty: ScalarType, role: AttrRole, def: String },
    RmAttr { node: NodeId, name: String },
    SwapAttrs { node: NodeId, a: String, b: String },
    ScaleAttr { node: NodeId, attr: String, k: f64 },
    TranslateAttr { node: NodeId, attr: String, c: f64 },
    Combine { node: NodeId, a: String, b: String, dx: f64, dy: f64, new: String },
    SetRange { node: NodeId, lo: f64, hi: f64 },
    LayerName { node: NodeId, name: String },
    Overlay { bottom: NodeId, top: NodeId },
    Shuffle { node: NodeId, layer: usize },
    Stitch { members: Vec<NodeId>, layout: Layout },
    Replicate { node: NodeId, attr: String },
    Const { ty: String, text: String },
    SetConst { node: NodeId, ty: String, text: String },
    RestrictP { node: NodeId, params: Vec<(String, NodeId)>, predicate: String },
    Viewer { node: NodeId, canvas: String },
    CloneCanvas { canvas: String, new: String },
    Encapsulate { region: Vec<NodeId>, name: String, holes: Vec<Vec<NodeId>> },
    UseBox { name: String, inputs: Vec<NodeId> },
    Tee { node: NodeId, port: usize },
    Delete { node: NodeId },
    Candidates { node: NodeId },
    Show { node: NodeId, rows: Option<usize> },
    Program,
    Diagram { file: String },
    Render { canvas: String, file: Option<String> },
    ElevMap { canvas: String },
    CycleMap { canvas: String },
    Pan { canvas: String, dx: i32, dy: i32 },
    Zoom { canvas: String, factor: f64 },
    Slider { canvas: String, dim: String, lo: f64, hi: f64 },
    Slave { a: String, b: String },
    Unslave { a: String, b: String },
    Click { canvas: String, x: i32, y: i32 },
    Update { canvas: String, x: i32, y: i32, assigns: Vec<(String, String)> },
    Back,
    Undo,
    Redo,
    Save { name: String },
    Load { name: String },
    NewProgram,
    Explain { node: NodeId },
    ExplainAnalyze { node: NodeId },
    Sys,
    Stats,
    Threads(Option<usize>),
    Budget(BudgetCmd),
    Faults(FaultsCmd),
    Trace(TraceCmd),
    Slowlog(SlowlogCmd),
    Journal(JournalCmd),
    Rewind(Option<usize>),
    Replay(Option<usize>),
    Watch(WatchCmd),
}

/// One row of the command table: the grammar and the help line live
/// together so they cannot drift apart.
pub struct CommandSpec {
    /// The command word as typed.
    pub name: &'static str,
    /// Usage string shown by `help`.
    pub usage: &'static str,
    /// One-line summary (usually the paper operation's name).
    pub summary: &'static str,
    /// A canonical line that must parse, format, and re-parse to the
    /// same `Command` (pinned by the round-trip tests).
    pub example: &'static str,
}

/// The full command table — `help_text()` and the round-trip tests both
/// derive from it.
pub const COMMANDS: &[CommandSpec] = &[
    CommandSpec {
        name: "tables",
        usage: "tables",
        summary: "menu of catalog tables",
        example: "tables",
    },
    CommandSpec {
        name: "boxes",
        usage: "boxes",
        summary: "menu of registry boxes",
        example: "boxes",
    },
    CommandSpec { name: "ops", usage: "ops", summary: "menu of paper operations", example: "ops" },
    CommandSpec {
        name: "help",
        usage: "help [op]",
        summary: "this text, or one operation's help",
        example: "help Overlay",
    },
    CommandSpec {
        name: "programs",
        usage: "programs [export <path> | restore <path>]",
        summary: "saved-program library",
        example: "programs export out/progs.t2p",
    },
    CommandSpec {
        name: "table",
        usage: "table <name>",
        summary: "Add Table",
        example: "table Stations",
    },
    CommandSpec {
        name: "restrict",
        usage: "restrict <node> <predicate>",
        summary: "Restrict",
        example: "restrict 0 state = 'LA'",
    },
    CommandSpec {
        name: "project",
        usage: "project <node> <f1,f2,...>",
        summary: "Project",
        example: "project 1 name,longitude,latitude",
    },
    CommandSpec {
        name: "sample",
        usage: "sample <node> <p> [seed]",
        summary: "Sample",
        example: "sample 0 0.25 42",
    },
    CommandSpec {
        name: "sort",
        usage: "sort <node> <attr[:desc],...>",
        summary: "Sort",
        example: "sort 0 altitude:desc,name",
    },
    CommandSpec {
        name: "join",
        usage: "join <left> <right> <predicate>",
        summary: "Join",
        example: "join 0 1 id = station_id",
    },
    CommandSpec {
        name: "switch",
        usage: "switch <node> <predicate>",
        summary: "Switch (2 outputs)",
        example: "switch 0 altitude > 100",
    },
    CommandSpec {
        name: "aggregate",
        usage: "aggregate <node> <k1,k2|-> <fn:attr:out,...>",
        summary: "Aggregate",
        example: "aggregate 0 station_id count:-:n,avg:temperature:mean",
    },
    CommandSpec {
        name: "distinct",
        usage: "distinct <node> [a1,a2,...]",
        summary: "Distinct",
        example: "distinct 0 state",
    },
    CommandSpec {
        name: "limit",
        usage: "limit <node> <offset> <count>",
        summary: "Limit",
        example: "limit 0 0 5",
    },
    CommandSpec {
        name: "setattr",
        usage: "setattr <node> <name> <type> <def>",
        summary: "Set Attribute",
        example: "setattr 0 flag bool altitude > 50",
    },
    CommandSpec {
        name: "addattr",
        usage: "addattr <node> <name> <type> <plain|location|display> <def>",
        summary: "Add Attribute",
        example: "addattr 0 high bool plain altitude > 50",
    },
    CommandSpec {
        name: "rmattr",
        usage: "rmattr <node> <name>",
        summary: "Remove Attribute",
        example: "rmattr 0 altitude",
    },
    CommandSpec {
        name: "swap",
        usage: "swap <node> <a> <b>",
        summary: "Swap Attributes",
        example: "swap 0 longitude latitude",
    },
    CommandSpec {
        name: "scale",
        usage: "scale <node> <attr> <k>",
        summary: "Scale Attribute",
        example: "scale 0 altitude 0.5",
    },
    CommandSpec {
        name: "translate",
        usage: "translate <node> <attr> <c>",
        summary: "Translate Attribute",
        example: "translate 0 altitude 10",
    },
    CommandSpec {
        name: "combine",
        usage: "combine <node> <a> <b> <dx> <dy> <new>",
        summary: "Combine Displays",
        example: "combine 0 shape label 4 4 glyph",
    },
    CommandSpec {
        name: "range",
        usage: "range <node> <min> <max>",
        summary: "Set Range",
        example: "range 0 0 1000",
    },
    CommandSpec {
        name: "layername",
        usage: "layername <node> <name>",
        summary: "Set Layer Name",
        example: "layername 0 stations",
    },
    CommandSpec {
        name: "overlay",
        usage: "overlay <bottom> <top>",
        summary: "Overlay (invariant mode)",
        example: "overlay 0 1",
    },
    CommandSpec {
        name: "shuffle",
        usage: "shuffle <node> <layer>",
        summary: "Shuffle",
        example: "shuffle 0 1",
    },
    CommandSpec {
        name: "stitch",
        usage: "stitch <n1,n2,...> <h|v|tab:k>",
        summary: "Stitch",
        example: "stitch 0,1 tab:2",
    },
    CommandSpec {
        name: "replicate",
        usage: "replicate <node> enum:<attr>",
        summary: "Replicate by enumerated type",
        example: "replicate 0 enum:state",
    },
    CommandSpec {
        name: "const",
        usage: "const <int|float|text> <value>",
        summary: "scalar parameter box",
        example: "const float 100.0",
    },
    CommandSpec {
        name: "setconst",
        usage: "setconst <node> <int|float|text> <v>",
        summary: "twiddle a parameter in place",
        example: "setconst 1 float 0.0",
    },
    CommandSpec {
        name: "restrictp",
        usage: "restrictp <node> <name=node,...> <predicate>",
        summary: "Restrict with parameters",
        example: "restrictp 0 cutoff=1 altitude > cutoff",
    },
    CommandSpec {
        name: "viewer",
        usage: "viewer <node> <canvas>",
        summary: "attach a canvas",
        example: "viewer 0 main",
    },
    CommandSpec {
        name: "clone",
        usage: "clone <canvas> <new>",
        summary: "clone a canvas",
        example: "clone main side",
    },
    CommandSpec {
        name: "tee",
        usage: "tee <node> <in_port>",
        summary: "T on the edge into a port",
        example: "tee 2 0",
    },
    CommandSpec {
        name: "encapsulate",
        usage: "encapsulate <n1,n2,...> <name> [hole:<n1,n2>]...",
        summary: "Encapsulate",
        example: "encapsulate 1,2 LaSorted hole:2",
    },
    CommandSpec {
        name: "usebox",
        usage: "usebox <name> <in1,in2,...>",
        summary: "instantiate a registry box",
        example: "usebox LaSorted 3",
    },
    CommandSpec {
        name: "delete",
        usage: "delete <node>",
        summary: "Delete Box",
        example: "delete 3",
    },
    CommandSpec {
        name: "candidates",
        usage: "candidates <node>",
        summary: "Apply Box menu for an edge",
        example: "candidates 0",
    },
    CommandSpec {
        name: "show",
        usage: "show <node> [rows]",
        summary: "ASCII table of a node's output",
        example: "show 1 5",
    },
    CommandSpec {
        name: "program",
        usage: "program",
        summary: "the program window (ASCII)",
        example: "program",
    },
    CommandSpec {
        name: "diagram",
        usage: "diagram <file>",
        summary: "program window as out/<file>.svg",
        example: "diagram fig1",
    },
    CommandSpec {
        name: "render",
        usage: "render <canvas> [file]",
        summary: "render; writes out/<file>.ppm",
        example: "render main fig1",
    },
    CommandSpec {
        name: "elevmap",
        usage: "elevmap <canvas>",
        summary: "the elevation map",
        example: "elevmap main",
    },
    CommandSpec {
        name: "cyclemap",
        usage: "cyclemap <canvas>",
        summary: "cycle a group's elevation map",
        example: "cyclemap main",
    },
    CommandSpec {
        name: "pan",
        usage: "pan <canvas> <dx> <dy>",
        summary: "pan the canvas",
        example: "pan main 3 -2",
    },
    CommandSpec {
        name: "zoom",
        usage: "zoom <canvas> <factor>",
        summary: "zoom (may cross a wormhole)",
        example: "zoom main 2.0",
    },
    CommandSpec {
        name: "slider",
        usage: "slider <canvas> <dim> <lo> <hi>",
        summary: "slide an invisible dimension",
        example: "slider main time 0 10",
    },
    CommandSpec {
        name: "slave",
        usage: "slave <a> <b>",
        summary: "slave canvas b to a",
        example: "slave main side",
    },
    CommandSpec {
        name: "unslave",
        usage: "unslave <a> <b>",
        summary: "unslave canvas b from a",
        example: "unslave main side",
    },
    CommandSpec {
        name: "click",
        usage: "click <canvas> <x> <y>",
        summary: "probe a pixel (provenance)",
        example: "click main 100 20",
    },
    CommandSpec {
        name: "update",
        usage: "update <canvas> <x> <y> <field>=<text> ...",
        summary: "update the clicked tuple (§8)",
        example: "update emps 100 20 salary=1234",
    },
    CommandSpec { name: "back", usage: "back", summary: "rear-view 'go home'", example: "back" },
    CommandSpec { name: "undo", usage: "undo", summary: "undo one edit", example: "undo" },
    CommandSpec { name: "redo", usage: "redo", summary: "redo one edit", example: "redo" },
    CommandSpec {
        name: "save",
        usage: "save <name>",
        summary: "Save Program",
        example: "save mine",
    },
    CommandSpec {
        name: "load",
        usage: "load <name>",
        summary: "load a saved program",
        example: "load mine",
    },
    CommandSpec { name: "new", usage: "new", summary: "start a fresh program", example: "new" },
    CommandSpec {
        name: ":explain",
        usage: ":explain [analyze] <node>",
        summary: "streaming plan + rewrites (analyze: execute too)",
        example: ":explain analyze 2",
    },
    CommandSpec {
        name: ":sys",
        usage: ":sys",
        summary: "refresh sys.* introspection tables",
        example: ":sys",
    },
    CommandSpec {
        name: ":stats",
        usage: ":stats",
        summary: "engine counters + trace summary",
        example: ":stats",
    },
    CommandSpec {
        name: ":threads",
        usage: ":threads [n]",
        summary: "show/set parallel plan workers",
        example: ":threads 2",
    },
    CommandSpec {
        name: ":budget",
        usage: ":budget [rows=<n>] [ms=<n>] | off",
        summary: "cap rows/wall-clock per demand",
        example: ":budget rows=500 ms=250",
    },
    CommandSpec {
        name: ":faults",
        usage: ":faults <site[:at][=err|panic],...> | off",
        summary: "arm deterministic fault injection",
        example: ":faults restrict:pull:3=err",
    },
    CommandSpec {
        name: ":trace",
        usage: ":trace on|off|export <p>|prom <p>|folded <p>",
        summary: "span/histogram collection + exports",
        example: ":trace export out/trace.json",
    },
    CommandSpec {
        name: ":slowlog",
        usage: ":slowlog [<ms>|off|clear]",
        summary: "slow-demand ring: show, arm threshold, disarm",
        example: ":slowlog 250",
    },
    CommandSpec {
        name: ":journal",
        usage: ":journal [tail [n]|save <p>|snapshot|recover <p>]",
        summary: "event-journal status and tools",
        example: ":journal tail 5",
    },
    CommandSpec {
        name: ":rewind",
        usage: ":rewind [n]",
        summary: "time-travel back over journaled edits",
        example: ":rewind 2",
    },
    CommandSpec {
        name: ":replay",
        usage: ":replay [n]",
        summary: "time-travel forward again",
        example: ":replay 2",
    },
    CommandSpec {
        name: ":watch",
        usage: ":watch [all|<kind>|off]",
        summary: "live-tail journal events by kind",
        example: ":watch demand",
    },
    CommandSpec {
        name: "quit",
        usage: "quit | exit",
        summary: "leave the session",
        example: "quit",
    },
];

/// The generated help text (header pinned by the REPL tests).
pub fn help_text() -> String {
    let mut out = String::from("Tioga-2 REPL — every command is one paper operation.\n");
    for spec in COMMANDS {
        out.push_str(&format!("  {:44} {}\n", spec.usage, spec.summary));
    }
    out.push_str("  (# starts a comment; blank lines are ignored)");
    out
}

fn node(tok: &str) -> Result<NodeId, String> {
    let t = tok.trim_start_matches('#');
    t.parse::<u32>().map(NodeId).map_err(|_| format!("'{tok}' is not a node id"))
}

fn node_list(tok: &str) -> Result<Vec<NodeId>, String> {
    tok.split(',').map(node).collect()
}

fn fmt_nodes(ids: &[NodeId]) -> String {
    ids.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join(",")
}

fn scalar_type(tok: &str) -> Result<ScalarType, String> {
    ScalarType::parse(tok).ok_or_else(|| format!("'{tok}' is not a type"))
}

fn layout(tok: &str) -> Result<Layout, String> {
    match tok {
        "h" | "horizontal" => Ok(Layout::Horizontal),
        "v" | "vertical" => Ok(Layout::Vertical),
        other => match other.strip_prefix("tab:") {
            Some(k) => k
                .parse()
                .map(|cols| Layout::Tabular { cols })
                .map_err(|_| format!("bad tabular column count in '{other}'")),
            None => Err(format!("'{other}' is not a layout (h, v, tab:<cols>)")),
        },
    }
}

fn layout_token(l: &Layout) -> String {
    match l {
        Layout::Horizontal => "h".to_string(),
        Layout::Vertical => "v".to_string(),
        Layout::Tabular { cols } => format!("tab:{cols}"),
    }
}

fn attr_role(tok: &str) -> Result<AttrRole, String> {
    match tok {
        "plain" => Ok(AttrRole::Plain),
        "location" => Ok(AttrRole::Location),
        "display" => Ok(AttrRole::Display),
        other => Err(format!("'{other}' is not an attribute role")),
    }
}

fn attr_role_token(r: &AttrRole) -> &'static str {
    match r {
        AttrRole::Plain => "plain",
        AttrRole::Location => "location",
        AttrRole::Display => "display",
    }
}

fn const_type(tok: &str) -> Result<String, String> {
    match tok {
        "int" | "float" | "text" => Ok(tok.to_string()),
        other => Err(format!("'{other}' is not a const type (int, float, text)")),
    }
}

fn parse_const(ty: &str, text: &str) -> Result<Value, String> {
    match ty {
        "int" => text.trim().parse().map(Value::Int).map_err(|_| format!("'{text}' is not an int")),
        "float" => {
            text.trim().parse().map(Value::Float).map_err(|_| format!("'{text}' is not a float"))
        }
        "text" => Ok(Value::Text(text.trim_matches('\'').to_string())),
        other => Err(format!("'{other}' is not a const type (int, float, text)")),
    }
}

fn describe_budget(b: &tioga2_relational::Budget) -> String {
    let mut parts = Vec::new();
    if let Some(r) = b.row_cap {
        parts.push(format!("rows={r}"));
    }
    if let Some(ms) = b.wall_ms {
        parts.push(format!("ms={ms}"));
    }
    if parts.is_empty() {
        "unlimited".to_string()
    } else {
        parts.join(" ")
    }
}

fn err(e: CoreError) -> String {
    e.to_string()
}

impl Command {
    /// Parse one line.  `Ok(None)` for blank lines and comments; the
    /// grammar is exactly the table in [`COMMANDS`].
    pub fn parse(line: &str) -> Result<Option<Command>, String> {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let cmd = parts.next().unwrap_or("");
        let args: Vec<&str> = parts.collect();
        let rest = |from: usize| args[from..].join(" ");
        let need = |n: usize| -> Result<(), String> {
            if args.len() < n {
                Err(format!("'{cmd}' needs at least {n} argument(s); try 'help'"))
            } else {
                Ok(())
            }
        };

        let c = match cmd {
            "quit" | "exit" => Command::Quit,
            "help" => Command::Help(args.first().map(|s| s.to_string())),
            "ops" => Command::Ops,
            "tables" => Command::Tables,
            "boxes" => Command::Boxes,
            "programs" => match args.first() {
                None => Command::Programs(ProgramsCmd::List),
                Some(&"export") => {
                    need(2)?;
                    Command::Programs(ProgramsCmd::Export(args[1].to_string()))
                }
                Some(&"restore") => {
                    need(2)?;
                    Command::Programs(ProgramsCmd::Restore(args[1].to_string()))
                }
                Some(other) => {
                    return Err(format!(
                    "'programs {other}' is not a programs command (export <path>, restore <path>)"
                ))
                }
            },
            "table" => {
                need(1)?;
                Command::AddTable { name: args[0].to_string() }
            }
            "restrict" => {
                need(2)?;
                Command::Restrict { node: node(args[0])?, predicate: rest(1) }
            }
            "project" => {
                need(2)?;
                Command::Project {
                    node: node(args[0])?,
                    fields: args[1].split(',').map(str::to_string).collect(),
                }
            }
            "sample" => {
                need(2)?;
                let p: f64 = args[1].parse().map_err(|_| "bad probability".to_string())?;
                let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
                Command::Sample { node: node(args[0])?, p, seed }
            }
            "sort" => {
                need(2)?;
                let keys = args[1]
                    .split(',')
                    .map(|k| match k.strip_suffix(":desc") {
                        Some(a) => (a.to_string(), false),
                        None => (k.strip_suffix(":asc").unwrap_or(k).to_string(), true),
                    })
                    .collect();
                Command::Sort { node: node(args[0])?, keys }
            }
            "join" => {
                need(3)?;
                Command::Join { left: node(args[0])?, right: node(args[1])?, predicate: rest(2) }
            }
            "switch" => {
                need(2)?;
                Command::Switch { node: node(args[0])?, predicate: rest(1) }
            }
            "aggregate" => {
                need(3)?;
                let keys: Vec<String> = if args[1] == "-" {
                    vec![]
                } else {
                    args[1].split(',').map(str::to_string).collect()
                };
                let mut aggs = Vec::new();
                for spec in args[2].split(',') {
                    let mut it = spec.split(':');
                    let func = it
                        .next()
                        .and_then(AggFunc::parse)
                        .ok_or_else(|| format!("bad aggregate in '{spec}'"))?;
                    let attr = it.next().ok_or_else(|| format!("bad aggregate in '{spec}'"))?;
                    let out = it.next().ok_or_else(|| format!("bad aggregate in '{spec}'"))?;
                    aggs.push(AggSpec {
                        func,
                        attr: if attr == "-" { None } else { Some(attr.to_string()) },
                        output: out.to_string(),
                    });
                }
                Command::Aggregate { node: node(args[0])?, keys, aggs }
            }
            "distinct" => {
                need(1)?;
                let attrs = args
                    .get(1)
                    .map(|a| a.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
                Command::Distinct { node: node(args[0])?, attrs }
            }
            "limit" => {
                need(3)?;
                Command::Limit {
                    node: node(args[0])?,
                    offset: args[1].parse().map_err(|_| "bad offset".to_string())?,
                    count: args[2].parse().map_err(|_| "bad count".to_string())?,
                }
            }
            "setattr" => {
                need(4)?;
                Command::SetAttr {
                    node: node(args[0])?,
                    name: args[1].to_string(),
                    ty: scalar_type(args[2])?,
                    def: rest(3),
                }
            }
            "addattr" => {
                need(5)?;
                Command::AddAttr {
                    node: node(args[0])?,
                    name: args[1].to_string(),
                    ty: scalar_type(args[2])?,
                    role: attr_role(args[3])?,
                    def: rest(4),
                }
            }
            "rmattr" => {
                need(2)?;
                Command::RmAttr { node: node(args[0])?, name: args[1].to_string() }
            }
            "swap" => {
                need(3)?;
                Command::SwapAttrs {
                    node: node(args[0])?,
                    a: args[1].to_string(),
                    b: args[2].to_string(),
                }
            }
            "scale" => {
                need(3)?;
                Command::ScaleAttr {
                    node: node(args[0])?,
                    attr: args[1].to_string(),
                    k: args[2].parse().map_err(|_| "bad factor".to_string())?,
                }
            }
            "translate" => {
                need(3)?;
                Command::TranslateAttr {
                    node: node(args[0])?,
                    attr: args[1].to_string(),
                    c: args[2].parse().map_err(|_| "bad offset".to_string())?,
                }
            }
            "combine" => {
                need(6)?;
                Command::Combine {
                    node: node(args[0])?,
                    a: args[1].to_string(),
                    b: args[2].to_string(),
                    dx: args[3].parse().map_err(|_| "bad dx".to_string())?,
                    dy: args[4].parse().map_err(|_| "bad dy".to_string())?,
                    new: args[5].to_string(),
                }
            }
            "range" => {
                need(3)?;
                Command::SetRange {
                    node: node(args[0])?,
                    lo: args[1].parse().map_err(|_| "bad min".to_string())?,
                    hi: args[2].parse().map_err(|_| "bad max".to_string())?,
                }
            }
            "layername" => {
                need(2)?;
                Command::LayerName { node: node(args[0])?, name: rest(1) }
            }
            "overlay" => {
                need(2)?;
                Command::Overlay { bottom: node(args[0])?, top: node(args[1])? }
            }
            "shuffle" => {
                need(2)?;
                Command::Shuffle {
                    node: node(args[0])?,
                    layer: args[1].parse().map_err(|_| "bad layer index".to_string())?,
                }
            }
            "stitch" => {
                need(2)?;
                Command::Stitch { members: node_list(args[0])?, layout: layout(args[1])? }
            }
            "replicate" => {
                need(2)?;
                match args[1].strip_prefix("enum:") {
                    Some(attr) => {
                        Command::Replicate { node: node(args[0])?, attr: attr.to_string() }
                    }
                    None => return Err("replicate currently takes enum:<attr>".to_string()),
                }
            }
            "const" => {
                need(2)?;
                Command::Const { ty: const_type(args[0])?, text: rest(1) }
            }
            "setconst" => {
                need(3)?;
                Command::SetConst { node: node(args[0])?, ty: const_type(args[1])?, text: rest(2) }
            }
            "restrictp" => {
                need(3)?;
                let mut params = Vec::new();
                for pair in args[1].split(',') {
                    let (name, src) =
                        pair.split_once('=').ok_or_else(|| format!("'{pair}' is not name=node"))?;
                    params.push((name.to_string(), node(src)?));
                }
                Command::RestrictP { node: node(args[0])?, params, predicate: rest(2) }
            }
            "viewer" => {
                need(2)?;
                Command::Viewer { node: node(args[0])?, canvas: args[1].to_string() }
            }
            "clone" => {
                need(2)?;
                Command::CloneCanvas { canvas: args[0].to_string(), new: args[1].to_string() }
            }
            "encapsulate" => {
                need(2)?;
                let region = node_list(args[0])?;
                let mut holes = Vec::new();
                for h in &args[2..] {
                    let ids = h
                        .strip_prefix("hole:")
                        .ok_or_else(|| format!("'{h}' is not hole:<nodes>"))?;
                    holes.push(node_list(ids)?);
                }
                Command::Encapsulate { region, name: args[1].to_string(), holes }
            }
            "usebox" => {
                need(1)?;
                let inputs = match args.get(1) {
                    Some(list) => node_list(list)?,
                    None => vec![],
                };
                Command::UseBox { name: args[0].to_string(), inputs }
            }
            "tee" => {
                need(2)?;
                Command::Tee {
                    node: node(args[0])?,
                    port: args[1].parse().map_err(|_| "bad port".to_string())?,
                }
            }
            "delete" => {
                need(1)?;
                Command::Delete { node: node(args[0])? }
            }
            "candidates" => {
                need(1)?;
                Command::Candidates { node: node(args[0])? }
            }
            "show" => {
                need(1)?;
                Command::Show {
                    node: node(args[0])?,
                    rows: args.get(1).and_then(|s| s.parse().ok()),
                }
            }
            "program" => Command::Program,
            "diagram" => {
                need(1)?;
                Command::Diagram { file: args[0].to_string() }
            }
            "render" => {
                need(1)?;
                Command::Render {
                    canvas: args[0].to_string(),
                    file: args.get(1).map(|s| s.to_string()),
                }
            }
            "elevmap" => {
                need(1)?;
                Command::ElevMap { canvas: args[0].to_string() }
            }
            "cyclemap" => {
                need(1)?;
                Command::CycleMap { canvas: args[0].to_string() }
            }
            "pan" => {
                need(3)?;
                Command::Pan {
                    canvas: args[0].to_string(),
                    dx: args[1].parse().map_err(|_| "bad dx".to_string())?,
                    dy: args[2].parse().map_err(|_| "bad dy".to_string())?,
                }
            }
            "zoom" => {
                need(2)?;
                Command::Zoom {
                    canvas: args[0].to_string(),
                    factor: args[1].parse().map_err(|_| "bad factor".to_string())?,
                }
            }
            "slider" => {
                need(4)?;
                Command::Slider {
                    canvas: args[0].to_string(),
                    dim: args[1].to_string(),
                    lo: args[2].parse().map_err(|_| "bad lo".to_string())?,
                    hi: args[3].parse().map_err(|_| "bad hi".to_string())?,
                }
            }
            "slave" => {
                need(2)?;
                Command::Slave { a: args[0].to_string(), b: args[1].to_string() }
            }
            "unslave" => {
                need(2)?;
                Command::Unslave { a: args[0].to_string(), b: args[1].to_string() }
            }
            "click" => {
                need(3)?;
                Command::Click {
                    canvas: args[0].to_string(),
                    x: args[1].parse().map_err(|_| "bad x".to_string())?,
                    y: args[2].parse().map_err(|_| "bad y".to_string())?,
                }
            }
            "update" => {
                need(4)?;
                let mut assigns = Vec::new();
                for assign in &args[3..] {
                    let (field, text) = assign
                        .split_once('=')
                        .ok_or_else(|| format!("'{assign}' is not field=text"))?;
                    assigns.push((field.to_string(), text.to_string()));
                }
                Command::Update {
                    canvas: args[0].to_string(),
                    x: args[1].parse().map_err(|_| "bad x".to_string())?,
                    y: args[2].parse().map_err(|_| "bad y".to_string())?,
                    assigns,
                }
            }
            "back" => Command::Back,
            "undo" => Command::Undo,
            "redo" => Command::Redo,
            "save" => {
                need(1)?;
                Command::Save { name: args[0].to_string() }
            }
            "load" => {
                need(1)?;
                Command::Load { name: args[0].to_string() }
            }
            "new" => Command::NewProgram,
            ":explain" | "explain" => {
                need(1)?;
                if args[0] == "analyze" {
                    need(2)?;
                    Command::ExplainAnalyze { node: node(args[1])? }
                } else {
                    Command::Explain { node: node(args[0])? }
                }
            }
            ":sys" | "sys" => Command::Sys,
            ":stats" | "stats" => Command::Stats,
            ":threads" | "threads" => match args.first() {
                None => Command::Threads(None),
                Some(tok) => Command::Threads(Some(
                    tok.parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| format!("'{tok}' is not a thread count (>= 1)"))?,
                )),
            },
            ":budget" | "budget" => {
                if args.is_empty() {
                    Command::Budget(BudgetCmd::Show)
                } else if args[0] == "off" {
                    Command::Budget(BudgetCmd::Off)
                } else {
                    let spec = rest(0);
                    tioga2_relational::govern::parse_budget_spec(&spec)
                        .filter(|b| !b.is_empty())
                        .ok_or_else(|| {
                        format!(
                            "'{spec}' is not a budget; \
                                 try ':budget rows=<n> ms=<n>' or ':budget off'"
                        )
                    })?;
                    Command::Budget(BudgetCmd::Set(spec))
                }
            }
            ":faults" | "faults" => {
                if args.is_empty() {
                    Command::Faults(FaultsCmd::Show)
                } else if args[0] == "off" {
                    Command::Faults(FaultsCmd::Off)
                } else {
                    let spec = rest(0);
                    tioga2_relational::FaultPlan::parse(&spec)?;
                    Command::Faults(FaultsCmd::Arm(spec))
                }
            }
            ":trace" | "trace" => {
                need(1)?;
                match args[0] {
                    "on" => Command::Trace(TraceCmd::On),
                    "off" => Command::Trace(TraceCmd::Off),
                    "export" => {
                        need(2)?;
                        Command::Trace(TraceCmd::Export(args[1].to_string()))
                    }
                    "prom" => {
                        need(2)?;
                        Command::Trace(TraceCmd::Prom(args[1].to_string()))
                    }
                    "folded" => {
                        need(2)?;
                        Command::Trace(TraceCmd::Folded(args[1].to_string()))
                    }
                    other => {
                        return Err(format!(
                            "':trace {other}' is not a trace command \
                             (on, off, export <path>, prom <path>, folded <path>)"
                        ))
                    }
                }
            }
            ":slowlog" | "slowlog" => {
                if args.is_empty() {
                    Command::Slowlog(SlowlogCmd::Show)
                } else {
                    match args[0] {
                        "off" => Command::Slowlog(SlowlogCmd::Off),
                        "clear" => Command::Slowlog(SlowlogCmd::Clear),
                        ms => Command::Slowlog(SlowlogCmd::Threshold(ms.parse().map_err(
                            |_| format!("':slowlog {ms}': expected a millisecond threshold, 'off', or 'clear'"),
                        )?)),
                    }
                }
            }
            ":journal" | "journal" => {
                if args.is_empty() {
                    Command::Journal(JournalCmd::Status)
                } else {
                    match args[0] {
                        "tail" => Command::Journal(JournalCmd::Tail(
                            args.get(1).and_then(|s| s.parse().ok()),
                        )),
                        "save" => {
                            need(2)?;
                            Command::Journal(JournalCmd::Save(args[1].to_string()))
                        }
                        "snapshot" => Command::Journal(JournalCmd::Snapshot),
                        "recover" => {
                            need(2)?;
                            Command::Journal(JournalCmd::Recover(args[1].to_string()))
                        }
                        other => {
                            return Err(format!(
                                "':journal {other}' is not a journal command \
                                 (tail [n], save <path>, snapshot, recover <path>)"
                            ))
                        }
                    }
                }
            }
            ":rewind" | "rewind" => Command::Rewind(args.first().and_then(|s| s.parse().ok())),
            ":replay" | "replay" => Command::Replay(args.first().and_then(|s| s.parse().ok())),
            ":watch" | "watch" => {
                if args.is_empty() {
                    Command::Watch(WatchCmd::Show)
                } else {
                    match args[0] {
                        "off" => Command::Watch(WatchCmd::Off),
                        "all" => Command::Watch(WatchCmd::All),
                        kind => Command::Watch(WatchCmd::Kind(kind.to_string())),
                    }
                }
            }
            other => return Err(format!("unknown command '{other}'; try 'help'")),
        };
        Ok(Some(c))
    }

    /// Render the canonical command line: `parse(format(c)) == c` for
    /// every command (pinned by the round-trip tests).
    pub fn format(&self) -> String {
        use Command::*;
        match self {
            Quit => "quit".to_string(),
            Help(None) => "help".to_string(),
            Help(Some(op)) => format!("help {op}"),
            Ops => "ops".to_string(),
            Tables => "tables".to_string(),
            Boxes => "boxes".to_string(),
            Programs(ProgramsCmd::List) => "programs".to_string(),
            Programs(ProgramsCmd::Export(p)) => format!("programs export {p}"),
            Programs(ProgramsCmd::Restore(p)) => format!("programs restore {p}"),
            AddTable { name } => format!("table {name}"),
            Restrict { node, predicate } => format!("restrict {} {predicate}", node.0),
            Project { node, fields } => format!("project {} {}", node.0, fields.join(",")),
            Sample { node, p, seed } => format!("sample {} {p} {seed}", node.0),
            Sort { node, keys } => {
                let spec: Vec<String> = keys
                    .iter()
                    .map(|(a, asc)| if *asc { a.clone() } else { format!("{a}:desc") })
                    .collect();
                format!("sort {} {}", node.0, spec.join(","))
            }
            Join { left, right, predicate } => {
                format!("join {} {} {predicate}", left.0, right.0)
            }
            Switch { node, predicate } => format!("switch {} {predicate}", node.0),
            Aggregate { node, keys, aggs } => {
                let k = if keys.is_empty() { "-".to_string() } else { keys.join(",") };
                let specs: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        format!(
                            "{}:{}:{}",
                            a.func.name(),
                            a.attr.as_deref().unwrap_or("-"),
                            a.output
                        )
                    })
                    .collect();
                format!("aggregate {} {k} {}", node.0, specs.join(","))
            }
            Distinct { node, attrs } => {
                if attrs.is_empty() {
                    format!("distinct {}", node.0)
                } else {
                    format!("distinct {} {}", node.0, attrs.join(","))
                }
            }
            Limit { node, offset, count } => format!("limit {} {offset} {count}", node.0),
            SetAttr { node, name, ty, def } => format!("setattr {} {name} {ty} {def}", node.0),
            AddAttr { node, name, ty, role, def } => {
                format!("addattr {} {name} {ty} {} {def}", node.0, attr_role_token(role))
            }
            RmAttr { node, name } => format!("rmattr {} {name}", node.0),
            SwapAttrs { node, a, b } => format!("swap {} {a} {b}", node.0),
            ScaleAttr { node, attr, k } => format!("scale {} {attr} {k}", node.0),
            TranslateAttr { node, attr, c } => format!("translate {} {attr} {c}", node.0),
            Combine { node, a, b, dx, dy, new } => {
                format!("combine {} {a} {b} {dx} {dy} {new}", node.0)
            }
            SetRange { node, lo, hi } => format!("range {} {lo} {hi}", node.0),
            LayerName { node, name } => format!("layername {} {name}", node.0),
            Overlay { bottom, top } => format!("overlay {} {}", bottom.0, top.0),
            Shuffle { node, layer } => format!("shuffle {} {layer}", node.0),
            Stitch { members, layout } => {
                format!("stitch {} {}", fmt_nodes(members), layout_token(layout))
            }
            Replicate { node, attr } => format!("replicate {} enum:{attr}", node.0),
            Const { ty, text } => format!("const {ty} {text}"),
            SetConst { node, ty, text } => format!("setconst {} {ty} {text}", node.0),
            RestrictP { node, params, predicate } => {
                let p: Vec<String> =
                    params.iter().map(|(n, src)| format!("{n}={}", src.0)).collect();
                format!("restrictp {} {} {predicate}", node.0, p.join(","))
            }
            Viewer { node, canvas } => format!("viewer {} {canvas}", node.0),
            CloneCanvas { canvas, new } => format!("clone {canvas} {new}"),
            Encapsulate { region, name, holes } => {
                let mut out = format!("encapsulate {} {name}", fmt_nodes(region));
                for h in holes {
                    out.push_str(&format!(" hole:{}", fmt_nodes(h)));
                }
                out
            }
            UseBox { name, inputs } => {
                if inputs.is_empty() {
                    format!("usebox {name}")
                } else {
                    format!("usebox {name} {}", fmt_nodes(inputs))
                }
            }
            Tee { node, port } => format!("tee {} {port}", node.0),
            Delete { node } => format!("delete {}", node.0),
            Candidates { node } => format!("candidates {}", node.0),
            Show { node, rows: None } => format!("show {}", node.0),
            Show { node, rows: Some(r) } => format!("show {} {r}", node.0),
            Program => "program".to_string(),
            Diagram { file } => format!("diagram {file}"),
            Render { canvas, file: None } => format!("render {canvas}"),
            Render { canvas, file: Some(f) } => format!("render {canvas} {f}"),
            ElevMap { canvas } => format!("elevmap {canvas}"),
            CycleMap { canvas } => format!("cyclemap {canvas}"),
            Pan { canvas, dx, dy } => format!("pan {canvas} {dx} {dy}"),
            Zoom { canvas, factor } => format!("zoom {canvas} {factor}"),
            Slider { canvas, dim, lo, hi } => format!("slider {canvas} {dim} {lo} {hi}"),
            Slave { a, b } => format!("slave {a} {b}"),
            Unslave { a, b } => format!("unslave {a} {b}"),
            Click { canvas, x, y } => format!("click {canvas} {x} {y}"),
            Update { canvas, x, y, assigns } => {
                let a: Vec<String> = assigns.iter().map(|(f, t)| format!("{f}={t}")).collect();
                format!("update {canvas} {x} {y} {}", a.join(" "))
            }
            Back => "back".to_string(),
            Undo => "undo".to_string(),
            Redo => "redo".to_string(),
            Save { name } => format!("save {name}"),
            Load { name } => format!("load {name}"),
            NewProgram => "new".to_string(),
            Explain { node } => format!(":explain {}", node.0),
            ExplainAnalyze { node } => format!(":explain analyze {}", node.0),
            Sys => ":sys".to_string(),
            Stats => ":stats".to_string(),
            Threads(None) => ":threads".to_string(),
            Threads(Some(n)) => format!(":threads {n}"),
            Budget(BudgetCmd::Show) => ":budget".to_string(),
            Budget(BudgetCmd::Off) => ":budget off".to_string(),
            Budget(BudgetCmd::Set(s)) => format!(":budget {s}"),
            Faults(FaultsCmd::Show) => ":faults".to_string(),
            Faults(FaultsCmd::Off) => ":faults off".to_string(),
            Faults(FaultsCmd::Arm(s)) => format!(":faults {s}"),
            Trace(TraceCmd::On) => ":trace on".to_string(),
            Trace(TraceCmd::Off) => ":trace off".to_string(),
            Trace(TraceCmd::Export(p)) => format!(":trace export {p}"),
            Trace(TraceCmd::Prom(p)) => format!(":trace prom {p}"),
            Trace(TraceCmd::Folded(p)) => format!(":trace folded {p}"),
            Slowlog(SlowlogCmd::Show) => ":slowlog".to_string(),
            Slowlog(SlowlogCmd::Off) => ":slowlog off".to_string(),
            Slowlog(SlowlogCmd::Clear) => ":slowlog clear".to_string(),
            Slowlog(SlowlogCmd::Threshold(ms)) => format!(":slowlog {ms}"),
            Journal(JournalCmd::Status) => ":journal".to_string(),
            Journal(JournalCmd::Tail(None)) => ":journal tail".to_string(),
            Journal(JournalCmd::Tail(Some(n))) => format!(":journal tail {n}"),
            Journal(JournalCmd::Save(p)) => format!(":journal save {p}"),
            Journal(JournalCmd::Snapshot) => ":journal snapshot".to_string(),
            Journal(JournalCmd::Recover(p)) => format!(":journal recover {p}"),
            Rewind(None) => ":rewind".to_string(),
            Rewind(Some(n)) => format!(":rewind {n}"),
            Replay(None) => ":replay".to_string(),
            Replay(Some(n)) => format!(":replay {n}"),
            Watch(WatchCmd::Show) => ":watch".to_string(),
            Watch(WatchCmd::Off) => ":watch off".to_string(),
            Watch(WatchCmd::All) => ":watch all".to_string(),
            Watch(WatchCmd::Kind(k)) => format!(":watch {k}"),
        }
    }

    /// Demand-class commands pull data through the engine (heavy); the
    /// server cancels a session's in-flight demand when a newer one
    /// arrives (§6 "a user gesture supersedes the previous one").
    pub fn is_demand(&self) -> bool {
        matches!(
            self,
            Command::Show { .. } | Command::Render { .. } | Command::ExplainAnalyze { .. }
        )
    }
}

/// Serialize the session's saved-program library as framed text
/// (`programs export`): a header line, then per program one
/// `program <name> <byte_len>` line followed by exactly that many bytes.
pub fn programs_to_text(session: &Session) -> String {
    let mut out = String::from("tioga2-programs v1\n");
    for (name, text) in session.env.programs_snapshot() {
        out.push_str(&format!("program {name} {}\n", text.len()));
        out.push_str(&text);
        out.push('\n');
    }
    out
}

/// Parse the `programs export` format back into `(name, text)` pairs.
pub fn programs_from_text(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut rest = text
        .strip_prefix("tioga2-programs v1\n")
        .ok_or_else(|| "not a tioga2-programs file".to_string())?;
    let mut out = Vec::new();
    while !rest.is_empty() {
        let (header, body) =
            rest.split_once('\n').ok_or_else(|| "truncated program header".to_string())?;
        let mut it = header.split_whitespace();
        if it.next() != Some("program") {
            return Err(format!("bad program header '{header}'"));
        }
        let name = it.next().ok_or_else(|| "missing program name".to_string())?.to_string();
        let len: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "missing program length".to_string())?;
        if body.len() < len + 1 {
            return Err(format!("truncated program '{name}'"));
        }
        out.push((name, body[..len].to_string()));
        rest = &body[len + 1..];
    }
    Ok(out)
}

/// Execute one command against the session.
pub fn dispatch(session: &mut Session, cmd: &Command) -> CommandResult {
    let msg = |s: String| Ok(Response::Message(s));
    match cmd {
        Command::Quit => Ok(Response::Quit),
        Command::Help(None) => msg(help_text()),
        Command::Help(Some(op)) => match crate::menus::help(op) {
            Some(h) => msg(format!("{} ({}): {}", h.name, h.reference, h.help)),
            None => Err(format!("no operation named '{op}'")),
        },
        Command::Ops => msg(crate::menus::OPERATIONS
            .iter()
            .map(|o| format!("{:22} {}", o.name, o.reference))
            .collect::<Vec<_>>()
            .join("\n")),
        Command::Tables => msg(crate::menus::tables_menu(session).join("\n")),
        Command::Boxes => msg(crate::menus::boxes_menu(session).join("\n")),
        Command::Programs(ProgramsCmd::List) => msg(session.env.program_names().join("\n")),
        Command::Programs(ProgramsCmd::Export(path)) => {
            let text = programs_to_text(session);
            let n = session.env.program_names().len();
            std::fs::write(path, text).map_err(|e| e.to_string())?;
            msg(format!("{path} written ({n} program(s))"))
        }
        Command::Programs(ProgramsCmd::Restore(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            let progs = programs_from_text(&text)?;
            let n = progs.len();
            for (name, text) in progs {
                session.env.restore_program_text(name, text);
            }
            // Snapshot so the restored library is durable in the journal
            // (recovery replays from the last snapshot).
            let seq = session.snapshot_now().map_err(err)?;
            msg(format!("{n} program(s) restored (snapshot #{seq})"))
        }
        Command::AddTable { name } => {
            let id = session.add_table(name).map_err(err)?;
            msg(format!("{id} = {name}"))
        }
        Command::Restrict { node, predicate } => {
            let id = session.restrict(*node, predicate).map_err(err)?;
            msg(format!("{id} = Restrict"))
        }
        Command::Project { node, fields } => {
            let fields: Vec<&str> = fields.iter().map(String::as_str).collect();
            let id = session.project(*node, &fields).map_err(err)?;
            msg(format!("{id} = Project"))
        }
        Command::Sample { node, p, seed } => {
            let id = session.sample(*node, *p, *seed).map_err(err)?;
            msg(format!("{id} = Sample({p})"))
        }
        Command::Sort { node, keys } => {
            let keys: Vec<(&str, bool)> = keys.iter().map(|(a, asc)| (a.as_str(), *asc)).collect();
            let id = session.sort(*node, &keys).map_err(err)?;
            msg(format!("{id} = Sort"))
        }
        Command::Join { left, right, predicate } => {
            let id = session.join(*left, *right, predicate).map_err(err)?;
            msg(format!("{id} = Join"))
        }
        Command::Switch { node, predicate } => {
            let id = session.switch(*node, predicate).map_err(err)?;
            msg(format!("{id} = Switch (outputs 0 = match, 1 = rest)"))
        }
        Command::Aggregate { node, keys, aggs } => {
            let keys: Vec<&str> = keys.iter().map(String::as_str).collect();
            let id = session.aggregate(*node, &keys, aggs.clone()).map_err(err)?;
            msg(format!("{id} = Aggregate"))
        }
        Command::Distinct { node, attrs } => {
            let attrs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let id = session.distinct(*node, &attrs).map_err(err)?;
            msg(format!("{id} = Distinct"))
        }
        Command::Limit { node, offset, count } => {
            let id = session.limit(*node, *offset, *count).map_err(err)?;
            msg(format!("{id} = Limit"))
        }
        Command::SetAttr { node, name, ty, def } => {
            let id = session.set_attribute(*node, name, ty.clone(), def).map_err(err)?;
            msg(format!("{id} = Set Attribute {name}"))
        }
        Command::AddAttr { node, name, ty, role, def } => {
            let id = session.add_attribute(*node, name, ty.clone(), def, *role).map_err(err)?;
            msg(format!("{id} = Add Attribute {name}"))
        }
        Command::RmAttr { node, name } => {
            let id = session.remove_attribute(*node, name).map_err(err)?;
            msg(format!("{id} = Remove Attribute"))
        }
        Command::SwapAttrs { node, a, b } => {
            let id = session.swap_attributes(*node, a, b).map_err(err)?;
            msg(format!("{id} = Swap Attributes"))
        }
        Command::ScaleAttr { node, attr, k } => {
            let id = session.scale_attribute(*node, attr, *k).map_err(err)?;
            msg(format!("{id} = Scale Attribute"))
        }
        Command::TranslateAttr { node, attr, c } => {
            let id = session.translate_attribute(*node, attr, *c).map_err(err)?;
            msg(format!("{id} = Translate Attribute"))
        }
        Command::Combine { node, a, b, dx, dy, new } => {
            let id = session.combine_displays(*node, a, b, (*dx, *dy), new).map_err(err)?;
            msg(format!("{id} = Combine Displays -> {new}"))
        }
        Command::SetRange { node, lo, hi } => {
            let id = session.set_range(*node, *lo, *hi, Selection::default()).map_err(err)?;
            msg(format!("{id} = Set Range [{lo}, {hi}]"))
        }
        Command::LayerName { node, name } => {
            let id = session.set_layer_name(*node, name).map_err(err)?;
            msg(format!("{id} = Set Layer Name"))
        }
        Command::Overlay { bottom, top } => {
            let id = session.overlay(*bottom, *top, vec![], true).map_err(err)?;
            msg(format!("{id} = Overlay"))
        }
        Command::Shuffle { node, layer } => {
            let id = session.shuffle(*node, *layer, Selection::default()).map_err(err)?;
            msg(format!("{id} = Shuffle"))
        }
        Command::Stitch { members, layout } => {
            let id = session.stitch(members, *layout).map_err(err)?;
            msg(format!("{id} = Stitch"))
        }
        Command::Replicate { node, attr } => {
            let spec = PartitionSpec::Enumerate(attr.clone());
            let id = session.replicate(*node, spec, None, Selection::default()).map_err(err)?;
            msg(format!("{id} = Replicate"))
        }
        Command::Const { ty, text } => {
            let v = parse_const(ty, text)?;
            let id = session.add_const(v).map_err(err)?;
            msg(format!("{id} = Const"))
        }
        Command::SetConst { node, ty, text } => {
            let v = parse_const(ty, text)?;
            session.set_const(*node, v).map_err(err)?;
            msg("parameter updated".to_string())
        }
        Command::RestrictP { node, params, predicate } => {
            let params: Vec<(&str, NodeId)> =
                params.iter().map(|(n, src)| (n.as_str(), *src)).collect();
            let id = session.restrict_with_params(*node, predicate, &params).map_err(err)?;
            msg(format!("{id} = Restrict(params)"))
        }
        Command::Viewer { node, canvas } => {
            let id = session.add_viewer(*node, canvas).map_err(err)?;
            msg(format!("{id} = Viewer[{canvas}]"))
        }
        Command::CloneCanvas { canvas, new } => {
            let id = session.clone_canvas(canvas, new).map_err(err)?;
            msg(format!("{id} = Viewer[{new}] (clone of {canvas})"))
        }
        Command::Encapsulate { region, name, holes } => {
            let holes: Vec<Vec<NodeId>> = holes.clone();
            let def = session.encapsulate(region, &holes, name).map_err(err)?;
            msg(format!(
                "registered '{}' ({} input(s), {} output(s), {} hole(s))",
                def.name,
                def.in_types.len(),
                def.out_types.len(),
                def.holes.len()
            ))
        }
        Command::UseBox { name, inputs } => {
            let template = session
                .env
                .registry
                .get(name)
                .ok_or_else(|| format!("no box named '{name}' in the registry"))?;
            let kind = template.kind.clone().ok_or_else(|| {
                format!(
                    "'{name}' needs parameters (or hole plugs); it cannot be instantiated directly"
                )
            })?;
            let id = session.add_box(kind).map_err(err)?;
            for (i, src) in inputs.iter().enumerate() {
                session.connect(*src, 0, id, i).map_err(err)?;
            }
            msg(format!("{id} = {name}"))
        }
        Command::Tee { node, port } => {
            let id = session.add_tee(*node, *port).map_err(err)?;
            msg(format!("{id} = T"))
        }
        Command::Delete { node } => {
            session.delete_box(*node).map_err(err)?;
            msg("deleted".to_string())
        }
        Command::Candidates { node } => {
            let cands = session.apply_box_candidates(&[(*node, 0)]).map_err(err)?;
            msg(cands.iter().map(|c| c.name.clone()).collect::<Vec<_>>().join("\n"))
        }
        Command::Show { node, rows } => {
            let rows = rows.unwrap_or(12);
            let d = session.demand(*node, 0).map_err(err)?;
            match d {
                tioga2_display::Displayable::R(dr) => {
                    msg(format!("{} tuples\n{}", dr.rel.len(), dr.rel.to_ascii_table(rows)))
                }
                other => msg(format!(
                    "{} displayable with {} tuples",
                    other.type_tag(),
                    other.tuple_count()
                )),
            }
        }
        Command::Program => msg(session.graph.to_ascii()),
        Command::Diagram { file } => {
            std::fs::create_dir_all("out").map_err(|e| e.to_string())?;
            let path = format!("out/{file}.svg");
            std::fs::write(&path, tioga2_dataflow::diagram::to_svg(&session.graph))
                .map_err(|e| e.to_string())?;
            msg(format!("{path} written"))
        }
        Command::Render { canvas, file } => {
            let frame = session.render(canvas).map_err(err)?;
            let file = file.as_deref().unwrap_or(canvas);
            std::fs::create_dir_all("out").map_err(|e| e.to_string())?;
            let path = format!("out/{file}.ppm");
            tioga2_render::ppm::write_ppm(&frame.fb, &path).map_err(|e| e.to_string())?;
            msg(format!(
                "{path}: {}x{} px, {} screen objects",
                frame.fb.width(),
                frame.fb.height(),
                frame.hits.len().max(frame.member_hits.iter().map(|h| h.len()).sum())
            ))
        }
        Command::ElevMap { canvas } => {
            let bars = session.elevation_map(canvas).map_err(err)?;
            msg(bars
                .iter()
                .map(|b| {
                    format!(
                        "[{}] {:20} {:>10.2}..{:<10.2} {}",
                        b.order,
                        b.layer_name,
                        b.range.min,
                        b.range.max,
                        if b.active { "ACTIVE" } else { "" }
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        Command::CycleMap { canvas } => {
            let i = session.cycle_elevation_map(canvas).map_err(err)?;
            msg(format!("elevation map now shows member {i}"))
        }
        Command::Pan { canvas, dx, dy } => {
            session.pan(canvas, *dx, *dy).map_err(err)?;
            msg("ok".to_string())
        }
        Command::Zoom { canvas, factor } => match session.zoom(canvas, *factor).map_err(err)? {
            Some(dest) => msg(format!("passed through a wormhole to '{dest}'")),
            None => msg(format!(
                "elevation {:.4}",
                session.viewers.get(canvas).map_err(|e| e.to_string())?.position.elevation
            )),
        },
        Command::Slider { canvas, dim, lo, hi } => {
            session.set_slider(canvas, dim, *lo, *hi).map_err(err)?;
            msg("ok".to_string())
        }
        Command::Slave { a, b } => {
            session.slave(a, b).map_err(err)?;
            msg("slaved".to_string())
        }
        Command::Unslave { a, b } => {
            session.unslave(a, b).map_err(err)?;
            msg("unslaved".to_string())
        }
        Command::Click { canvas, x, y } => match session.click(canvas, *x, *y).map_err(err)? {
            Some(hit) => msg(format!(
                "{} from layer '{}' (row {}, table {:?})",
                hit.kind, hit.provenance.layer, hit.provenance.row_id, hit.provenance.source
            )),
            None => msg("nothing there".to_string()),
        },
        Command::Update { canvas, x, y, assigns } => {
            let mut dialog = session.begin_update(canvas, *x, *y).map_err(err)?;
            let mut changed = Vec::new();
            for (field, text) in assigns {
                dialog.set_field(field, text).map_err(err)?;
                changed.push(field.clone());
            }
            let table = dialog.table.clone();
            let row = dialog.row_id;
            dialog.commit(session).map_err(err)?;
            msg(format!("updated {} of {table} row {row}", changed.join(", ")))
        }
        Command::Back => {
            let home = session.go_back().map_err(err)?;
            msg(format!("back on '{home}'"))
        }
        Command::Undo => msg(if session.undo() { "undone" } else { "nothing to undo" }.to_string()),
        Command::Redo => msg(if session.redo() { "redone" } else { "nothing to redo" }.to_string()),
        Command::Save { name } => {
            session.save_program(name);
            msg(format!("saved '{name}'"))
        }
        Command::Load { name } => {
            session.load_program(name).map_err(err)?;
            msg(format!("loaded '{name}' ({} boxes)", session.graph.len()))
        }
        Command::NewProgram => {
            session.new_program();
            msg("new program".to_string())
        }
        Command::Explain { node } => {
            msg(session.explain(*node, 0).map_err(err)?.trim_end().to_string())
        }
        Command::ExplainAnalyze { node } => {
            msg(session.explain_analyze(*node, 0).map_err(err)?.trim_end().to_string())
        }
        Command::Sys => {
            let names = session.refresh_sys_tables().map_err(err)?;
            let mut out = Vec::new();
            for name in names {
                let rows = session.env.catalog.snapshot(&name).map(|r| r.len()).unwrap_or(0);
                out.push(format!("{name:16} {rows} tuple(s)"));
            }
            out.push("refreshed — demand them like any table ('table sys.demands')".to_string());
            msg(out.join("\n"))
        }
        Command::Stats => {
            let st = session.engine_stats();
            let mut out = format!(
                "engine: box_evals={} cache_hits={} rows_in={} rows_out={}",
                st.box_evals, st.cache_hits, st.rows_in, st.rows_out
            );
            match session.recorder().summary_table() {
                Some(table) => {
                    out.push('\n');
                    out.push_str(table.trim_end());
                }
                None => out.push_str("\ntracing off — ':trace on' collects spans and histograms"),
            }
            msg(out)
        }
        Command::Threads(None) => msg(format!("threads={}", session.threads())),
        Command::Threads(Some(n)) => {
            session.set_threads(*n);
            msg(format!("threads={n}"))
        }
        Command::Budget(BudgetCmd::Show) => match session.budget() {
            Some(b) => msg(format!("budget: {}", describe_budget(b))),
            None => msg("budget off".to_string()),
        },
        Command::Budget(BudgetCmd::Off) => {
            session.set_budget(None);
            msg("budget off".to_string())
        }
        Command::Budget(BudgetCmd::Set(spec)) => {
            let budget = tioga2_relational::govern::parse_budget_spec(spec)
                .filter(|b| !b.is_empty())
                .ok_or_else(|| {
                    format!(
                        "'{spec}' is not a budget; try ':budget rows=<n> ms=<n>' or ':budget off'"
                    )
                })?;
            session.set_budget(Some(budget.clone()));
            msg(format!("budget: {}", describe_budget(&budget)))
        }
        Command::Faults(FaultsCmd::Show) => match tioga2_relational::fault::current() {
            Some(p) => msg(format!(
                "faults armed: {} spec(s), {} injected",
                p.specs().len(),
                p.injected_count()
            )),
            None => msg("faults off".to_string()),
        },
        Command::Faults(FaultsCmd::Off) => {
            tioga2_relational::fault::install(None);
            msg("faults off".to_string())
        }
        Command::Faults(FaultsCmd::Arm(spec)) => {
            let plan = tioga2_relational::FaultPlan::parse(spec)?;
            let n = plan.specs().len();
            tioga2_relational::fault::install(Some(plan));
            msg(format!("faults armed: {n} spec(s)"))
        }
        Command::Trace(TraceCmd::On) => {
            session.set_recorder(std::sync::Arc::new(tioga2_obs::InMemoryRecorder::new()));
            msg("tracing on".to_string())
        }
        Command::Trace(TraceCmd::Off) => {
            session.set_recorder(tioga2_obs::noop());
            msg("tracing off".to_string())
        }
        Command::Trace(TraceCmd::Export(path)) => {
            let json = session
                .recorder()
                .chrome_trace_json()
                .ok_or_else(|| "tracing is off; ':trace on' first".to_string())?;
            std::fs::write(path, json).map_err(|e| e.to_string())?;
            msg(format!("{path} written — open in Perfetto (ui.perfetto.dev)"))
        }
        Command::Trace(TraceCmd::Prom(path)) => {
            let text = session
                .recorder()
                .prometheus_text()
                .ok_or_else(|| "tracing is off; ':trace on' first".to_string())?;
            std::fs::write(path, text).map_err(|e| e.to_string())?;
            msg(format!("{path} written"))
        }
        Command::Trace(TraceCmd::Folded(path)) => {
            let traces: Vec<tioga2_obs::DemandTrace> =
                session.demand_traces().iter().cloned().collect();
            if traces.is_empty() {
                return Err(
                    "no demand traces; ':explain analyze <node>' or ':trace on' first".to_string()
                );
            }
            let text = tioga2_obs::export::folded_stacks(&traces);
            std::fs::write(path, text).map_err(|e| e.to_string())?;
            msg(format!("{path} written ({} demand trace(s))", traces.len()))
        }
        Command::Slowlog(SlowlogCmd::Show) => msg(session.slowlog().render()),
        Command::Slowlog(SlowlogCmd::Off) => {
            session.slowlog().disarm();
            msg("slowlog off (captured entries kept; ':slowlog clear' drops them)".to_string())
        }
        Command::Slowlog(SlowlogCmd::Clear) => {
            session.slowlog().clear();
            msg("slowlog cleared".to_string())
        }
        Command::Slowlog(SlowlogCmd::Threshold(ms)) => {
            session.slowlog().arm_ms(*ms);
            msg(format!(
                "slowlog armed: demands over {ms} ms are captured (':sys' refreshes sys.slow)"
            ))
        }
        Command::Journal(JournalCmd::Status) => {
            let ev = session.events();
            let snap = ev
                .last_snapshot_seq()
                .map(|s| format!("#{s}"))
                .unwrap_or_else(|| "none".to_string());
            let sink = ev.sink_path().unwrap_or_else(|| "none".to_string());
            msg(format!(
                "journal: {} event(s), {} dropped, last snapshot {snap}, file sink {sink}",
                ev.len(),
                ev.dropped()
            ))
        }
        Command::Journal(JournalCmd::Tail(n)) => {
            let n = n.unwrap_or(10);
            let evs = session.events().events();
            let start = evs.len().saturating_sub(n);
            let lines: Vec<String> =
                evs[start..].iter().map(|(seq, e)| format!("#{seq:<5} {}", e.summary())).collect();
            msg(if lines.is_empty() { "journal empty".to_string() } else { lines.join("\n") })
        }
        Command::Journal(JournalCmd::Save(path)) => {
            std::fs::write(path, session.journal_text()).map_err(|e| e.to_string())?;
            msg(format!("{path} written ({} event(s))", session.events().len()))
        }
        Command::Journal(JournalCmd::Snapshot) => {
            let seq = session.snapshot_now().map_err(err)?;
            msg(format!("snapshot #{seq} (canvas + catalog + undo stacks)"))
        }
        Command::Journal(JournalCmd::Recover(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            *session = Session::recover(&text).map_err(err)?;
            msg(format!(
                "recovered: {} box(es), {} canvas(es), {} journal event(s)",
                session.graph.len(),
                session.canvas_names().len(),
                session.events().len()
            ))
        }
        Command::Rewind(n) => {
            let done = session.rewind(n.unwrap_or(1));
            msg(format!("rewound {done} step(s) ({} box(es) now)", session.graph.len()))
        }
        Command::Replay(n) => {
            let done = session.replay_forward(n.unwrap_or(1));
            msg(format!("replayed {done} step(s) ({} box(es) now)", session.graph.len()))
        }
        Command::Watch(WatchCmd::Show) => match session.watch_filter() {
            Some("") => msg("watching all events".to_string()),
            Some(k) => msg(format!("watching '{k}' events")),
            None => {
                msg("watch off — ':watch all' or ':watch <kind>' tails the journal".to_string())
            }
        },
        Command::Watch(WatchCmd::Off) => {
            session.clear_watch();
            msg("watch off".to_string())
        }
        Command::Watch(WatchCmd::All) => {
            session.set_watch(Some(""));
            msg("watching all events".to_string())
        }
        Command::Watch(WatchCmd::Kind(kind)) => {
            session.set_watch(Some(kind));
            msg(format!("watching '{kind}' events"))
        }
    }
}

/// Parse + dispatch one line, then append the `:watch` live tail (new
/// journal events matching the filter interleave with normal output).
pub fn run_line(session: &mut Session, line: &str) -> CommandResult {
    let cmd = match Command::parse(line)? {
        None => return Ok(Response::Message(String::new())),
        Some(c) => c,
    };
    let result = dispatch(session, &cmd);
    match result {
        Ok(Response::Message(m)) if session.watch_filter().is_some() => {
            let tail: Vec<String> = session
                .drain_watch()
                .into_iter()
                .map(|(seq, e)| format!("[watch #{seq}] {}", e.summary()))
                .collect();
            if tail.is_empty() {
                Ok(Response::Message(m))
            } else if m.is_empty() {
                Ok(Response::Message(tail.join("\n")))
            } else {
                Ok(Response::Message(format!("{m}\n{}", tail.join("\n"))))
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Environment;
    use tioga2_relational::Catalog;

    #[test]
    fn every_spec_example_round_trips() {
        for spec in COMMANDS {
            let parsed = Command::parse(spec.example)
                .unwrap_or_else(|e| panic!("example '{}' failed: {e}", spec.example))
                .unwrap_or_else(|| panic!("example '{}' parsed to nothing", spec.example));
            let formatted = parsed.format();
            let reparsed = Command::parse(&formatted)
                .unwrap_or_else(|e| panic!("canonical '{formatted}' failed: {e}"))
                .unwrap_or_else(|| panic!("canonical '{formatted}' parsed to nothing"));
            assert_eq!(parsed, reparsed, "round trip broke for '{}'", spec.example);
        }
    }

    #[test]
    fn every_spec_example_starts_with_its_command_word() {
        for spec in COMMANDS {
            let first = spec.example.split_whitespace().next().unwrap();
            // `quit | exit` lists aliases; the example uses the primary.
            assert!(
                first == spec.name || spec.usage.contains(first),
                "example '{}' does not exercise '{}'",
                spec.example,
                spec.name
            );
        }
    }

    #[test]
    fn help_text_is_generated_from_the_table() {
        let help = help_text();
        assert!(help.contains("Tioga-2 REPL"));
        for spec in COMMANDS {
            assert!(help.contains(spec.usage), "usage '{}' missing from help", spec.usage);
            assert!(help.contains(spec.summary), "summary '{}' missing from help", spec.summary);
        }
    }

    #[test]
    fn variant_round_trips_beyond_the_examples() {
        // Optional fields, empty lists, and alias forms.
        for line in [
            "show 3",
            "show 3 20",
            "render main",
            "distinct 0",
            "usebox Thing",
            "sample 0 0.5",
            "aggregate 0 - count:-:n",
            "sort 0 a:asc,b:desc",
            "encapsulate 1,2 Name hole:3 hole:4,5",
            ":journal tail",
            ":rewind",
            ":replay 3",
            ":threads",
            ":budget",
            ":watch",
            "help",
            "programs",
        ] {
            let c = Command::parse(line).unwrap().unwrap();
            let again = Command::parse(&c.format()).unwrap().unwrap();
            assert_eq!(c, again, "round trip broke for '{line}'");
        }
        // Colon-less aliases normalize to the colon form.
        let c = Command::parse("explain 3").unwrap().unwrap();
        assert_eq!(c.format(), ":explain 3");
        let c = Command::parse("exit").unwrap().unwrap();
        assert_eq!(c, Command::Quit);
    }

    #[test]
    fn parse_rejects_bad_input_early() {
        assert!(Command::parse("frobnicate").is_err());
        assert!(Command::parse("restrict zebra TRUE").is_err());
        assert!(Command::parse("const puppy 3").is_err());
        assert!(Command::parse(":budget zebras=9").is_err());
        assert!(Command::parse(":faults restrict:pull:=bogus").is_err());
        assert!(Command::parse(":threads 0").is_err());
        assert!(Command::parse(":trace sideways").is_err());
        assert!(Command::parse("table").is_err(), "missing args caught at parse time");
        assert_eq!(Command::parse("  # comment").unwrap(), None);
        assert_eq!(Command::parse("").unwrap(), None);
    }

    #[test]
    fn demand_classifier() {
        assert!(Command::parse("show 0").unwrap().unwrap().is_demand());
        assert!(Command::parse("render main").unwrap().unwrap().is_demand());
        assert!(Command::parse(":explain analyze 2").unwrap().unwrap().is_demand());
        assert!(!Command::parse("restrict 0 a > 1").unwrap().unwrap().is_demand());
        assert!(!Command::parse("pan main 1 1").unwrap().unwrap().is_demand());
    }

    #[test]
    fn slowlog_captures_demands_into_sys_slow() {
        let catalog = Catalog::new();
        tioga2_datagen::register_standard_catalog(&catalog, 20, 2, 3);
        let mut s = Session::new(Environment::new(catalog));
        // Threshold 0: every traced demand is "slow".
        run_line(&mut s, ":slowlog 0").unwrap();
        run_line(&mut s, "table Stations").unwrap();
        run_line(&mut s, "restrict 0 state = 'LA'").unwrap();
        run_line(&mut s, "show 1").unwrap();
        assert!(!s.slowlog().entries().is_empty(), "armed slowlog captured nothing");

        let text = match run_line(&mut s, ":slowlog").unwrap() {
            Response::Message(m) => m,
            other => panic!("{other:?}"),
        };
        assert!(text.contains("slowlog armed at 0 ms"), "{text}");
        assert!(text.contains("slow demand(s) captured"), "{text}");

        // The ring is an ordinary relation after a sys refresh.
        run_line(&mut s, ":sys").unwrap();
        run_line(&mut s, "table sys.slow").unwrap();
        let shown = match run_line(&mut s, "show 2").unwrap() {
            Response::Message(m) => m,
            other => panic!("{other:?}"),
        };
        assert!(shown.contains("request"), "{shown}");
        assert!(shown.contains("#1.0"), "{shown}");

        // Disarm, demand again on a fresh chain: nothing new captured.
        let before = s.slowlog().entries().len();
        run_line(&mut s, ":slowlog off").unwrap();
        run_line(&mut s, "restrict 0 altitude > 0").unwrap();
        run_line(&mut s, "show 3").unwrap();
        assert_eq!(s.slowlog().entries().len(), before);
        run_line(&mut s, ":slowlog clear").unwrap();
        assert!(s.slowlog().entries().is_empty());
    }

    #[test]
    fn programs_text_round_trips() {
        let catalog = Catalog::new();
        tioga2_datagen::register_standard_catalog(&catalog, 20, 2, 3);
        let mut s = Session::new(Environment::new(catalog));
        run_line(&mut s, "table Stations").unwrap();
        run_line(&mut s, "restrict 0 state = 'LA'").unwrap();
        run_line(&mut s, "save first").unwrap();
        run_line(&mut s, "new").unwrap();
        run_line(&mut s, "table Stations").unwrap();
        run_line(&mut s, "save second").unwrap();

        let text = programs_to_text(&s);
        let progs = programs_from_text(&text).unwrap();
        assert_eq!(progs.len(), 2);
        assert_eq!(progs[0].0, "first");
        assert_eq!(progs[1].0, "second");
        assert_eq!(progs, s.env.programs_snapshot());

        assert!(programs_from_text("garbage").is_err());
        assert!(programs_from_text("tioga2-programs v1\nprogram x 999\nshort\n").is_err());
    }

    #[test]
    fn programs_export_restore_via_dispatch() {
        let dir = std::env::temp_dir().join("tioga2_programs_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("library.t2p");
        let path = path.to_str().unwrap();

        let catalog = Catalog::new();
        tioga2_datagen::register_standard_catalog(&catalog, 20, 2, 3);
        let mut s = Session::new(Environment::new(catalog.clone()));
        run_line(&mut s, "table Stations").unwrap();
        run_line(&mut s, "save mine").unwrap();
        let m = match run_line(&mut s, &format!("programs export {path}")).unwrap() {
            Response::Message(m) => m,
            other => panic!("{other:?}"),
        };
        assert!(m.contains("1 program(s)"), "{m}");

        // A fresh session restores the library and can load from it.
        let mut t = Session::new(Environment::new(catalog));
        let m = match run_line(&mut t, &format!("programs restore {path}")).unwrap() {
            Response::Message(m) => m,
            other => panic!("{other:?}"),
        };
        assert!(m.contains("1 program(s) restored"), "{m}");
        run_line(&mut t, "load mine").unwrap();
        assert_eq!(t.graph.len(), 1);
    }
}
