//! Canvas windows: the screen half of a Viewer box.
//!
//! Each viewer in the program owns one canvas window (§3).  A canvas
//! renders whatever displayable its viewer box currently sees: relations
//! and composites through a single [`tioga2_viewer::Viewer`] (held in the
//! session's `ViewerSet` so canvases can be slaved), groups through a
//! [`GroupWindow`] with per-member focus.  Magnifying glasses attach per
//! canvas.

use crate::error::CoreError;
use tioga2_dataflow::NodeId;
use tioga2_display::Displayable;
use tioga2_obs::Recorder;
use tioga2_render::{Framebuffer, HitIndex, Scene};
use tioga2_viewer::group::GroupWindow;
use tioga2_viewer::magnifier::Magnifier;
use tioga2_viewer::slaving::ViewerSet;
use tioga2_viewer::Viewer;

/// One canvas window.
pub struct Canvas {
    /// The Viewer box this canvas belongs to.
    pub node: NodeId,
    /// Group window state, for canvases whose content is a `G`.
    pub group: Option<GroupWindow>,
    pub magnifiers: Vec<Magnifier>,
    /// Pixel size of the canvas.
    pub size: (u32, u32),
    /// Whether the viewer has been fitted to data at least once.
    pub fitted: bool,
}

/// What a canvas render produced.
pub struct CanvasFrame {
    pub fb: Framebuffer,
    /// Hit index for R/C canvases (canvas-global coordinates).
    pub hits: HitIndex,
    /// Per-member hit indices for group canvases (member-local).
    pub member_hits: Vec<HitIndex>,
    /// The scene behind `hits` (empty for group canvases).
    pub scene: Scene,
}

impl Canvas {
    pub fn new(node: NodeId, width: u32, height: u32) -> Self {
        Canvas { node, group: None, magnifiers: Vec::new(), size: (width, height), fitted: false }
    }

    /// Render `content` through this canvas, using `viewers` for the
    /// canvas's own pan/zoom state (looked up under `name`).
    pub fn render(
        &mut self,
        name: &str,
        content: &Displayable,
        viewers: &mut ViewerSet,
    ) -> Result<CanvasFrame, CoreError> {
        self.render_recorded(name, content, viewers, tioga2_obs::noop_ref())
    }

    /// [`Canvas::render`] with compose/draw passes traced through `rec`.
    pub fn render_recorded(
        &mut self,
        name: &str,
        content: &Displayable,
        viewers: &mut ViewerSet,
        rec: &dyn Recorder,
    ) -> Result<CanvasFrame, CoreError> {
        match content {
            Displayable::G(g) => {
                let rebuild = match &self.group {
                    Some(gw) => gw.group.members.len() != g.members.len(),
                    None => true,
                };
                if rebuild {
                    self.group = Some(GroupWindow::new(g.clone(), self.size.0, self.size.1)?);
                } else if let Some(gw) = &mut self.group {
                    gw.group = g.clone();
                }
                let gw = self.group.as_mut().expect("group window exists");
                let (fb, member_hits) = gw.render()?;
                Ok(CanvasFrame {
                    fb,
                    hits: HitIndex::default(),
                    member_hits,
                    scene: Scene::default(),
                })
            }
            other => {
                self.group = None;
                let composite = other.clone().into_composite()?;
                if viewers.get(name).is_err() {
                    viewers.insert(Viewer::new(name, self.size.0, self.size.1));
                }
                if !self.fitted {
                    viewers.get_mut(name)?.fit(&composite)?;
                    self.fitted = true;
                }
                let viewer = viewers.get(name)?.clone();
                let (mut fb, hits, scene) = viewer.render_recorded(&composite, rec)?;
                for m in &self.magnifiers {
                    m.render_into(&viewer, &composite, &mut fb)?;
                }
                Ok(CanvasFrame { fb, hits, member_hits: Vec::new(), scene })
            }
        }
    }
}
