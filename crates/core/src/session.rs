//! A Tioga-2 session: the single user interface of paper §3 for both
//! building and using programs.

use crate::canvas::{Canvas, CanvasFrame};
use crate::environment::Environment;
use crate::error::CoreError;
use std::collections::BTreeMap;
use std::sync::Arc;
use tioga2_dataflow::boxes::{CompOpKind, RelOpKind};
use tioga2_dataflow::edit;
use tioga2_dataflow::encapsulate::{encapsulate, EncapsulatedDef};
use tioga2_dataflow::engine::eval_eager;
use tioga2_dataflow::persist;
use tioga2_dataflow::{
    BoxKind, BoxTemplate, Engine, EvalStats, FlowError, Graph, Journal, NodeId, PortType,
};
use tioga2_display::compose::PartitionSpec;
use tioga2_display::drilldown::{elevation_map, ElevationBar};
use tioga2_display::{Displayable, Layout, Selection};
use tioga2_expr::{parse, ScalarType, Shape, ViewerSpec};
use tioga2_obs::{
    CanvasView, EventLog, MagnifierView, Recorder, SessionEvent, SessionSnapshot, SpanId,
    TravelView, ViewState,
};
use tioga2_relational::persist as rel_persist;
use tioga2_relational::{Budget, CancelToken, Catalog};
use tioga2_render::HitRecord;
use tioga2_viewer::magnifier::Magnifier;
use tioga2_viewer::navigator::PASS_THROUGH_ELEVATION;
use tioga2_viewer::render_pass::Slider;
use tioga2_viewer::slaving::ViewerSet;
use tioga2_viewer::Viewer;

/// Evaluation discipline: the lazy Tioga-2 engine, or the eager
/// whole-program recompute of the original Tioga (the A1 baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    Lazy,
    EagerTioga1,
}

/// One wormhole traversal on the travel stack.
#[derive(Debug, Clone, PartialEq)]
struct Travel {
    canvas: String,
    center: (f64, f64),
    elevation: f64,
    entry_elevation: f64,
}

/// Default canvas window size in pixels.
pub const DEFAULT_CANVAS_SIZE: (u32, u32) = (640, 480);

/// Default auto-snapshot period (one snapshot marker per this many
/// journaled edits); override with `TIOGA2_SNAPSHOT_EVERY`.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 64;

fn env_snapshot_every() -> usize {
    std::env::var("TIOGA2_SNAPSHOT_EVERY")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|n: &usize| *n > 0)
        .unwrap_or(DEFAULT_SNAPSHOT_EVERY)
}

/// One user session.
///
/// ```
/// use tioga2_core::{Environment, Session};
/// use tioga2_datagen::register_standard_catalog;
/// use tioga2_relational::Catalog;
///
/// let catalog = Catalog::new();
/// register_standard_catalog(&catalog, 50, 4, 1);
/// let mut session = Session::new(Environment::new(catalog));
///
/// // The paper's Figure 1 pipeline, built incrementally.
/// let stations = session.add_table("Stations")?;
/// let louisiana = session.restrict(stations, "state = 'LA'")?;
/// session.add_viewer(louisiana, "main")?;
/// let frame = session.render("main")?;
/// assert!(frame.fb.ink_fraction() > 0.0);
/// # Ok::<(), tioga2_core::CoreError>(())
/// ```
pub struct Session {
    pub env: Environment,
    pub graph: Graph,
    engine: Engine,
    journal: Journal,
    pub viewers: ViewerSet,
    canvases: BTreeMap<String, Canvas>,
    focus: Option<String>,
    history: Vec<Travel>,
    mode: EvalMode,
    canvas_size: (u32, u32),
    /// Box evaluations spent in eager (Tioga-1) recomputes.
    pub eager_evals: u64,
    /// Validate appended boxes by evaluating them immediately (the
    /// paper's immediate-feedback principle).  Benches may disable it to
    /// measure pure edit cost.
    validate_edits: bool,
    /// Instrumentation sink, shared with the engine (defaults to the
    /// zero-overhead no-op recorder).
    recorder: Arc<dyn Recorder>,
    /// Session-level demand budget (row cap / wall-clock deadline).  When
    /// set, every demand the session issues runs under it; `None` leaves
    /// whatever the engine inherited (e.g. from `TIOGA2_BUDGET`).
    budget: Option<Budget>,
    /// Cancel token of the most recently armed demand.  Each render arms
    /// a fresh token and cancels the previous one, so a superseding
    /// render aborts any still-running predecessor cooperatively.
    inflight: Option<CancelToken>,
    /// Mirror of `inflight` shared with [`SupersedeHandle`]s, so other
    /// threads (e.g. a `tiogad` connection thread) can cancel this
    /// session's in-flight demand while the session worker is blocked
    /// inside it.
    inflight_shared: Arc<std::sync::Mutex<Option<CancelToken>>>,
    /// The session event journal: every edit, gesture, render, update,
    /// config change and demand outcome, plus periodic snapshot markers.
    /// Shared with the engine (which appends demand/cache events).
    events: EventLog,
    /// Nesting depth of public session ops.  Only the outermost op
    /// journals itself, so a zoom that passes through a wormhole does not
    /// also journal the inner traversal (replay would apply it twice).
    op_depth: u32,
    /// Edits journaled since the last snapshot marker.
    edits_since_snapshot: usize,
    /// Auto-snapshot period in edits (`TIOGA2_SNAPSHOT_EVERY`).
    snapshot_every: usize,
    /// `:watch` live-tail filter: `Some("")` tails every kind,
    /// `Some(kind)` one kind, `None` is off.
    watch: Option<String>,
    /// Last journal sequence number already delivered to `:watch`.
    watch_cursor: u64,
    /// Slow-demand ring shared with the engine (standalone sessions own
    /// one seeded from `TIOGA2_SLOWLOG`; `tiogad` swaps in its
    /// fleet-wide log via [`Session::install_slowlog`]).
    slowlog: Arc<tioga2_obs::SlowLog>,
}

/// A clonable, thread-safe view of one session's in-flight demand token
/// (see [`Session::supersede_handle`]).
#[derive(Clone)]
pub struct SupersedeHandle(Arc<std::sync::Mutex<Option<CancelToken>>>);

impl SupersedeHandle {
    /// Cancel the demand currently in flight, if any.  Returns whether a
    /// token was armed.  Cooperative: the running demand notices at its
    /// next cancellation check and aborts with a structured error.
    pub fn cancel_inflight(&self) -> bool {
        match self.0.lock().unwrap().as_ref() {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }
}

impl Session {
    pub fn new(env: Environment) -> Self {
        let mut engine = Engine::new(env.catalog.clone());
        let events = EventLog::new();
        engine.set_journal(Some(events.clone()));
        let slowlog = Arc::new(tioga2_obs::SlowLog::from_env());
        engine.set_slowlog(slowlog.clone(), "", "");
        Session {
            env,
            graph: Graph::new(),
            engine,
            journal: Journal::new(),
            viewers: ViewerSet::new(),
            canvases: BTreeMap::new(),
            focus: None,
            history: Vec::new(),
            mode: EvalMode::Lazy,
            canvas_size: DEFAULT_CANVAS_SIZE,
            eager_evals: 0,
            validate_edits: true,
            recorder: tioga2_obs::noop(),
            budget: None,
            inflight: None,
            inflight_shared: Arc::new(std::sync::Mutex::new(None)),
            events,
            op_depth: 0,
            edits_since_snapshot: 0,
            snapshot_every: env_snapshot_every(),
            watch: None,
            watch_cursor: 0,
            slowlog,
        }
    }

    /// The session's slow-demand ring (see [`tioga2_obs::SlowLog`]).
    pub fn slowlog(&self) -> &Arc<tioga2_obs::SlowLog> {
        &self.slowlog
    }

    /// Replace the slow-demand sink and the `{tenant, session}` labels
    /// its captures carry.  `tiogad` installs its fleet-wide log here on
    /// attach so one ring aggregates slow demands across all tenants.
    pub fn install_slowlog(&mut self, log: Arc<tioga2_obs::SlowLog>, tenant: &str, session: &str) {
        self.engine.set_slowlog(log.clone(), tenant, session);
        self.slowlog = log;
    }

    /// Stamp subsequent demands with a protocol request id (0 clears);
    /// see [`Engine::set_request_id`].
    pub fn set_request_id(&mut self, request_id: u64) {
        self.engine.set_request_id(request_id);
    }

    /// Install an instrumentation recorder for this session and its
    /// engine.  Pass [`tioga2_obs::noop()`] to turn tracing back off.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.engine.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The session's current recorder.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Begin a session-level op span (no-op unless tracing is enabled).
    fn op_span(&self, name: &str, detail: &str) -> SpanId {
        if self.recorder.is_enabled() {
            self.recorder.span_begin(name, detail)
        } else {
            SpanId::NONE
        }
    }

    /// Toggle immediate evaluation of newly appended boxes.
    pub fn set_validate(&mut self, on: bool) {
        self.validate_edits = on;
    }

    pub fn set_canvas_size(&mut self, width: u32, height: u32) {
        self.canvas_size = (width.max(8), height.max(8));
        let (w, h) = self.canvas_size;
        self.journal_outer(SessionEvent::Config {
            key: "canvas_size".into(),
            value: format!("{w}x{h}"),
        });
    }

    pub fn set_mode(&mut self, mode: EvalMode) {
        self.mode = mode;
        self.journal_outer(SessionEvent::Config {
            key: "mode".into(),
            value: if mode == EvalMode::Lazy { "lazy" } else { "eager" }.into(),
        });
    }

    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Lazy-engine statistics (box firings / cache hits).
    pub fn engine_stats(&self) -> EvalStats {
        self.engine.stats
    }

    /// Worker count for partition-parallel plan execution.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Set the worker count for this session's engine and the
    /// process-wide default (so future engines inherit it).  Purely an
    /// execution strategy — results are identical at any setting.
    pub fn set_threads(&mut self, n: usize) {
        self.engine.set_threads(n);
        tioga2_relational::par::set_threads(n);
        self.journal_outer(SessionEvent::Config {
            key: "threads".into(),
            value: self.engine.threads().to_string(),
        });
    }

    // ------------------------------------------------- governance (§10)

    /// Set (or clear, with `None`) the session-wide demand budget.  Takes
    /// effect on the next demand; clearing also removes any engine-level
    /// budget inherited from `TIOGA2_BUDGET`.
    pub fn set_budget(&mut self, budget: Option<Budget>) {
        self.budget = budget.clone();
        self.engine.set_budget(budget);
    }

    /// The session-wide demand budget, if any.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// Cancel token of the most recently armed demand.  Another thread
    /// may hold a clone and `cancel()` it to abort that demand
    /// cooperatively; the session arms a fresh token per render.
    pub fn inflight_token(&self) -> Option<CancelToken> {
        self.inflight.clone()
    }

    /// A clonable, thread-safe handle onto this session's in-flight
    /// demand.  `tiogad` hands one to each connection thread so a newly
    /// arriving demand-class command can cancel the demand the session
    /// worker is currently executing (admission control's "supersede"
    /// rule) without locking the session itself.
    pub fn supersede_handle(&self) -> SupersedeHandle {
        SupersedeHandle(self.inflight_shared.clone())
    }

    /// Arm a fresh cancel token for a demand about to run, cancelling the
    /// token of the demand it supersedes (§10: a newer render aborts the
    /// in-flight one instead of queueing behind it).
    fn arm_demand(&mut self) -> CancelToken {
        let token = CancelToken::new();
        if let Some(prev) = self.inflight.replace(token.clone()) {
            prev.cancel();
        }
        *self.inflight_shared.lock().unwrap() = Some(token.clone());
        match &self.budget {
            Some(b) => self.engine.set_budget(Some(b.clone().with_token(token.clone()))),
            None => self.engine.set_cancel_token(Some(token.clone())),
        }
        token
    }

    /// Scope a fault-injection plan to this session's engine (the chaos
    /// suite uses this to keep faults out of the process-global
    /// registry).  `None` falls back to `TIOGA2_FAULTS`/`fault::install`.
    pub fn set_fault_plan(&mut self, plan: Option<tioga2_relational::FaultPlan>) {
        self.engine.set_fault_plan(plan);
    }

    /// Demand a node output under a one-shot budget, leaving the
    /// session's standing budget untouched.
    pub fn demand_with_budget(
        &mut self,
        node: NodeId,
        port: usize,
        budget: Budget,
    ) -> Result<Displayable, CoreError> {
        let prev = self.engine.budget().cloned();
        self.engine.set_budget(Some(budget));
        let result = self.engine.demand_displayable(&self.graph, node, port);
        self.engine.set_budget(prev);
        Ok(result?)
    }

    // ----------------------------------------- session event journal

    /// The session's event journal.  Shared with the engine, which
    /// appends demand-lifecycle and cache-invalidation events to it.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Serialize the journal as versioned JSONL (header + one event per
    /// line) — the input format of [`Session::recover`].
    pub fn journal_text(&self) -> String {
        self.events.to_jsonl()
    }

    /// Attach an append-only JSONL file sink to the journal.
    pub fn attach_journal_file(&self, path: &str) -> std::io::Result<()> {
        self.events.attach_file(path)
    }

    /// Turn fsync-on-commit on or off for the journal file sink.
    pub fn set_journal_fsync(&self, on: bool) {
        self.events.set_fsync(on);
    }

    /// Flush and fsync the journal file sink (drain / eviction path).
    pub fn sync_journal(&self) -> Result<(), CoreError> {
        self.events.sync().map_err(CoreError::Session)
    }

    /// Append an event if this is the outermost public op (nested ops —
    /// e.g. the render inside a pan's first fit — are implied by the
    /// outer event and must not be replayed twice).
    fn journal_outer(&self, ev: SessionEvent) {
        if self.op_depth == 0 {
            self.events.append(ev);
        }
    }

    /// Journal a successful program edit: the op label plus the full
    /// serialized post-edit program, so replay needs no knowledge of the
    /// edit itself.  Every `snapshot_every` edits a snapshot marker
    /// follows, bounding the tail recovery has to replay.
    fn journal_edit(&mut self, op: &str) {
        if self.op_depth != 0 {
            return;
        }
        let ev =
            SessionEvent::Edit { op: op.to_string(), program: persist::save_program(&self.graph) };
        if self.events.append(ev).is_none() {
            return; // journal disabled (recovery replay in progress)
        }
        self.edits_since_snapshot += 1;
        if self.edits_since_snapshot >= self.snapshot_every {
            let _ = self.snapshot_now();
        }
    }

    /// Write a snapshot marker embedding the full session state (program,
    /// catalog, saved-program library, undo stacks, view state).
    /// Recovery restores the last snapshot and replays the tail after it.
    pub fn snapshot_now(&mut self) -> Result<u64, CoreError> {
        let snap = self.build_snapshot()?;
        let seq = self.events.append(SessionEvent::Snapshot(Box::new(snap)));
        self.edits_since_snapshot = 0;
        seq.ok_or_else(|| CoreError::Session("event journal is disabled".into()))
    }

    fn build_snapshot(&self) -> Result<SessionSnapshot, CoreError> {
        let mut tables = Vec::new();
        for name in self.env.catalog.table_names() {
            if name.starts_with("sys.") {
                continue; // self-hosted tables are rebuilt on demand
            }
            let rel = self.env.catalog.snapshot(&name)?;
            tables.push((name, rel_persist::save_relation(&rel)?));
        }
        let (past, future) = self.journal.stacks();
        let canvases = self
            .canvases
            .iter()
            .map(|(name, c)| {
                let (center, elevation, sliders) = match self.viewers.get(name) {
                    Ok(v) => (
                        v.position.center,
                        v.position.elevation,
                        v.position
                            .sliders
                            .iter()
                            .map(|s| (s.dim.clone(), s.range.0, s.range.1))
                            .collect(),
                    ),
                    Err(_) => ((0.0, 0.0), 0.0, Vec::new()),
                };
                CanvasView {
                    name: name.clone(),
                    fitted: c.fitted,
                    size: (c.size.0 as u64, c.size.1 as u64),
                    center,
                    elevation,
                    sliders,
                    magnifiers: c
                        .magnifiers
                        .iter()
                        .map(|m| MagnifierView {
                            rect: (
                                m.rect_px.0 as i64,
                                m.rect_px.1 as i64,
                                m.rect_px.2 as u64,
                                m.rect_px.3 as u64,
                            ),
                            zoom: m.zoom,
                            slaved: m.slaved,
                            center: m.center,
                            display_attr: m.display_attr.clone(),
                        })
                        .collect(),
                }
            })
            .collect();
        Ok(SessionSnapshot {
            program: persist::save_program(&self.graph),
            tables,
            programs: self.env.programs_snapshot(),
            undo_past: past.iter().map(persist::save_program).collect(),
            undo_future: future.iter().map(persist::save_program).collect(),
            view: ViewState {
                focus: self.focus.clone(),
                canvas_size: (self.canvas_size.0 as u64, self.canvas_size.1 as u64),
                canvases,
                slaves: self.viewers.slaved_pairs(),
                travels: self
                    .history
                    .iter()
                    .map(|t| TravelView {
                        canvas: t.canvas.clone(),
                        center: t.center,
                        elevation: t.elevation,
                        entry_elevation: t.entry_elevation,
                    })
                    .collect(),
            },
        })
    }

    /// Rebuild a session from a serialized journal: restore the last
    /// snapshot (program, catalog, program library, undo stacks, view
    /// state), then replay the replayable tail after it.  The recovered
    /// session's canvases, catalog, and demand results are byte-identical
    /// to the crashed session's.
    ///
    /// Limitations (documented in DESIGN.md §11): big-programmer custom
    /// boxes must be re-registered before recovery can load programs that
    /// use them, and a group canvas's member cursor is not journaled.
    pub fn recover(text: &str) -> Result<Session, CoreError> {
        let log = EventLog::from_jsonl(text).map_err(CoreError::Session)?;
        Self::recover_from_log(log)
    }

    /// [`Session::recover`], but tolerant of a torn final journal line —
    /// the signature of a crash (SIGKILL, power loss) mid-append.  The
    /// torn record is dropped (its op never acknowledged durable) and
    /// the second element reports whether that happened.  Corruption
    /// anywhere earlier is still a hard error.
    pub fn recover_crashed(text: &str) -> Result<(Session, bool), CoreError> {
        let (log, torn) = EventLog::from_jsonl_recovering(text).map_err(CoreError::Session)?;
        Ok((Self::recover_from_log(log)?, torn))
    }

    fn recover_from_log(log: EventLog) -> Result<Session, CoreError> {
        let snap_seq = log
            .last_snapshot_seq()
            .ok_or_else(|| CoreError::Session("journal has no snapshot to recover from".into()))?;
        let snap = log
            .events()
            .into_iter()
            .find_map(|(s, ev)| match ev {
                SessionEvent::Snapshot(b) if s == snap_seq => Some(*b),
                _ => None,
            })
            .ok_or_else(|| CoreError::Session("snapshot marker missing from journal".into()))?;

        let catalog = Catalog::new();
        for (name, text) in &snap.tables {
            catalog.register(name.clone(), rel_persist::load_relation(text)?);
        }
        let mut env = Environment::new(catalog);
        for (name, text) in &snap.programs {
            env.restore_program_text(name.clone(), text.clone());
        }

        let mut s = Session::new(env);
        // Replay must not re-journal: disable the fresh log for the
        // duration, then adopt the loaded log wholesale.
        s.events.set_enabled(false);
        s.graph = persist::load_program(&snap.program, &s.env.registry)?;
        let past = snap
            .undo_past
            .iter()
            .map(|t| persist::load_program(t, &s.env.registry))
            .collect::<Result<Vec<_>, _>>()?;
        let future = snap
            .undo_future
            .iter()
            .map(|t| persist::load_program(t, &s.env.registry))
            .collect::<Result<Vec<_>, _>>()?;
        s.journal.restore_stacks(past, future);
        s.sync_canvases();

        // View state: canvas sizes and flags, then viewer positions, then
        // slaving (which captures offsets from the restored positions),
        // then the travel stack and focus.
        s.canvas_size = (snap.view.canvas_size.0 as u32, snap.view.canvas_size.1 as u32);
        for cv in &snap.view.canvases {
            let Some(c) = s.canvases.get_mut(&cv.name) else { continue };
            c.size = (cv.size.0 as u32, cv.size.1 as u32);
            c.fitted = cv.fitted;
            c.magnifiers = cv
                .magnifiers
                .iter()
                .map(|m| Magnifier {
                    rect_px: (m.rect.0 as i32, m.rect.1 as i32, m.rect.2 as u32, m.rect.3 as u32),
                    zoom: m.zoom,
                    slaved: m.slaved,
                    center: m.center,
                    display_attr: m.display_attr.clone(),
                })
                .collect();
            if cv.fitted {
                let mut v = Viewer::new(&cv.name, c.size.0, c.size.1);
                v.position.center = cv.center;
                v.position.elevation = cv.elevation;
                v.position.sliders = cv
                    .sliders
                    .iter()
                    .map(|(d, lo, hi)| Slider { dim: d.clone(), range: (*lo, *hi) })
                    .collect();
                s.viewers.insert(v);
            }
        }
        for (a, b) in &snap.view.slaves {
            s.viewers.slave(a, b)?;
        }
        s.history = snap
            .view
            .travels
            .iter()
            .map(|t| Travel {
                canvas: t.canvas.clone(),
                center: t.center,
                elevation: t.elevation,
                entry_elevation: t.entry_elevation,
            })
            .collect();
        s.focus = snap.view.focus.clone();

        for (seq, ev) in log.events() {
            if seq <= snap_seq || !ev.is_replayable() {
                continue;
            }
            s.replay_event(&ev)?;
        }

        // Adopt the loaded journal: the recovered session continues
        // appending after the crashed session's last sequence number.
        s.events = log;
        s.engine.set_journal(Some(s.events.clone()));
        s.events.set_enabled(true);
        Ok(s)
    }

    /// Re-apply one replayable journal event (recovery tail replay).
    fn replay_event(&mut self, ev: &SessionEvent) -> Result<(), CoreError> {
        match ev {
            SessionEvent::Edit { program, .. } => {
                self.journal.checkpoint(&self.graph);
                self.graph = persist::load_program(program, &self.env.registry)?;
                // A reloaded graph reuses node ids and revisions; stale
                // memoized results must not leak across the swap.
                self.engine.invalidate_all();
                self.after_edit();
            }
            SessionEvent::Undo => {
                self.undo();
            }
            SessionEvent::Redo => {
                self.redo();
            }
            SessionEvent::Render { canvas } => {
                self.render(canvas)?;
            }
            SessionEvent::Gesture { gesture, canvas, args } => {
                self.replay_gesture(gesture, canvas, args)?;
            }
            SessionEvent::Update { table, row_id, changes } => {
                let changes = changes
                    .iter()
                    .map(|(f, enc)| {
                        Ok(tioga2_relational::update::FieldChange {
                            field: f.clone(),
                            value: rel_persist::decode_value(enc)?,
                        })
                    })
                    .collect::<Result<Vec<_>, tioga2_relational::RelError>>()?;
                self.install_update(table, *row_id, &changes)?;
            }
            SessionEvent::Config { key, value } => self.replay_config(key, value),
            _ => {}
        }
        Ok(())
    }

    fn replay_gesture(
        &mut self,
        gesture: &str,
        canvas: &str,
        args: &[String],
    ) -> Result<(), CoreError> {
        let txt = |i: usize| args.get(i).map(|s| s.as_str()).unwrap_or("");
        let num = |i: usize| txt(i).parse::<f64>().unwrap_or(0.0);
        let int = |i: usize| txt(i).parse::<i64>().unwrap_or(0);
        match gesture {
            "pan" => self.pan(canvas, int(0) as i32, int(1) as i32)?,
            "zoom" => {
                self.zoom(canvas, num(0))?;
            }
            "set_slider" => self.set_slider(canvas, txt(0), num(1), num(2))?,
            "slave" => self.slave(canvas, txt(0))?,
            "unslave" => self.unslave(canvas, txt(0))?,
            "traverse" => {
                let spec = ViewerSpec {
                    destination: txt(0).to_string(),
                    at: (num(1), num(2)),
                    elevation: num(3),
                    size: (num(4), num(5)),
                };
                self.traverse(canvas, &spec)?;
            }
            "go_back" => {
                self.go_back()?;
            }
            "add_magnifier" => {
                let mut m = Magnifier::new(
                    (int(0) as i32, int(1) as i32, int(2) as u32, int(3) as u32),
                    num(4),
                )?;
                m.slaved = int(5) != 0;
                m.center = (num(6), num(7));
                m.display_attr = args.get(8).filter(|s| !s.is_empty()).cloned();
                self.add_magnifier(canvas, m)?;
            }
            "remove_magnifier" => self.remove_magnifier(canvas, int(0) as usize)?,
            "cycle_map" => {
                self.cycle_elevation_map(canvas)?;
            }
            "clone_view" => {
                // The graph edit was replayed by the preceding Edit
                // event; this re-applies the viewer-position copy.
                if let Ok(srcv) = self.viewers.get(txt(0)) {
                    let pos = srcv.position.clone();
                    let size = srcv.size;
                    let mut v = Viewer::new(canvas, size.0, size.1);
                    v.position = pos;
                    self.viewers.insert(v);
                    if let Some(c) = self.canvases.get_mut(canvas) {
                        c.fitted = true;
                    }
                }
            }
            other => {
                return Err(CoreError::Session(format!("unknown journaled gesture '{other}'")))
            }
        }
        Ok(())
    }

    fn replay_config(&mut self, key: &str, value: &str) {
        match key {
            "threads" => self.set_threads(value.parse().unwrap_or(1)),
            "canvas_size" => {
                if let Some((w, h)) = value.split_once('x') {
                    let w = w.parse().unwrap_or(DEFAULT_CANVAS_SIZE.0);
                    let h = h.parse().unwrap_or(DEFAULT_CANVAS_SIZE.1);
                    self.set_canvas_size(w, h);
                }
            }
            "mode" => {
                self.set_mode(if value == "eager" { EvalMode::EagerTioga1 } else { EvalMode::Lazy })
            }
            "focus" => {
                let _ = self.set_focus(value);
            }
            "trace_ring" => self.set_trace_ring(value.parse().unwrap_or(32)),
            "save_program" => self.save_program(value),
            // Unknown keys from a newer writer are informational only.
            _ => {}
        }
    }

    // ------------------------------------------ time travel (:rewind)

    /// `:rewind N`: step backwards through the undo machinery, journaling
    /// each step.  Returns how many steps actually applied.
    pub fn rewind(&mut self, n: usize) -> usize {
        let mut done = 0;
        for _ in 0..n {
            if !self.undo() {
                break;
            }
            done += 1;
        }
        done
    }

    /// `:replay N`: step forwards again (redo). Returns steps applied.
    pub fn replay_forward(&mut self, n: usize) -> usize {
        let mut done = 0;
        for _ in 0..n {
            if !self.redo() {
                break;
            }
            done += 1;
        }
        done
    }

    // ------------------------------------------------ live tail (:watch)

    /// Arm the `:watch` live tail.  `filter` restricts to one event kind
    /// (e.g. `"demand"`); `None` tails everything.  The cursor starts at
    /// the current log head, so only *new* events are delivered.
    pub fn set_watch(&mut self, filter: Option<&str>) {
        self.watch = Some(filter.unwrap_or("").to_string());
        self.watch_cursor = self.events.last_seq().unwrap_or(0);
    }

    /// Disarm the live tail.
    pub fn clear_watch(&mut self) {
        self.watch = None;
    }

    /// The armed watch filter: `Some("")` = all kinds, `None` = off.
    pub fn watch_filter(&self) -> Option<&str> {
        self.watch.as_deref()
    }

    /// Drain events appended since the watch cursor, advancing it.
    /// Returns an empty vec when `:watch` is off.
    pub fn drain_watch(&mut self) -> Vec<(u64, SessionEvent)> {
        let Some(filter) = self.watch.clone() else { return Vec::new() };
        let evs = self.events.events_since(self.watch_cursor);
        if let Some((s, _)) = evs.last() {
            self.watch_cursor = *s;
        }
        evs.into_iter().filter(|(_, e)| filter.is_empty() || e.kind() == filter).collect()
    }

    // ------------------------------------------- trace ring (satellite)

    /// Resize the engine's demand-trace ring (`TIOGA2_TRACE_RING` sets
    /// the initial size).
    pub fn set_trace_ring(&mut self, capacity: usize) {
        self.engine.set_trace_ring(capacity);
        self.journal_outer(SessionEvent::Config {
            key: "trace_ring".into(),
            value: self.engine.trace_ring().to_string(),
        });
    }

    /// Current demand-trace ring capacity.
    pub fn trace_ring(&self) -> usize {
        self.engine.trace_ring()
    }

    /// Demand traces evicted from the ring so far.
    pub fn traces_dropped(&self) -> u64 {
        self.engine.traces_dropped()
    }

    // ------------------------------------------------------------ edits

    /// Run one journaled edit.  On failure the program is rolled back, so
    /// a rejected operation never leaves the session half-edited.
    fn edit<R>(
        &mut self,
        f: impl FnOnce(&mut Graph) -> Result<R, FlowError>,
    ) -> Result<R, CoreError> {
        let span = self.op_span("session.edit", "");
        self.journal.checkpoint(&self.graph);
        let result = match f(&mut self.graph) {
            Ok(r) => {
                self.after_edit();
                Ok(r)
            }
            Err(e) => {
                self.journal.undo(&mut self.graph);
                Err(e.into())
            }
        };
        self.recorder.span_end(span, &[("ok", result.is_ok() as i64)]);
        result
    }

    fn after_edit(&mut self) {
        self.sync_canvases();
        if self.mode == EvalMode::EagerTioga1 {
            // The Tioga-1 discipline: recompute the whole program after
            // every edit, no caching.
            if let Ok((_, stats)) = eval_eager(&self.graph, &self.engine.catalog().clone()) {
                self.eager_evals += stats.box_evals;
            }
        }
    }

    /// Reconcile canvas windows with the viewer boxes in the program:
    /// every Viewer box has a canvas; no canvas outlives its box.
    fn sync_canvases(&mut self) {
        let mut present: BTreeMap<String, NodeId> = BTreeMap::new();
        for n in self.graph.nodes() {
            if let BoxKind::Viewer { canvas, .. } = &n.kind {
                present.insert(canvas.clone(), n.id);
            }
        }
        let stale: Vec<String> =
            self.canvases.keys().filter(|k| !present.contains_key(*k)).cloned().collect();
        for name in stale {
            self.canvases.remove(&name);
            let _ = self.viewers.delete(&name);
            if self.focus.as_deref() == Some(&name) {
                self.focus = None;
            }
        }
        for (name, node) in present {
            let entry = self
                .canvases
                .entry(name.clone())
                .or_insert_with(|| Canvas::new(node, self.canvas_size.0, self.canvas_size.1));
            entry.node = node;
            if self.focus.is_none() {
                self.focus = Some(name);
            }
        }
    }

    // --------------------------------------------- program ops (Fig. 2)

    /// **New Program**: erase the program canvas.
    pub fn new_program(&mut self) {
        self.journal.checkpoint(&self.graph);
        self.graph = Graph::new();
        self.history.clear();
        // A fresh graph reuses node ids and revisions; memoized results
        // from the old graph must not be mistaken for the new one's.
        self.engine.invalidate_all();
        self.after_edit();
        self.journal_edit("new_program");
    }

    /// **Add Program**: add a named (saved) program to the canvas.
    pub fn add_program(&mut self, name: &str) -> Result<(), CoreError> {
        let other = self.env.load_program(name)?;
        self.journal.checkpoint(&self.graph);
        self.graph.add_program(&other);
        self.after_edit();
        self.journal_edit(&format!("add_program:{name}"));
        Ok(())
    }

    /// **Load Program**: shorthand for New Program followed by Add
    /// Program (paper Figure 2).
    pub fn load_program(&mut self, name: &str) -> Result<(), CoreError> {
        let other = self.env.load_program(name)?;
        self.journal.checkpoint(&self.graph);
        self.graph = Graph::new();
        self.history.clear();
        self.engine.invalidate_all();
        self.graph.add_program(&other);
        self.after_edit();
        self.journal_edit(&format!("load_program:{name}"));
        Ok(())
    }

    /// **Save Program** under a name in the environment.  Journaled as a
    /// config event: replaying it re-saves the then-current program, so
    /// the library round-trips through recovery.
    pub fn save_program(&mut self, name: &str) {
        let graph = self.graph.clone();
        self.env.save_program(name, &graph);
        self.journal_outer(SessionEvent::Config {
            key: "save_program".into(),
            value: name.to_string(),
        });
    }

    /// **Apply Box**: boxes whose inputs match the selected output edges.
    pub fn apply_box_candidates(
        &self,
        outputs: &[(NodeId, usize)],
    ) -> Result<Vec<BoxTemplate>, CoreError> {
        Ok(edit::apply_box_candidates(&self.graph, &self.env.registry, outputs)?
            .into_iter()
            .cloned()
            .collect())
    }

    /// Add a disconnected box.
    pub fn add_box(&mut self, kind: BoxKind) -> Result<NodeId, CoreError> {
        let op = format!("add_box:{}", kind.name());
        let id = self.edit(|g| Ok(g.add(kind)))?;
        self.journal_edit(&op);
        Ok(id)
    }

    /// Connect an output to an input (type-checked).
    pub fn connect(
        &mut self,
        from: NodeId,
        out_port: usize,
        to: NodeId,
        in_port: usize,
    ) -> Result<(), CoreError> {
        self.edit(|g| g.connect(from, out_port, to, in_port))?;
        self.journal_edit("connect");
        Ok(())
    }

    /// **Delete Box** under the paper's legality rules.
    pub fn delete_box(&mut self, id: NodeId) -> Result<(), CoreError> {
        self.edit(|g| edit::delete_box(g, id))?;
        self.journal_edit("delete_box");
        Ok(())
    }

    /// **Replace Box** by a different box with compatible types.
    pub fn replace_box(&mut self, id: NodeId, kind: BoxKind) -> Result<(), CoreError> {
        let op = format!("replace_box:{}", kind.name());
        self.edit(|g| g.replace_kind(id, kind))?;
        self.journal_edit(&op);
        Ok(())
    }

    /// Re-parameterize a box without changing its signature (editing a
    /// Restrict predicate in place).
    pub fn update_box(&mut self, id: NodeId, kind: BoxKind) -> Result<(), CoreError> {
        let op = format!("update_box:{}", kind.name());
        self.edit(|g| g.update_kind(id, kind))?;
        self.journal_edit(&op);
        Ok(())
    }

    /// **T**: insert a T node on the edge into `(to, in_port)`.
    pub fn add_tee(&mut self, to: NodeId, in_port: usize) -> Result<NodeId, CoreError> {
        let id = self.edit(|g| edit::insert_tee(g, to, in_port))?;
        self.journal_edit("add_tee");
        Ok(id)
    }

    /// **Encapsulate** a region (with optional holes) and register the
    /// definition as a reusable box.
    pub fn encapsulate(
        &mut self,
        region: &[NodeId],
        holes: &[Vec<NodeId>],
        name: &str,
    ) -> Result<Arc<EncapsulatedDef>, CoreError> {
        let def = Arc::new(encapsulate(&self.graph, region, holes, name)?);
        self.env.register_encapsulated(def.clone());
        Ok(def)
    }

    /// The undo button.
    pub fn undo(&mut self) -> bool {
        let span = self.op_span("session.undo", "");
        let did = self.journal.undo(&mut self.graph);
        if did {
            self.sync_canvases();
            self.journal_outer(SessionEvent::Undo);
        }
        self.recorder.span_end(span, &[("did", did as i64)]);
        did
    }

    pub fn redo(&mut self) -> bool {
        let span = self.op_span("session.redo", "");
        let did = self.journal.redo(&mut self.graph);
        if did {
            self.sync_canvases();
            self.journal_outer(SessionEvent::Redo);
        }
        self.recorder.span_end(span, &[("did", did as i64)]);
        did
    }

    // ------------------------------------------------- DB ops (Fig. 3)

    fn out_shape(&self, node: NodeId, port: usize) -> Result<PortType, CoreError> {
        let n = self.graph.node(node)?;
        let ty = n
            .out_types
            .get(port)
            .ok_or_else(|| CoreError::Session(format!("{node} has no output {port}")))?;
        if !ty.is_displayable() {
            return Err(CoreError::Session(format!(
                "output {port} of '{}' is not a displayable",
                n.name()
            )));
        }
        Ok(ty.clone())
    }

    fn append(&mut self, upstream: NodeId, kind: BoxKind) -> Result<NodeId, CoreError> {
        let op = format!("append:{}", kind.name());
        let id = self.edit(|g| {
            let id = g.add(kind);
            g.connect(upstream, 0, id, 0)?;
            Ok(id)
        })?;
        let id = self.validate_new(id)?;
        self.journal_edit(&op);
        Ok(id)
    }

    /// Evaluate every output of a freshly added box so bad parameters
    /// (e.g. a predicate naming a missing attribute) surface as an error
    /// of the *action*, with the program rolled back — "every result of a
    /// user action has a valid visual representation" (§1.2).
    fn validate_new(&mut self, id: NodeId) -> Result<NodeId, CoreError> {
        if !self.validate_edits {
            return Ok(id);
        }
        let ports = self.graph.node(id)?.out_types.len();
        for port in 0..ports {
            // Unconnected *inputs* elsewhere are fine; only this box must
            // evaluate.
            if let Err(e) = self.engine.demand(&self.graph, id, port) {
                self.journal.undo(&mut self.graph);
                self.journal.forget_future();
                self.sync_canvases();
                return Err(e.into());
            }
        }
        Ok(id)
    }

    /// **Add Table**: the zero-input box producing a relation's tuples.
    pub fn add_table(&mut self, table: &str) -> Result<NodeId, CoreError> {
        if !self.env.catalog.contains(table) {
            return Err(CoreError::Session(format!("no table '{table}' in the catalog")));
        }
        let id = self.edit(|g| Ok(g.add(BoxKind::Table(table.into()))))?;
        self.journal_edit(&format!("add_table:{table}"));
        Ok(id)
    }

    /// Apply a relation-level op after `upstream`, lifted through the
    /// component `sel` when the upstream displayable is a C or G (§2).
    pub fn apply_rel_op(
        &mut self,
        upstream: NodeId,
        op: RelOpKind,
        sel: Selection,
    ) -> Result<NodeId, CoreError> {
        let shape = self.out_shape(upstream, 0)?;
        self.append(upstream, BoxKind::RelOp { op, shape, sel })
    }

    /// **Restrict** with a predicate in surface syntax.
    pub fn restrict(&mut self, upstream: NodeId, predicate: &str) -> Result<NodeId, CoreError> {
        let pred = parse(predicate)?;
        self.apply_rel_op(upstream, RelOpKind::Restrict(pred), Selection::default())
    }

    /// **Project** to the named stored fields.
    pub fn project(&mut self, upstream: NodeId, fields: &[&str]) -> Result<NodeId, CoreError> {
        let cols = fields.iter().map(|s| s.to_string()).collect();
        self.apply_rel_op(upstream, RelOpKind::Project(cols), Selection::default())
    }

    /// **Sample** with retention probability `p`.
    pub fn sample(&mut self, upstream: NodeId, p: f64, seed: u64) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::Sample { p, seed }, Selection::default())
    }

    /// Sort by `(attribute, ascending)` keys.
    pub fn sort(&mut self, upstream: NodeId, keys: &[(&str, bool)]) -> Result<NodeId, CoreError> {
        let keys = keys.iter().map(|(k, a)| (k.to_string(), *a)).collect();
        self.apply_rel_op(upstream, RelOpKind::Sort(keys), Selection::default())
    }

    /// GROUP BY + aggregates, producing a fresh displayable relation
    /// (defaults re-applied to the grouped schema).
    pub fn aggregate(
        &mut self,
        upstream: NodeId,
        keys: &[&str],
        aggs: Vec<tioga2_relational::AggSpec>,
    ) -> Result<NodeId, CoreError> {
        let keys = keys.iter().map(|s| s.to_string()).collect();
        self.apply_rel_op(upstream, RelOpKind::Aggregate { keys, aggs }, Selection::default())
    }

    /// DISTINCT on the given attributes (all stored fields if empty).
    pub fn distinct(&mut self, upstream: NodeId, attrs: &[&str]) -> Result<NodeId, CoreError> {
        let attrs = attrs.iter().map(|s| s.to_string()).collect();
        self.apply_rel_op(upstream, RelOpKind::Distinct(attrs), Selection::default())
    }

    /// LIMIT/OFFSET in current tuple order.
    pub fn limit(
        &mut self,
        upstream: NodeId,
        offset: usize,
        count: usize,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::Limit { offset, count }, Selection::default())
    }

    /// Rename a stored field.
    pub fn rename_field(
        &mut self,
        upstream: NodeId,
        from: &str,
        to: &str,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(
            upstream,
            RelOpKind::Rename { from: from.into(), to: to.into() },
            Selection::default(),
        )
    }

    /// **Join** two relation outputs on a predicate over the combined
    /// naming (right-side collisions renamed `name` → `name_2`).
    pub fn join(
        &mut self,
        left: NodeId,
        right: NodeId,
        predicate: &str,
    ) -> Result<NodeId, CoreError> {
        let pred = parse(predicate)?;
        let id = self.edit(|g| {
            let id = g.add(BoxKind::Join(pred));
            g.connect(left, 0, id, 0)?;
            g.connect(right, 0, id, 1)?;
            Ok(id)
        })?;
        let id = self.validate_new(id)?;
        self.journal_edit("join");
        Ok(id)
    }

    /// Add a scalar constant box — a runtime parameter (§2).  Update it
    /// later with [`Session::set_const`] to twiddle the parameter.
    pub fn add_const(&mut self, value: tioga2_expr::Value) -> Result<NodeId, CoreError> {
        if matches!(value, tioga2_expr::Value::Drawable(_) | tioga2_expr::Value::DrawList(_)) {
            return Err(CoreError::Session("constants must be scalar values".into()));
        }
        let id = self.edit(|g| Ok(g.add(BoxKind::Const(value))))?;
        self.journal_edit("add_const");
        Ok(id)
    }

    /// Change a constant's value in place.  The type must stay the same
    /// (signature-preserving edit); only the consuming cone re-fires.
    pub fn set_const(&mut self, id: NodeId, value: tioga2_expr::Value) -> Result<(), CoreError> {
        self.edit(|g| g.update_kind(id, BoxKind::Const(value)))?;
        self.journal_edit("set_const");
        Ok(())
    }

    /// **Restrict** with named parameters fed by scalar boxes: the
    /// predicate may reference each `(name, source node)` pair as a free
    /// variable bound to that box's output.
    pub fn restrict_with_params(
        &mut self,
        upstream: NodeId,
        predicate: &str,
        params: &[(&str, NodeId)],
    ) -> Result<NodeId, CoreError> {
        let pred = parse(predicate)?;
        let shape = self.out_shape(upstream, 0)?;
        let mut sig = Vec::new();
        for (name, src) in params {
            let n = self.graph.node(*src)?;
            match n.out_types.first() {
                Some(PortType::Scalar(t)) => sig.push((name.to_string(), t.clone())),
                _ => {
                    return Err(CoreError::Session(format!(
                        "parameter '{name}' source is not a scalar box"
                    )))
                }
            }
        }
        let kind = BoxKind::ParamRestrict { pred, params: sig, shape, sel: Selection::default() };
        let params: Vec<(String, NodeId)> =
            params.iter().map(|(n, id)| (n.to_string(), *id)).collect();
        let id = self.edit(move |g| {
            let id = g.add(kind);
            g.connect(upstream, 0, id, 0)?;
            for (i, (_, src)) in params.iter().enumerate() {
                g.connect(*src, 0, id, i + 1)?;
            }
            Ok(id)
        })?;
        let id = self.validate_new(id)?;
        self.journal_edit("param_restrict");
        Ok(id)
    }

    /// **Switch**: route tuples satisfying the predicate to output 0 and
    /// the rest to output 1 (multi-output control flow, §1.2).
    pub fn switch(&mut self, upstream: NodeId, predicate: &str) -> Result<NodeId, CoreError> {
        let pred = parse(predicate)?;
        self.append(upstream, BoxKind::Switch(pred))
    }

    // ------------------------------------- attribute ops (Fig. 5)

    /// **Add Attribute** with a definition in surface syntax.
    pub fn add_attribute(
        &mut self,
        upstream: NodeId,
        name: &str,
        ty: ScalarType,
        def: &str,
        role: tioga2_display::attr_ops::AttrRole,
    ) -> Result<NodeId, CoreError> {
        let def = parse(def)?;
        self.apply_rel_op(
            upstream,
            RelOpKind::AddAttribute { name: name.into(), ty, def, role },
            Selection::default(),
        )
    }

    /// **Set Attribute**.
    pub fn set_attribute(
        &mut self,
        upstream: NodeId,
        name: &str,
        ty: ScalarType,
        def: &str,
    ) -> Result<NodeId, CoreError> {
        let def = parse(def)?;
        self.apply_rel_op(
            upstream,
            RelOpKind::SetAttribute { name: name.into(), ty, def },
            Selection::default(),
        )
    }

    /// **Remove Attribute**.
    pub fn remove_attribute(&mut self, upstream: NodeId, name: &str) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::RemoveAttribute(name.into()), Selection::default())
    }

    /// **Swap Attributes**.
    pub fn swap_attributes(
        &mut self,
        upstream: NodeId,
        a: &str,
        b: &str,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(
            upstream,
            RelOpKind::SwapAttributes(a.into(), b.into()),
            Selection::default(),
        )
    }

    /// **Scale Attribute**.
    pub fn scale_attribute(
        &mut self,
        upstream: NodeId,
        name: &str,
        k: f64,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::ScaleAttribute(name.into(), k), Selection::default())
    }

    /// **Translate Attribute**.
    pub fn translate_attribute(
        &mut self,
        upstream: NodeId,
        name: &str,
        c: f64,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(
            upstream,
            RelOpKind::TranslateAttribute(name.into(), c),
            Selection::default(),
        )
    }

    /// **Combine Displays** into a new display attribute.
    pub fn combine_displays(
        &mut self,
        upstream: NodeId,
        first: &str,
        second: &str,
        offset: (f64, f64),
        new_name: &str,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(
            upstream,
            RelOpKind::CombineDisplays {
                first: first.into(),
                second: second.into(),
                dx: offset.0,
                dy: offset.1,
                new_name: new_name.into(),
            },
            Selection::default(),
        )
    }

    /// Make an alternative display the active one.
    pub fn set_active_display(
        &mut self,
        upstream: NodeId,
        name: &str,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::SetActiveDisplay(name.into()), Selection::default())
    }

    // ----------------------------------------- drill down (Fig. 6, §7)

    /// **Set Range** of a layer's elevation visibility.
    pub fn set_range(
        &mut self,
        upstream: NodeId,
        min: f64,
        max: f64,
        sel: Selection,
    ) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::SetRange { min, max }, sel)
    }

    /// Rename a layer (elevation map caption).
    pub fn set_layer_name(&mut self, upstream: NodeId, name: &str) -> Result<NodeId, CoreError> {
        self.apply_rel_op(upstream, RelOpKind::SetLayerName(name.into()), Selection::default())
    }

    /// **Overlay** `top` onto `bottom` with an n-dimensional offset.
    /// `invariant` is the user's answer to the dimension-mismatch
    /// warning (§6.1).
    pub fn overlay(
        &mut self,
        bottom: NodeId,
        top: NodeId,
        offset: Vec<f64>,
        invariant: bool,
    ) -> Result<NodeId, CoreError> {
        let id = self.edit(|g| {
            let id = g.add(BoxKind::Overlay { offset, invariant });
            g.connect(bottom, 0, id, 0)?;
            g.connect(top, 0, id, 1)?;
            Ok(id)
        })?;
        let id = self.validate_new(id)?;
        self.journal_edit("overlay");
        Ok(id)
    }

    /// **Shuffle**: move a layer to the top of the drawing order.
    pub fn shuffle(
        &mut self,
        upstream: NodeId,
        layer: usize,
        sel: Selection,
    ) -> Result<NodeId, CoreError> {
        let shape = self.out_shape(upstream, 0)?;
        let shape = if shape == PortType::R { PortType::C } else { shape };
        self.append(upstream, BoxKind::CompOp { op: CompOpKind::Shuffle(layer), shape, sel })
    }

    /// **Stitch** composites into a group.
    pub fn stitch(&mut self, members: &[NodeId], layout: Layout) -> Result<NodeId, CoreError> {
        let members = members.to_vec();
        let id = self.edit(move |g| {
            let id = g.add(BoxKind::Stitch { arity: members.len(), layout });
            for (i, m) in members.iter().enumerate() {
                g.connect(*m, 0, id, i)?;
            }
            Ok(id)
        })?;
        let id = self.validate_new(id)?;
        self.journal_edit("stitch");
        Ok(id)
    }

    /// **Replicate** by partition specs (§7.4), lifted through `sel`.
    pub fn replicate(
        &mut self,
        upstream: NodeId,
        horizontal: PartitionSpec,
        vertical: Option<PartitionSpec>,
        sel: Selection,
    ) -> Result<NodeId, CoreError> {
        let shape = self.out_shape(upstream, 0)?;
        self.append(upstream, BoxKind::Replicate { horizontal, vertical, shape, sel })
    }

    // ------------------------------------------------ viewers & canvases

    /// Attach a viewer (and its canvas window) to `upstream`'s output.
    /// Viewers may be installed on any arc; this appends at the frontier.
    pub fn add_viewer(&mut self, upstream: NodeId, canvas: &str) -> Result<NodeId, CoreError> {
        if self.canvases.contains_key(canvas) {
            return Err(CoreError::Session(format!("canvas '{canvas}' already exists")));
        }
        let ty = self.out_shape(upstream, 0)?;
        let canvas_name = canvas.to_string();
        let id = self.edit(move |g| {
            let id = g.add(BoxKind::Viewer { canvas: canvas_name, ty });
            g.connect(upstream, 0, id, 0)?;
            Ok(id)
        })?;
        self.journal_edit(&format!("add_viewer:{canvas}"));
        Ok(id)
    }

    /// Install a viewer *on an existing edge* — the paper's debugging
    /// idiom ("it is easy to instrument a program", §10).
    pub fn add_viewer_on_edge(
        &mut self,
        to: NodeId,
        in_port: usize,
        canvas: &str,
    ) -> Result<NodeId, CoreError> {
        if self.canvases.contains_key(canvas) {
            return Err(CoreError::Session(format!("canvas '{canvas}' already exists")));
        }
        let node = self.graph.node(to)?;
        let Some(Some((src, src_port))) = node.inputs.get(in_port).copied() else {
            return Err(CoreError::Session(format!("no edge into input {in_port} of {to}")));
        };
        let ty = self.graph.node(src)?.out_types[src_port].clone();
        let canvas_name = canvas.to_string();
        let id = self.edit(move |g| {
            edit::insert_on_edge(g, to, in_port, BoxKind::Viewer { canvas: canvas_name, ty })
        })?;
        self.journal_edit(&format!("add_viewer:{canvas}"));
        Ok(id)
    }

    pub fn canvas_names(&self) -> Vec<String> {
        self.canvases.keys().cloned().collect()
    }

    pub fn focus(&self) -> Option<&str> {
        self.focus.as_deref()
    }

    pub fn set_focus(&mut self, canvas: &str) -> Result<(), CoreError> {
        if !self.canvases.contains_key(canvas) {
            return Err(CoreError::Session(format!("no canvas '{canvas}'")));
        }
        self.focus = Some(canvas.to_string());
        self.journal_outer(SessionEvent::Config { key: "focus".into(), value: canvas.to_string() });
        Ok(())
    }

    fn canvas_node(&self, canvas: &str) -> Result<NodeId, CoreError> {
        self.canvases
            .get(canvas)
            .map(|c| c.node)
            .ok_or_else(|| CoreError::Session(format!("no canvas '{canvas}'")))
    }

    /// The displayable a canvas currently shows (demanding evaluation).
    pub fn displayable(&mut self, canvas: &str) -> Result<Displayable, CoreError> {
        let node = self.canvas_node(canvas)?;
        Ok(self.engine.demand_displayable(&self.graph, node, 0)?)
    }

    /// Demand any node output directly (inspection of partial results).
    /// Runs through the plan layer, so the demand's outcome (status,
    /// rows, wall time) lands in the session event journal.
    pub fn demand(&mut self, node: NodeId, port: usize) -> Result<Displayable, CoreError> {
        self.arm_demand();
        Ok(self.engine.demand_displayable_planned(&self.graph, node, port)?)
    }

    /// Explain the streaming plan for a node's output: the lowered chain,
    /// the rewrite rules that fire, and the optimized form.
    pub fn explain(&mut self, node: NodeId, port: usize) -> Result<String, CoreError> {
        Ok(self.engine.explain(&self.graph, node, port)?)
    }

    // --------------------------------------------- observability (§9)

    /// `EXPLAIN ANALYZE`: execute the demand with per-operator
    /// attribution forced on and render the annotated trace tree.  When
    /// the node is a fitted canvas viewer, the same window predicate the
    /// renderer pushes down is applied, so the trace shows exactly what a
    /// render of that canvas executes.
    pub fn explain_analyze(&mut self, node: NodeId, port: usize) -> Result<String, CoreError> {
        self.arm_demand();
        let window = self.window_pred_for(node, port)?;
        match self.engine.demand_analyzed(&self.graph, node, port, true, window.as_ref()) {
            Ok((_, Some(t))) => Ok(t.render()),
            Ok((_, None)) => {
                Ok(format!("{node}.{port}: single box, no relational chain to attribute\n"))
            }
            Err(e) => {
                // An aborted demand still leaves a trace in the ring —
                // render it so the partial attribution is not lost.
                if let Some(t) = self.engine.last_trace_for(node, port) {
                    if t.is_aborted() {
                        return Ok(format!("{}error: {e}\n", t.render()));
                    }
                }
                Err(e.into())
            }
        }
    }

    /// The window predicate a render of this output would push down, if
    /// the node is a fitted canvas viewer in lazy mode.
    fn window_pred_for(
        &mut self,
        node: NodeId,
        port: usize,
    ) -> Result<Option<tioga2_expr::Expr>, CoreError> {
        if port != 0 || self.mode != EvalMode::Lazy {
            return Ok(None);
        }
        let canvas = self
            .canvases
            .iter()
            .find(|(_, c)| c.node == node && c.fitted)
            .map(|(name, _)| name.clone());
        let Some(canvas) = canvas else { return Ok(None) };
        let Some(hdr) = self.engine.plan_root_header(&self.graph, node, 0)? else {
            return Ok(None);
        };
        Ok(self.viewers.get(&canvas).ok().and_then(|v| tioga2_viewer::window_predicate(v, &hdr)))
    }

    /// The engine's ring of recently traced demands (newest last).
    pub fn demand_traces(&self) -> &std::collections::VecDeque<tioga2_obs::DemandTrace> {
        self.engine.demand_traces()
    }

    /// Names of the self-hosted introspection tables maintained by
    /// [`Session::refresh_sys_tables`].
    pub const SYS_TABLES: [&'static str; 5] =
        ["sys.counters", "sys.histograms", "sys.demands", "sys.events", "sys.slow"];

    /// Publish the session's own instrumentation as ordinary catalog
    /// tables — the engine monitoring itself with its own machinery.
    ///
    /// * `sys.counters(name, value)` — every recorder counter.
    /// * `sys.histograms(name, count, p50_ns, p95_ns, p99_ns, mean_ns,
    ///   max_ns)` — every recorder histogram.
    /// * `sys.demands(demand_id, node, depth, rows_in, rows_out, ns,
    ///   cache, provenance, par_workers, status)` — one tuple per
    ///   operator of every trace in the demand ring, in preorder;
    ///   `status` is `ok` or the abort class of the whole demand.
    /// * `sys.slow(request, demand, tenant, session, label, status,
    ///   wall_ms, threshold_ms, ops, folded)` — one tuple per captured
    ///   slow demand (see `:slowlog`), so an ordinary box chain can
    ///   render the engine's own slow-query dashboard.
    ///
    /// The tables are snapshots: re-run to refresh.  Because base-table
    /// contents changed outside the structural signature, all memoized
    /// results are invalidated, exactly as a §8 update would.
    pub fn refresh_sys_tables(&mut self) -> Result<Vec<String>, CoreError> {
        use tioga2_expr::{ScalarType as T, Value};
        use tioga2_relational::relation::RelationBuilder;

        let mut counters = RelationBuilder::new().field("name", T::Text).field("value", T::Int);
        for (name, v) in self.recorder.counters_snapshot() {
            counters = counters.row(vec![Value::Text(name), Value::Int(v as i64)]);
        }
        // Trace-ring and journal gauges, surfaced alongside the recorder
        // counters even when the no-op recorder is installed.
        for (name, v) in [
            ("demand.trace_ring.size".to_string(), self.engine.trace_ring() as i64),
            ("demand.trace_ring.dropped".to_string(), self.engine.traces_dropped() as i64),
            ("journal.events".to_string(), self.events.len() as i64),
            ("journal.dropped".to_string(), self.events.dropped() as i64),
        ] {
            counters = counters.row(vec![Value::Text(name), Value::Int(v)]);
        }
        self.env.catalog.register("sys.counters", counters.build()?);

        let mut hists = RelationBuilder::new()
            .field("name", T::Text)
            .field("count", T::Int)
            .field("p50_ns", T::Int)
            .field("p95_ns", T::Int)
            .field("p99_ns", T::Int)
            .field("mean_ns", T::Float)
            .field("max_ns", T::Int);
        for (name, h) in self.recorder.histograms_snapshot() {
            hists = hists.row(vec![
                Value::Text(name),
                Value::Int(h.count() as i64),
                Value::Int(h.p50() as i64),
                Value::Int(h.p95() as i64),
                Value::Int(h.p99() as i64),
                Value::Float(h.mean()),
                Value::Int(h.max() as i64),
            ]);
        }
        self.env.catalog.register("sys.histograms", hists.build()?);

        let mut demands = RelationBuilder::new()
            .field("demand_id", T::Int)
            .field("node", T::Text)
            .field("depth", T::Int)
            .field("rows_in", T::Int)
            .field("rows_out", T::Int)
            .field("ns", T::Int)
            .field("cache", T::Text)
            .field("provenance", T::Text)
            .field("par_workers", T::Int)
            .field("status", T::Text);
        fn walk(
            b: tioga2_relational::relation::RelationBuilder,
            id: u64,
            depth: i64,
            status: &str,
            n: &tioga2_obs::OpNode,
        ) -> tioga2_relational::relation::RelationBuilder {
            use tioga2_expr::Value;
            let mut b = b.row(vec![
                Value::Int(id as i64),
                Value::Text(n.op.clone()),
                Value::Int(depth),
                Value::Int(n.rows_in as i64),
                Value::Int(n.rows_out as i64),
                Value::Int(n.effective_ns() as i64),
                Value::Text(n.cache.label().to_string()),
                Value::Text(n.provenance.clone()),
                Value::Int(n.par_workers as i64),
                Value::Text(status.to_string()),
            ]);
            for child in &n.children {
                b = walk(b, id, depth + 1, status, child);
            }
            b
        }
        for t in self.engine.demand_traces() {
            demands = walk(demands, t.demand_id, 0, &t.status, &t.root);
        }
        self.env.catalog.register("sys.demands", demands.build()?);

        // sys.events: the session journal as an ordinary relation, so an
        // ordinary box chain can query the session's own history.
        let mut events = RelationBuilder::new()
            .field("seq", T::Int)
            .field("kind", T::Text)
            .field("label", T::Text)
            .field("status", T::Text)
            .field("rows", T::Int)
            .field("ns", T::Int)
            .field("detail", T::Text);
        for (seq, ev) in self.events.events() {
            let (label, status, rows, ns, detail) = match &ev {
                SessionEvent::Edit { op, .. } => (op.clone(), String::new(), 0, 0, String::new()),
                SessionEvent::Undo | SessionEvent::Redo => {
                    (ev.kind().to_string(), String::new(), 0, 0, String::new())
                }
                SessionEvent::Gesture { gesture, canvas, args } => {
                    (gesture.clone(), String::new(), 0, 0, format!("{canvas} {}", args.join(" ")))
                }
                SessionEvent::Render { canvas } => {
                    (canvas.clone(), String::new(), 0, 0, String::new())
                }
                SessionEvent::Update { table, row_id, changes } => {
                    (table.clone(), String::new(), changes.len() as i64, 0, format!("row {row_id}"))
                }
                SessionEvent::Config { key, value } => {
                    (key.clone(), String::new(), 0, 0, value.clone())
                }
                SessionEvent::Demand { label, status, rows_out, wall_ns, detail, .. } => (
                    label.clone(),
                    status.clone(),
                    *rows_out as i64,
                    *wall_ns as i64,
                    detail.clone(),
                ),
                SessionEvent::CacheInvalidation { scope, entries } => {
                    (scope.clone(), String::new(), *entries as i64, 0, String::new())
                }
                SessionEvent::Snapshot(s) => (
                    "snapshot".to_string(),
                    String::new(),
                    s.tables.len() as i64,
                    0,
                    format!("{} undo levels", s.undo_past.len()),
                ),
            };
            events = events.row(vec![
                Value::Int(seq as i64),
                Value::Text(ev.kind().to_string()),
                Value::Text(label),
                Value::Text(status),
                Value::Int(rows),
                Value::Int(ns),
                Value::Text(detail),
            ]);
        }
        self.env.catalog.register("sys.events", events.build()?);

        // sys.slow: the slow-demand ring as a relation — request id
        // first, because correlating wire frame -> slow trace is the
        // point of the table.
        let mut slow = RelationBuilder::new()
            .field("request", T::Int)
            .field("demand", T::Int)
            .field("tenant", T::Text)
            .field("session", T::Text)
            .field("label", T::Text)
            .field("status", T::Text)
            .field("wall_ms", T::Float)
            .field("threshold_ms", T::Float)
            .field("ops", T::Int)
            .field("folded", T::Text);
        for e in self.slowlog.entries() {
            slow = slow.row(vec![
                Value::Int(e.trace.request_id as i64),
                Value::Int(e.trace.demand_id as i64),
                Value::Text(e.tenant),
                Value::Text(e.session),
                Value::Text(e.trace.label.clone()),
                Value::Text(e.trace.status.clone()),
                Value::Float(e.trace.total_ns as f64 / 1e6),
                Value::Float(e.threshold_ns as f64 / 1e6),
                Value::Int(e.trace.root.node_count() as i64),
                Value::Text(e.folded),
            ]);
        }
        self.env.catalog.register("sys.slow", slow.build()?);

        // Catalog contents changed outside the structural signature — but
        // only for the sys.* relations, so only plans that read them are
        // evicted; everything else stays memoized across a refresh.
        let sys: Vec<String> = Self::SYS_TABLES.iter().map(|s| s.to_string()).collect();
        self.engine.invalidate_reading(&self.graph, &sys);
        Ok(sys)
    }

    /// Render a canvas window.
    pub fn render(&mut self, canvas: &str) -> Result<CanvasFrame, CoreError> {
        let span = self.op_span("session.render", canvas);
        let result = self.render_inner(canvas);
        self.recorder.span_end(span, &[("ok", result.is_ok() as i64)]);
        if result.is_ok() {
            // A render fits the viewer on first contact, so replay must
            // re-render to reproduce view state.
            self.journal_outer(SessionEvent::Render { canvas: canvas.to_string() });
        }
        result
    }

    fn render_inner(&mut self, canvas: &str) -> Result<CanvasFrame, CoreError> {
        self.arm_demand();
        let content = self.windowed_displayable(canvas)?;
        let c = self
            .canvases
            .get_mut(canvas)
            .ok_or_else(|| CoreError::Session(format!("no canvas '{canvas}'")))?;
        c.render_recorded(canvas, &content, &mut self.viewers, self.recorder.as_ref())
    }

    /// The canvas content with the viewer's window (visible bounds +
    /// slider ranges) pushed into the demanded plan, when that is sound:
    /// lazy mode, an already-fitted canvas, a planned relational chain,
    /// and a position-independent layout.  Falls back to the ordinary
    /// memoized demand otherwise — the composed scene is identical either
    /// way, the pushdown only avoids materializing off-screen tuples.
    fn windowed_displayable(&mut self, canvas: &str) -> Result<Displayable, CoreError> {
        let node = self.canvas_node(canvas)?;
        let fitted = self.canvases.get(canvas).is_some_and(|c| c.fitted);
        if self.mode == EvalMode::Lazy && fitted {
            if let Some(hdr) = self.engine.plan_root_header(&self.graph, node, 0)? {
                let pred = self
                    .viewers
                    .get(canvas)
                    .ok()
                    .and_then(|v| tioga2_viewer::window_predicate(v, &hdr));
                if let Some(pred) = pred {
                    return Ok(self
                        .engine
                        .demand_planned_opts(&self.graph, node, 0, true, Some(&pred))?
                        .into_displayable()
                        .map_err(FlowError::from)?);
                }
            }
        }
        self.displayable(canvas)
    }

    fn ensure_fitted(&mut self, canvas: &str) -> Result<(), CoreError> {
        let fitted = self
            .canvases
            .get(canvas)
            .ok_or_else(|| CoreError::Session(format!("no canvas '{canvas}'")))?
            .fitted;
        if !fitted {
            self.render(canvas)?;
        }
        Ok(())
    }

    // -------------------------------------------------- gestures (§3, §6)

    /// Pan a canvas by screen pixels (slaved canvases follow).
    pub fn pan(&mut self, canvas: &str, dx: i32, dy: i32) -> Result<(), CoreError> {
        let span = self.op_span("session.pan", canvas);
        self.op_depth += 1;
        let result = (|| {
            self.ensure_fitted(canvas)?;
            Ok(self.viewers.pan_px(canvas, dx, dy)?)
        })();
        self.op_depth -= 1;
        self.recorder.span_end(span, &[("ok", result.is_ok() as i64)]);
        if result.is_ok() {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "pan".into(),
                canvas: canvas.to_string(),
                args: vec![dx.to_string(), dy.to_string()],
            });
        }
        result
    }

    /// Zoom a canvas.  Returns the destination canvas if the elevation
    /// bottomed out over a wormhole and the user passed through (§6.2).
    pub fn zoom(&mut self, canvas: &str, factor: f64) -> Result<Option<String>, CoreError> {
        let span = self.op_span("session.zoom", canvas);
        self.op_depth += 1;
        let result = self.zoom_inner(canvas, factor);
        self.op_depth -= 1;
        self.recorder.span_end(
            span,
            &[("ok", result.is_ok() as i64), ("traversed", matches!(result, Ok(Some(_))) as i64)],
        );
        if result.is_ok() {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "zoom".into(),
                canvas: canvas.to_string(),
                args: vec![format!("{factor:?}")],
            });
        }
        result
    }

    fn zoom_inner(&mut self, canvas: &str, factor: f64) -> Result<Option<String>, CoreError> {
        self.ensure_fitted(canvas)?;
        self.viewers.zoom(canvas, factor)?;
        let elevation = self.viewers.get(canvas)?.position.elevation;
        if elevation <= PASS_THROUGH_ELEVATION {
            if let Some(spec) = self.wormhole_under_center(canvas)? {
                self.traverse(canvas, &spec)?;
                return Ok(Some(spec.destination));
            }
            self.viewers.get_mut(canvas)?.position.elevation = PASS_THROUGH_ELEVATION;
        }
        Ok(None)
    }

    /// Move a canvas slider (§3).
    pub fn set_slider(
        &mut self,
        canvas: &str,
        dim: &str,
        lo: f64,
        hi: f64,
    ) -> Result<(), CoreError> {
        self.op_depth += 1;
        let result = (|| {
            self.ensure_fitted(canvas)?;
            Ok(self.viewers.get_mut(canvas)?.set_slider(dim, lo, hi)?)
        })();
        self.op_depth -= 1;
        if result.is_ok() {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "set_slider".into(),
                canvas: canvas.to_string(),
                args: vec![dim.to_string(), format!("{lo:?}"), format!("{hi:?}")],
            });
        }
        result
    }

    /// Slave two canvases together (§7.1).
    pub fn slave(&mut self, a: &str, b: &str) -> Result<(), CoreError> {
        self.op_depth += 1;
        let result = (|| {
            self.ensure_fitted(a)?;
            self.ensure_fitted(b)?;
            Ok(self.viewers.slave(a, b)?)
        })();
        self.op_depth -= 1;
        if result.is_ok() {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "slave".into(),
                canvas: a.to_string(),
                args: vec![b.to_string()],
            });
        }
        result
    }

    pub fn unslave(&mut self, a: &str, b: &str) -> Result<(), CoreError> {
        self.viewers.unslave(a, b)?;
        self.journal_outer(SessionEvent::Gesture {
            gesture: "unslave".into(),
            canvas: a.to_string(),
            args: vec![b.to_string()],
        });
        Ok(())
    }

    /// Attach a magnifying glass to a canvas (§7.2).
    pub fn add_magnifier(&mut self, canvas: &str, m: Magnifier) -> Result<usize, CoreError> {
        let c = self
            .canvases
            .get_mut(canvas)
            .ok_or_else(|| CoreError::Session(format!("no canvas '{canvas}'")))?;
        c.magnifiers.push(m.clone());
        let idx = c.magnifiers.len() - 1;
        self.journal_outer(SessionEvent::Gesture {
            gesture: "add_magnifier".into(),
            canvas: canvas.to_string(),
            args: vec![
                m.rect_px.0.to_string(),
                m.rect_px.1.to_string(),
                m.rect_px.2.to_string(),
                m.rect_px.3.to_string(),
                format!("{:?}", m.zoom),
                (m.slaved as u8).to_string(),
                format!("{:?}", m.center.0),
                format!("{:?}", m.center.1),
                m.display_attr.clone().unwrap_or_default(),
            ],
        });
        Ok(idx)
    }

    pub fn remove_magnifier(&mut self, canvas: &str, idx: usize) -> Result<(), CoreError> {
        let c = self
            .canvases
            .get_mut(canvas)
            .ok_or_else(|| CoreError::Session(format!("no canvas '{canvas}'")))?;
        if idx >= c.magnifiers.len() {
            return Err(CoreError::Session(format!("no magnifier {idx} on '{canvas}'")));
        }
        c.magnifiers.remove(idx);
        self.journal_outer(SessionEvent::Gesture {
            gesture: "remove_magnifier".into(),
            canvas: canvas.to_string(),
            args: vec![idx.to_string()],
        });
        Ok(())
    }

    /// The group window behind a canvas showing a `G`, after a render.
    pub fn group_window_mut(
        &mut self,
        canvas: &str,
    ) -> Result<&mut tioga2_viewer::group::GroupWindow, CoreError> {
        self.canvases
            .get_mut(canvas)
            .ok_or_else(|| CoreError::Session(format!("no canvas '{canvas}'")))?
            .group
            .as_mut()
            .ok_or_else(|| CoreError::Session(format!("canvas '{canvas}' is not showing a group")))
    }

    // -------------------------------------------- wormholes & rear view

    fn composite_of(&mut self, canvas: &str) -> Result<tioga2_display::Composite, CoreError> {
        Ok(self.displayable(canvas)?.into_composite()?)
    }

    /// The wormhole under the screen center of a canvas, if any.
    pub fn wormhole_under_center(&mut self, canvas: &str) -> Result<Option<ViewerSpec>, CoreError> {
        self.ensure_fitted(canvas)?;
        let composite = self.composite_of(canvas)?;
        let viewer = self.viewers.get(canvas)?;
        let scene = viewer.scene(&composite)?;
        let vp = viewer.viewport();
        let (cx, cy) = (vp.width_px as i32 / 2, vp.height_px as i32 / 2);
        for item in scene.items.iter().rev() {
            if let Shape::Viewer(spec) = &item.drawable.shape {
                let bbox = tioga2_render::scene::item_screen_bbox(item, &vp);
                if cx >= bbox.0 && cx <= bbox.2 && cy >= bbox.1 && cy <= bbox.3 {
                    return Ok(Some(spec.clone()));
                }
            }
        }
        Ok(None)
    }

    /// Pass through a wormhole from `canvas` (§6.2).  The destination
    /// canvas must exist (i.e. the program has a viewer of that name).
    pub fn traverse(&mut self, canvas: &str, spec: &ViewerSpec) -> Result<(), CoreError> {
        if !self.canvases.contains_key(&spec.destination) {
            return Err(CoreError::Session(format!(
                "wormhole destination '{}' is not a canvas of this program",
                spec.destination
            )));
        }
        self.op_depth += 1;
        let result = (|| {
            self.ensure_fitted(canvas)?;
            self.ensure_fitted(&spec.destination)?;
            let from = self.viewers.get(canvas)?.position.clone();
            self.history.push(Travel {
                canvas: canvas.to_string(),
                center: from.center,
                elevation: from.elevation.max(PASS_THROUGH_ELEVATION),
                entry_elevation: spec.elevation,
            });
            let v = self.viewers.get_mut(&spec.destination)?;
            v.position.center = spec.at;
            v.position.elevation = spec.elevation.max(PASS_THROUGH_ELEVATION);
            self.focus = Some(spec.destination.clone());
            Ok(())
        })();
        self.op_depth -= 1;
        if result.is_ok() {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "traverse".into(),
                canvas: canvas.to_string(),
                args: vec![
                    spec.destination.clone(),
                    format!("{:?}", spec.at.0),
                    format!("{:?}", spec.at.1),
                    format!("{:?}", spec.elevation),
                    format!("{:?}", spec.size.0),
                    format!("{:?}", spec.size.1),
                ],
            });
        }
        result
    }

    /// Rear-view elevation for the canvas the user last left (§6.3):
    /// zero at the moment of passage, increasingly negative as the user
    /// descends on the current canvas.
    pub fn rear_view_elevation(&self) -> Option<f64> {
        let last = self.history.last()?;
        let cur = self
            .focus
            .as_ref()
            .and_then(|f| self.viewers.get(f).ok())
            .map(|v| v.position.elevation)?;
        Some((cur - last.entry_elevation).min(0.0))
    }

    /// Render the rear view mirror: the underside of the previous canvas.
    pub fn render_rear_view(
        &mut self,
        width: u32,
        height: u32,
    ) -> Result<Option<(tioga2_render::Framebuffer, tioga2_render::Scene)>, CoreError> {
        let Some(last) = self.history.last().cloned() else { return Ok(None) };
        let rear = self.rear_view_elevation().unwrap_or(0.0).min(-PASS_THROUGH_ELEVATION);
        let composite = self.composite_of(&last.canvas)?;
        // The mirror's extent grows with the distance descended from the
        // departed canvas (see §6.3: "he increases the distance from the
        // previous canvas").
        let extent = rear.abs().max(last.elevation);
        let vp = tioga2_render::Viewport::new(last.center, extent, width, height);
        let scene = tioga2_viewer::render_pass::compose_scene(
            &composite,
            rear,
            &[],
            vp.world_bounds(),
            Default::default(),
        )?;
        let mut fb = tioga2_render::Framebuffer::new(width, height);
        let _ = tioga2_render::render_scene(&scene, &vp, &mut fb);
        Ok(Some((fb, scene)))
    }

    /// "Find your way home" (§6.3): pop the travel stack.
    pub fn go_back(&mut self) -> Result<String, CoreError> {
        self.op_depth += 1;
        let result = (|| {
            let last = self
                .history
                .pop()
                .ok_or_else(|| CoreError::Session("no canvas to go back to".into()))?;
            self.ensure_fitted(&last.canvas)?;
            let v = self.viewers.get_mut(&last.canvas)?;
            v.position.center = last.center;
            v.position.elevation = last.elevation;
            self.focus = Some(last.canvas.clone());
            Ok(last.canvas)
        })();
        self.op_depth -= 1;
        if let Ok(canvas) = &result {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "go_back".into(),
                canvas: canvas.clone(),
                args: Vec::new(),
            });
        }
        result
    }

    pub fn travel_depth(&self) -> usize {
        self.history.len()
    }

    // ------------------------------------------- elevation map (§6.1)

    /// The elevation map of a canvas at its current elevation.  For a
    /// group canvas this is the map of the member under the cycling
    /// cursor (§6.1).
    pub fn elevation_map(&mut self, canvas: &str) -> Result<Vec<ElevationBar>, CoreError> {
        // Group canvases: per-member maps through the cursor.
        let is_group = matches!(self.displayable(canvas)?, Displayable::G(_));
        if is_group {
            self.render(canvas)?;
            return Ok(self.group_window_mut(canvas)?.current_elevation_map()?);
        }
        self.ensure_fitted(canvas)?;
        let composite = self.composite_of(canvas)?;
        let elevation = self.viewers.get(canvas)?.position.elevation;
        Ok(elevation_map(&composite, elevation))
    }

    /// Cycle a group canvas's elevation map to its next member.
    pub fn cycle_elevation_map(&mut self, canvas: &str) -> Result<usize, CoreError> {
        self.op_depth += 1;
        let result = (|| {
            self.render(canvas)?;
            Ok(self.group_window_mut(canvas)?.cycle_elevation_map())
        })();
        self.op_depth -= 1;
        if result.is_ok() {
            self.journal_outer(SessionEvent::Gesture {
                gesture: "cycle_map".into(),
                canvas: canvas.to_string(),
                args: Vec::new(),
            });
        }
        result
    }

    /// Clone a canvas: a second viewer box on the same edge with the same
    /// position (one of the viewer features inherited from the original
    /// Tioga design, §1.1).
    pub fn clone_canvas(&mut self, src: &str, new_name: &str) -> Result<NodeId, CoreError> {
        if self.canvases.contains_key(new_name) {
            return Err(CoreError::Session(format!("canvas '{new_name}' already exists")));
        }
        let node = self.canvas_node(src)?;
        let (from, port, ty) = {
            let n = self.graph.node(node)?;
            let Some(Some((from, port))) = n.inputs.first().copied() else {
                return Err(CoreError::Session(format!("canvas '{src}' has no input edge")));
            };
            (from, port, self.graph.node(from)?.out_types[port].clone())
        };
        let canvas_name = new_name.to_string();
        let id = self.edit(move |g| {
            let v = g.add(BoxKind::Viewer { canvas: canvas_name, ty });
            g.connect(from, port, v, 0)?;
            Ok(v)
        })?;
        self.journal_edit(&format!("clone_canvas:{new_name}"));
        // Copy the viewer position if the source has been rendered.
        if let Ok(srcv) = self.viewers.get(src) {
            let pos = srcv.position.clone();
            let size = srcv.size;
            let mut v = tioga2_viewer::Viewer::new(new_name, size.0, size.1);
            v.position = pos;
            self.viewers.insert(v);
            if let Some(c) = self.canvases.get_mut(new_name) {
                c.fitted = true;
            }
            // The position copy is view-layer state the Edit replay does
            // not reproduce; journal it as its own gesture.
            self.journal_outer(SessionEvent::Gesture {
                gesture: "clone_view".into(),
                canvas: new_name.to_string(),
                args: vec![src.to_string()],
            });
        }
        Ok(id)
    }

    /// Direct manipulation of an elevation-map bar: dragging a layer's
    /// range endpoints *edits the program* — a Set Range box is spliced
    /// into the edge feeding the canvas's viewer.
    pub fn set_range_via_map(
        &mut self,
        canvas: &str,
        layer: usize,
        min: f64,
        max: f64,
    ) -> Result<NodeId, CoreError> {
        let node = self.canvas_node(canvas)?;
        let src_ty = {
            let n = self.graph.node(node)?;
            let Some(Some((src, port))) = n.inputs.first().copied() else {
                return Err(CoreError::Session(format!("canvas '{canvas}' has no input edge")));
            };
            self.graph.node(src)?.out_types[port].clone()
        };
        let kind = BoxKind::RelOp {
            op: RelOpKind::SetRange { min, max },
            shape: src_ty,
            sel: Selection::layer(layer),
        };
        let id = self.edit(|g| edit::insert_on_edge(g, node, 0, kind))?;
        self.journal_edit("set_range_via_map");
        Ok(id)
    }

    /// Elevation-map drawing-order manipulation: splice a Reorder box
    /// into the canvas's edge.
    pub fn reorder_via_map(
        &mut self,
        canvas: &str,
        from: usize,
        to: usize,
    ) -> Result<NodeId, CoreError> {
        let node = self.canvas_node(canvas)?;
        let src_ty = {
            let n = self.graph.node(node)?;
            let Some(Some((src, port))) = n.inputs.first().copied() else {
                return Err(CoreError::Session(format!("canvas '{canvas}' has no input edge")));
            };
            self.graph.node(src)?.out_types[port].clone()
        };
        let shape = if src_ty == PortType::R { PortType::C } else { src_ty };
        let kind = BoxKind::CompOp {
            op: CompOpKind::Reorder { from, to },
            shape,
            sel: Selection::default(),
        };
        let id = self.edit(|g| edit::insert_on_edge(g, node, 0, kind))?;
        self.journal_edit("reorder_via_map");
        Ok(id)
    }

    // --------------------------------------------------- update (§8)

    /// Click a canvas: the topmost screen object under the pixel.
    pub fn click(&mut self, canvas: &str, x: i32, y: i32) -> Result<Option<HitRecord>, CoreError> {
        let frame = self.render(canvas)?;
        Ok(frame.hits.top_hit(x, y).cloned())
    }

    /// Click inside one member of a group canvas (member-local pixel
    /// coordinates).
    pub fn click_member(
        &mut self,
        canvas: &str,
        member: usize,
        x: i32,
        y: i32,
    ) -> Result<Option<HitRecord>, CoreError> {
        let frame = self.render(canvas)?;
        let hits = frame.member_hits.get(member).ok_or_else(|| {
            CoreError::Session(format!("canvas '{canvas}' has no group member {member}"))
        })?;
        Ok(hits.top_hit(x, y).cloned())
    }

    /// §8 update through a group member's canvas.
    pub fn begin_update_member(
        &mut self,
        canvas: &str,
        member: usize,
        x: i32,
        y: i32,
    ) -> Result<crate::update::UpdateDialog, CoreError> {
        let hit = self
            .click_member(canvas, member, x, y)?
            .ok_or_else(|| CoreError::Update("no screen object at that position".into()))?;
        crate::update::UpdateDialog::for_hit(self, &hit)
    }

    /// Click a screen object and open the generic update dialog for its
    /// tuple (§8).
    pub fn begin_update(
        &mut self,
        canvas: &str,
        x: i32,
        y: i32,
    ) -> Result<crate::update::UpdateDialog, CoreError> {
        let hit = self
            .click(canvas, x, y)?
            .ok_or_else(|| CoreError::Update("no screen object at that position".into()))?;
        crate::update::UpdateDialog::for_hit(self, &hit)
    }

    /// Install committed changes (called by `UpdateDialog::commit`).
    pub(crate) fn install_update(
        &mut self,
        table: &str,
        row_id: u64,
        changes: &[tioga2_relational::update::FieldChange],
    ) -> Result<(), CoreError> {
        // Base data changed outside the structural signature — but the
        // edit is *local*: capture it as a tuple delta and propagate it
        // through the cached plans.  Entries a delta rule covers are
        // patched in place; the rest fall back to selective eviction of
        // the edited table's demand cone, so cached plans over unrelated
        // tables keep hitting.  `invalidate_all` is never reached from
        // here.
        let delta = tioga2_relational::update::install_update_delta(
            &self.env.catalog,
            table,
            row_id,
            changes,
        )?;
        self.engine.apply_delta(&self.graph, &delta);
        let mut enc = Vec::with_capacity(changes.len());
        for c in changes {
            enc.push((c.field.clone(), rel_persist::encode_value(&c.value)?));
        }
        self.journal_outer(SessionEvent::Update { table: table.to_string(), row_id, changes: enc });
        Ok(())
    }
}
