//! The durable environment: catalog, box registry, saved programs, and
//! per-type update functions.

use crate::error::CoreError;
use std::collections::BTreeMap;
use std::sync::Arc;
use tioga2_dataflow::{persist, BoxRegistry, CustomBox, EncapsulatedDef, Graph};
use tioga2_expr::{timestamp_from_parts, ScalarType, Value};
use tioga2_relational::Catalog;

/// A per-type (or per-field) update parser: dialog text → typed value
/// (paper §8: "we require the type definer to write a second update
/// function that enables Tioga-2 to provide updates for instances of the
/// type").
pub type UpdateFn = Arc<dyn Fn(&str) -> Result<Value, String> + Send + Sync>;

/// Parse `YYYY-MM-DD[ HH:MM]` into a timestamp.
fn parse_timestamp_text(s: &str) -> Result<Value, String> {
    let s = s.trim();
    let (date, time) = match s.split_once(' ') {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let mut dp = date.split('-');
    let y: i64 = dp.next().and_then(|x| x.parse().ok()).ok_or("bad year")?;
    let mo: u32 = dp.next().and_then(|x| x.parse().ok()).ok_or("bad month")?;
    let d: u32 = dp.next().and_then(|x| x.parse().ok()).ok_or("bad day")?;
    if dp.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
        return Err(format!("bad date '{date}'"));
    }
    let (h, mi) = match time {
        None => (0, 0),
        Some(t) => {
            let mut tp = t.split(':');
            let h: u32 = tp.next().and_then(|x| x.parse().ok()).ok_or("bad hour")?;
            let mi: u32 = tp.next().and_then(|x| x.parse().ok()).ok_or("bad minute")?;
            if h > 23 || mi > 59 {
                return Err(format!("bad time '{t}'"));
            }
            (h, mi)
        }
    };
    Ok(Value::Timestamp(timestamp_from_parts(y, mo, d, h, mi)))
}

/// The default update function for one scalar type.
pub fn default_update_fn(ty: &ScalarType) -> UpdateFn {
    match ty {
        ScalarType::Bool => Arc::new(|s| match s.trim().to_ascii_lowercase().as_str() {
            "true" | "t" | "yes" | "1" => Ok(Value::Bool(true)),
            "false" | "f" | "no" | "0" => Ok(Value::Bool(false)),
            other => Err(format!("'{other}' is not a boolean")),
        }),
        ScalarType::Int => Arc::new(|s| {
            s.trim().parse().map(Value::Int).map_err(|_| format!("'{s}' is not an integer"))
        }),
        ScalarType::Float => Arc::new(|s| {
            s.trim().parse().map(Value::Float).map_err(|_| format!("'{s}' is not a number"))
        }),
        ScalarType::Timestamp => Arc::new(parse_timestamp_text),
        // Text accepts anything; drawables are computed, never updated.
        _ => Arc::new(|s| Ok(Value::Text(s.to_string()))),
    }
}

/// The durable environment shared by sessions.
pub struct Environment {
    pub catalog: Catalog,
    pub registry: BoxRegistry,
    programs: BTreeMap<String, String>,
    /// Update-function overrides, keyed `table.field` ("he can replace
    /// the default update command with one of his own choosing", §8).
    update_overrides: BTreeMap<String, UpdateFn>,
}

impl Environment {
    pub fn new(catalog: Catalog) -> Self {
        Environment {
            catalog,
            registry: BoxRegistry::with_primitives(),
            programs: BTreeMap::new(),
            update_overrides: BTreeMap::new(),
        }
    }

    /// **Save Program** under a name (paper Figure 2 — "save the current
    /// program in the database"; our database is the environment).
    pub fn save_program(&mut self, name: impl Into<String>, graph: &Graph) {
        self.programs.insert(name.into(), persist::save_program(graph));
    }

    /// Retrieve a saved program.
    pub fn load_program(&self, name: &str) -> Result<Graph, CoreError> {
        let text = self
            .programs
            .get(name)
            .ok_or_else(|| CoreError::Session(format!("no saved program '{name}'")))?;
        Ok(persist::load_program(text, &self.registry)?)
    }

    pub fn program_names(&self) -> Vec<String> {
        self.programs.keys().cloned().collect()
    }

    /// Every saved program as `(name, serialized text)` — session
    /// snapshots embed the whole library.
    pub fn programs_snapshot(&self) -> Vec<(String, String)> {
        self.programs.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Restore one saved program from its serialized text (recovery).
    pub fn restore_program_text(&mut self, name: impl Into<String>, text: impl Into<String>) {
        self.programs.insert(name.into(), text.into());
    }

    /// Register a big-programmer box.
    pub fn register_custom(&mut self, custom: Arc<CustomBox>) {
        self.registry.register_custom(custom);
    }

    /// Register an encapsulated definition as a reusable box.
    pub fn register_encapsulated(&mut self, def: Arc<EncapsulatedDef>) {
        self.registry.register_encapsulated(def);
    }

    /// Override the update function for `table.field`.
    pub fn set_update_fn(&mut self, table: &str, field: &str, f: UpdateFn) {
        self.update_overrides.insert(format!("{table}.{field}"), f);
    }

    /// The update function for a field: the override if present, else the
    /// type default.
    pub fn update_fn(&self, table: &str, field: &str, ty: &ScalarType) -> UpdateFn {
        self.update_overrides
            .get(&format!("{table}.{field}"))
            .cloned()
            .unwrap_or_else(|| default_update_fn(ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_update_fns_parse() {
        assert_eq!(default_update_fn(&ScalarType::Int)(" 42 "), Ok(Value::Int(42)));
        assert!(default_update_fn(&ScalarType::Int)("x").is_err());
        assert_eq!(default_update_fn(&ScalarType::Float)("2.5"), Ok(Value::Float(2.5)));
        assert_eq!(default_update_fn(&ScalarType::Bool)("Yes"), Ok(Value::Bool(true)));
        assert_eq!(default_update_fn(&ScalarType::Bool)("0"), Ok(Value::Bool(false)));
        assert!(default_update_fn(&ScalarType::Bool)("maybe").is_err());
        assert_eq!(
            default_update_fn(&ScalarType::Text)("anything"),
            Ok(Value::Text("anything".into()))
        );
    }

    #[test]
    fn timestamp_update_fn() {
        let f = default_update_fn(&ScalarType::Timestamp);
        assert_eq!(f("1990-01-01"), Ok(Value::Timestamp(timestamp_from_parts(1990, 1, 1, 0, 0))));
        assert_eq!(
            f("1992-07-14 12:30"),
            Ok(Value::Timestamp(timestamp_from_parts(1992, 7, 14, 12, 30)))
        );
        assert!(f("1992/07/14").is_err());
        assert!(f("1992-13-01").is_err());
        assert!(f("1992-07-14 25:00").is_err());
    }

    #[test]
    fn program_save_load() {
        let mut env = Environment::new(Catalog::new());
        let mut g = Graph::new();
        g.add(tioga2_dataflow::BoxKind::Table("T".into()));
        env.save_program("mine", &g);
        assert_eq!(env.program_names(), vec!["mine".to_string()]);
        let back = env.load_program("mine").unwrap();
        assert_eq!(back.len(), 1);
        assert!(env.load_program("nope").is_err());
    }

    #[test]
    fn update_override_takes_precedence() {
        let mut env = Environment::new(Catalog::new());
        env.set_update_fn(
            "inventory",
            "qty",
            Arc::new(|s| {
                // A custom "look and feel": quantities entered in dozens.
                s.trim()
                    .parse::<i64>()
                    .map(|n| Value::Int(n * 12))
                    .map_err(|_| "bad qty".to_string())
            }),
        );
        let f = env.update_fn("inventory", "qty", &ScalarType::Int);
        assert_eq!(f("3"), Ok(Value::Int(36)));
        let g = env.update_fn("inventory", "other", &ScalarType::Int);
        assert_eq!(g("3"), Ok(Value::Int(3)), "other fields keep the default");
    }
}
