//! # tioga2-core
//!
//! The Tioga-2 environment itself — the paper's primary contribution
//! assembled from the substrate crates.
//!
//! A [`Session`] is one user at the interface of paper §3: a **program
//! window** (the boxes-and-arrows graph), one **canvas window** per
//! viewer in the program, and a **menu bar** (operations, tables, boxes,
//! undo, help).  Every primitive operation of Figures 2/3/5/6 and
//! sections 7–8 is a session method; every method is an *incremental*
//! program edit with an immediately renderable result (§1.2 principles
//! 1–2: "every result of a user action has a valid visual
//! representation", "programming is incremental").
//!
//! The [`Environment`] is the durable half: the table catalog, the box
//! registry (primitives + encapsulated + big-programmer customs), saved
//! programs, and the per-type update functions of §8.
//!
//! `mode` switches between the lazy Tioga-2 engine and an eager
//! whole-program Tioga-1 baseline (for the A1 ablation).

pub mod canvas;
pub mod command;
pub mod environment;
pub mod error;
pub mod menus;
pub mod session;
pub mod update;

pub use canvas::Canvas;
pub use command::{dispatch, Command, Response};
pub use environment::Environment;
pub use error::CoreError;
pub use session::{EvalMode, Session, SupersedeHandle};
pub use update::UpdateDialog;
