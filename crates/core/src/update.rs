//! The generic update dialog (paper §8).
//!
//! "When a user clicks on a screen object, the Tioga-2 run time system
//! activates a generic update procedure, passing it the tuple
//! corresponding to the screen object.  The function engages a dialog
//! with the user to construct a new tuple — using the primitive update
//! functions for the fields — and then perform an SQL update to install
//! the new value in the database."

use crate::error::CoreError;
use crate::session::Session;
use tioga2_expr::ScalarType;
use tioga2_relational::update::FieldChange;
use tioga2_render::HitRecord;

/// One dialog field.
#[derive(Debug, Clone, PartialEq)]
pub struct DialogField {
    pub name: String,
    pub ty: ScalarType,
    /// Current value rendered with the type's default display function.
    pub original: String,
    /// The user's replacement text, if edited.
    pub edited: Option<String>,
}

/// An in-progress update of one tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateDialog {
    pub table: String,
    pub row_id: u64,
    pub fields: Vec<DialogField>,
}

impl UpdateDialog {
    /// Build the dialog for a clicked screen object.  The object's tuple
    /// must be traceable to a base table (restrict/sample/sort preserve
    /// lineage; join output is not updatable).
    pub(crate) fn for_hit(session: &mut Session, hit: &HitRecord) -> Result<Self, CoreError> {
        let table = hit.provenance.source.clone().ok_or_else(|| {
            CoreError::Update(format!(
                "screen object from layer '{}' is not traceable to a base table",
                hit.provenance.layer
            ))
        })?;
        let row_id = hit.provenance.row_id;
        let base = session.env.catalog.snapshot(&table)?;
        let tuple = base
            .tuples()
            .iter()
            .find(|t| t.row_id == row_id)
            .ok_or_else(|| {
                CoreError::Update(format!("row {row_id} no longer exists in '{table}'"))
            })?
            .clone();
        let fields = base
            .schema()
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| DialogField {
                name: f.name.clone(),
                ty: f.ty.clone(),
                original: tuple.values()[i].display_text(),
                edited: None,
            })
            .collect();
        Ok(UpdateDialog { table, row_id, fields })
    }

    /// Edit one field's text.
    pub fn set_field(&mut self, name: &str, text: impl Into<String>) -> Result<(), CoreError> {
        let f = self
            .fields
            .iter_mut()
            .find(|f| f.name == name)
            .ok_or_else(|| CoreError::Update(format!("no field '{name}'")))?;
        f.edited = Some(text.into());
        Ok(())
    }

    /// Parse the edited fields with their (possibly overridden) update
    /// functions and install the new tuple.  All-or-nothing.
    pub fn commit(self, session: &mut Session) -> Result<(), CoreError> {
        let mut changes = Vec::new();
        for f in &self.fields {
            if let Some(text) = &f.edited {
                let parser = session.env.update_fn(&self.table, &f.name, &f.ty);
                let value = parser(text)
                    .map_err(|m| CoreError::Update(format!("field '{}': {m}", f.name)))?;
                changes.push(FieldChange { field: f.name.clone(), value });
            }
        }
        if changes.is_empty() {
            return Ok(());
        }
        session.install_update(&self.table, self.row_id, &changes)
    }
}
