//! The menu bar (paper §3): "a menu of all operations available, a menu
//! of all tables available, a menu of all boxes available, an undo button
//! ... and a help button."

use crate::session::Session;

/// One entry of the operations menu, with its help text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperationHelp {
    pub name: &'static str,
    /// Which paper figure/section specifies it.
    pub reference: &'static str,
    pub help: &'static str,
}

/// The complete operations menu.
pub const OPERATIONS: &[OperationHelp] = &[
    OperationHelp { name: "New Program", reference: "Fig. 2", help: "Erase the program canvas." },
    OperationHelp { name: "Add Program", reference: "Fig. 2", help: "Add a named program to the program canvas." },
    OperationHelp { name: "Load Program", reference: "Fig. 2", help: "Shorthand for New Program followed by Add Program." },
    OperationHelp { name: "Save Program", reference: "Fig. 2", help: "Save the current program in the database." },
    OperationHelp { name: "Apply Box", reference: "Fig. 2", help: "Menu of all boxes whose inputs match the selected edges." },
    OperationHelp { name: "Delete Box", reference: "Fig. 2", help: "Delete a box with no connected outputs, or splice out a same-typed single-input/single-output box." },
    OperationHelp { name: "Replace Box", reference: "Fig. 2", help: "Replace one box by a different box with compatible types." },
    OperationHelp { name: "T", reference: "Fig. 2", help: "Add a T-node to a designated edge; it passes its input unchanged to both outputs." },
    OperationHelp { name: "Encapsulate", reference: "Fig. 2", help: "Turn a region of the program into a new box; inner holes make it a macro." },
    OperationHelp { name: "Add Table", reference: "Fig. 3", help: "Add the box producing a specified relation as output." },
    OperationHelp { name: "Project", reference: "Fig. 3", help: "Standard database projection; prompts for fields." },
    OperationHelp { name: "Restrict", reference: "Fig. 3", help: "Filter a relation to tuples satisfying a predicate." },
    OperationHelp { name: "Sample", reference: "Fig. 3", help: "Randomly sample a relation to improve interactive response." },
    OperationHelp { name: "Join", reference: "Fig. 3", help: "Standard join of two relations; prompts for the join predicate." },
    OperationHelp { name: "Aggregate", reference: "§5.3", help: "GROUP BY keys with count/sum/avg/min/max columns (general query-language surface)." },
    OperationHelp { name: "Distinct", reference: "§5.3", help: "Drop duplicate tuples on the chosen attributes." },
    OperationHelp { name: "Limit", reference: "§5.3", help: "Keep a window of tuples in the current order." },
    OperationHelp { name: "Rename", reference: "§5.3", help: "Rename a stored field; computed attributes follow." },
    OperationHelp { name: "Add Attribute", reference: "Fig. 5", help: "Add an attribute; a new location attribute adds a dimension, a new display attribute adds an alternative visualization." },
    OperationHelp { name: "Remove Attribute", reference: "Fig. 5", help: "Remove an attribute; cannot remove x, y, or display." },
    OperationHelp { name: "Set Attribute", reference: "Fig. 5", help: "Change the value of an existing attribute." },
    OperationHelp { name: "Swap Attributes", reference: "Fig. 5", help: "Interchange two attributes of the same type." },
    OperationHelp { name: "Scale Attribute", reference: "Fig. 5", help: "Multiply a numerical attribute by a number." },
    OperationHelp { name: "Translate Attribute", reference: "Fig. 5", help: "Add a number to a numerical attribute." },
    OperationHelp { name: "Combine Displays", reference: "Fig. 5", help: "Combine two display attributes into a new one at a relative offset." },
    OperationHelp { name: "Set Range", reference: "Fig. 6", help: "Elevations at which a relation's display is defined; outside it contributes nothing." },
    OperationHelp { name: "Overlay", reference: "Fig. 6", help: "Superimpose two composites; warns on dimension mismatch (invariant interpretation available)." },
    OperationHelp { name: "Shuffle", reference: "Fig. 6", help: "Move a relation to the top of a composite's drawing order." },
    OperationHelp { name: "Slave", reference: "§7.1", help: "Constrain two same-dimensional viewers to move together." },
    OperationHelp { name: "Magnifying Glass", reference: "§7.2", help: "Place a viewer inside a viewer; zoom it to magnify, optionally on an alternative display." },
    OperationHelp { name: "Stitch", reference: "§7.3", help: "Stitch composites into a group, side-by-side, vertical, or tabular." },
    OperationHelp { name: "Replicate", reference: "§7.4", help: "Partition a relation by predicates and/or an enumerated type and stitch the replicas." },
    OperationHelp { name: "Switch", reference: "§1.2", help: "Route tuples satisfying a predicate to one output and the rest to the other." },
    OperationHelp { name: "Update", reference: "§8", help: "Click a screen object to edit its tuple with the per-type update functions." },
];

/// Help text for one operation, if it exists.
pub fn help(name: &str) -> Option<&'static OperationHelp> {
    OPERATIONS.iter().find(|o| o.name.eq_ignore_ascii_case(name))
}

/// The tables menu: all catalog tables (sorted).
pub fn tables_menu(session: &Session) -> Vec<String> {
    session.env.catalog.table_names()
}

/// The boxes menu: all instantiable boxes in the registry.
pub fn boxes_menu(session: &Session) -> Vec<String> {
    session.env.registry.templates().iter().map(|t| t.name.clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::Environment;
    use tioga2_relational::Catalog;

    #[test]
    fn every_paper_operation_has_help() {
        for name in [
            "Restrict",
            "Project",
            "Sample",
            "Join",
            "Add Table",
            "Apply Box",
            "Delete Box",
            "Replace Box",
            "T",
            "Encapsulate",
            "Set Range",
            "Overlay",
            "Shuffle",
            "Stitch",
            "Replicate",
            "Swap Attributes",
            "Combine Displays",
            "Update",
        ] {
            assert!(help(name).is_some(), "missing help for {name}");
        }
        assert!(help("restrict").is_some(), "case-insensitive lookup");
        assert!(help("Frobnicate").is_none());
    }

    #[test]
    fn menus_reflect_environment() {
        let cat = Catalog::new();
        cat.register(
            "Stations",
            tioga2_relational::Relation::new(tioga2_relational::Schema::new(vec![]).unwrap()),
        );
        let session = Session::new(Environment::new(cat));
        assert_eq!(tables_menu(&session), vec!["Stations".to_string()]);
        let boxes = boxes_menu(&session);
        assert!(boxes.contains(&"Restrict".to_string()));
        assert!(boxes.contains(&"Stitch".to_string()));
    }
}
