//! Integration tests for the Tioga-2 session: every operation group of
//! the paper exercised through the user-facing API.

use tioga2_core::{Environment, EvalMode, Session};
use tioga2_dataflow::boxes::RelOpKind;
use tioga2_dataflow::{BoxKind, PortType};
use tioga2_datagen::register_standard_catalog;
use tioga2_display::attr_ops::AttrRole;
use tioga2_display::compose::PartitionSpec;
use tioga2_display::{Displayable, Layout, Selection};
use tioga2_expr::{parse, Color, ScalarType as T};
use tioga2_obs::Recorder as _;
use tioga2_relational::Catalog;
use tioga2_viewer::magnifier::Magnifier;

fn session() -> Session {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 120, 8, 42);
    Session::new(Environment::new(catalog))
}

/// The Figure 1 pipeline: Stations -> Restrict(LA) -> Project -> Viewer.
fn figure1(s: &mut Session) -> (tioga2_dataflow::NodeId, tioga2_dataflow::NodeId) {
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let p = s.project(r, &["name", "longitude", "latitude", "altitude"]).unwrap();
    let v = s.add_viewer(p, "main").unwrap();
    (p, v)
}

#[test]
fn figure1_default_table_view() {
    let mut s = session();
    let (p, _) = figure1(&mut s);
    let d = s.demand(p, 0).unwrap();
    assert!(d.tuple_count() > 5, "Louisiana stations present");
    // Default display renders: the canvas shows ink.
    let frame = s.render("main").unwrap();
    assert!(frame.fb.ink_fraction() > 0.0);
    assert!(!frame.hits.is_empty());
    // The default display is an ASCII table: one text drawable per field.
    assert!(frame.scene.items.iter().all(|i| i.drawable.kind() == "text"));
}

#[test]
fn inspect_partial_results_on_any_edge() {
    // "The user can also inspect any of the partial results" (§4).
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let full = s.demand(t, 0).unwrap().tuple_count();
    let la = s.demand(r, 0).unwrap().tuple_count();
    assert!(full > la && la > 0);
    // Install a probe viewer on the existing edge.
    let probe = s.add_viewer_on_edge(r, 0, "probe").unwrap();
    assert_eq!(s.demand(probe, 0).unwrap().tuple_count(), full);
    let frame = s.render("probe").unwrap();
    assert!(frame.fb.ink_fraction() > 0.0);
}

#[test]
fn figure4_station_map() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let x = s.set_attribute(r, "x", T::Float, "longitude").unwrap();
    let y = s.set_attribute(x, "y", T::Float, "latitude").unwrap();
    let d = s
        .set_attribute(
            y,
            "display",
            T::DrawList,
            "circle(0.05,'red') ++ offset(text(name,'black'), 0.0, -0.08)",
        )
        .unwrap();
    let alt = s.add_attribute(d, "alt", T::Float, "altitude", AttrRole::Location).unwrap();
    s.add_viewer(alt, "map").unwrap();
    let frame = s.render("map").unwrap();
    assert!(frame.fb.count_color(Color::RED) > 0, "circles visible");
    assert!(frame.fb.count_color(Color::BLACK) > 0, "names visible");
    // The altitude slider exists and filters.
    let total = frame.hits.len();
    s.set_slider("map", "alt", -1.0, 0.5).unwrap();
    let filtered = s.render("map").unwrap().hits.len();
    assert!(filtered < total, "{filtered} < {total}");
}

#[test]
fn incremental_edit_replaces_predicate_cheaply() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    let la = s.displayable("main").unwrap().tuple_count();
    let evals_before = s.engine_stats().box_evals;
    // Edit the predicate in place (direct manipulation of the box).
    s.update_box(
        r,
        BoxKind::RelOp {
            op: RelOpKind::Restrict(parse("state = 'TX'").unwrap()),
            shape: PortType::R,
            sel: Selection::default(),
        },
    )
    .unwrap();
    let tx = s.displayable("main").unwrap().tuple_count();
    assert_ne!(la, tx);
    // Only the restrict and the viewer re-fired, not the table.
    assert!(s.engine_stats().box_evals - evals_before <= 2);
}

#[test]
fn undo_redo_across_session_edits() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    let n = s.graph.len();
    assert!(s.undo());
    assert_eq!(s.graph.len(), n - 1);
    assert!(s.canvas_names().is_empty(), "canvas disappears with its viewer box");
    assert!(s.redo());
    assert_eq!(s.graph.len(), n);
    assert_eq!(s.canvas_names(), vec!["main".to_string()]);
    // A failed edit does not pollute the undo stack.
    assert!(s.restrict(t, "no_such_attr = 1").is_err());
    assert_eq!(s.graph.len(), n, "rolled back");
}

#[test]
fn save_load_roundtrip_through_environment() {
    let mut s = session();
    figure1(&mut s);
    s.save_program("louisiana");
    let n = s.graph.len();
    s.new_program();
    assert_eq!(s.graph.len(), 0);
    assert!(s.canvas_names().is_empty());
    s.load_program("louisiana").unwrap();
    assert_eq!(s.graph.len(), n);
    assert_eq!(s.canvas_names(), vec!["main".to_string()]);
    // Add Program merges rather than replaces... but duplicate canvas
    // names collide on the same window, which the session tolerates by
    // pointing the canvas at the latest viewer box.
    s.add_program("louisiana").unwrap();
    assert_eq!(s.graph.len(), 2 * n);
}

#[test]
fn delete_and_replace_box_rules() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let v = s.add_viewer(r, "main").unwrap();
    // Splice out the restrict: viewer then sees the whole table.
    s.delete_box(r).unwrap();
    let full = s.displayable("main").unwrap().tuple_count();
    assert_eq!(full, 120);
    // Table has a connected output -> not deletable.
    assert!(s.delete_box(t).is_err());
    // Viewer deletable (no connected outputs) and its canvas goes away.
    s.delete_box(v).unwrap();
    assert!(s.canvas_names().is_empty());
}

#[test]
fn tee_and_switch_routing() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    // T on the edge into restrict; probe both branches.
    let tee = s.add_tee(r, 0).unwrap();
    let sw = s.switch(tee, "state = 'LA'").unwrap();
    // Connect switch's second... switch already consumed tee output 0?
    // switch() appended to output 0; tee's output 1 is free:
    let hi = s.demand(sw, 0).unwrap().tuple_count();
    let lo = s.demand(sw, 1).unwrap().tuple_count();
    assert_eq!(hi + lo, 120);
    assert!(hi > 0 && lo > 0);
}

#[test]
fn apply_box_menu_matches_edges() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let candidates = s.apply_box_candidates(&[(t, 0)]).unwrap();
    let names: Vec<&str> = candidates.iter().map(|c| c.name.as_str()).collect();
    assert!(names.contains(&"Restrict"));
    assert!(names.contains(&"Replicate"));
    let pair = s.apply_box_candidates(&[(t, 0), (t, 0)]).unwrap();
    assert!(pair.iter().any(|c| c.name == "Join"));
}

#[test]
fn join_stations_observations() {
    let mut s = session();
    let st = s.add_table("Stations").unwrap();
    let la = s.restrict(st, "state = 'LA'").unwrap();
    let obs = s.add_table("Observations").unwrap();
    let j = s.join(la, obs, "id = station_id").unwrap();
    let d = s.demand(j, 0).unwrap();
    let la_count = s.demand(la, 0).unwrap().tuple_count();
    assert_eq!(d.tuple_count(), la_count * 8, "8 observations per station");
}

#[test]
fn figure7_overlay_with_ranges_and_elevation_map() {
    let mut s = session();
    // Map layer from the border lines.
    let m = s.add_table("LaBorder").unwrap();
    let mx = s.set_attribute(m, "x", T::Float, "x1").unwrap();
    let my = s.set_attribute(mx, "y", T::Float, "y1").unwrap();
    let md = s
        .set_attribute(my, "display", T::DrawList, "line(x2 - x1, y2 - y1, 'gray') ++ nodraw()")
        .unwrap();
    let map = s.set_layer_name(md, "map").unwrap();

    // Stations with circles at high elevation, names at low.
    let t = s.add_table("Stations").unwrap();
    let la = s.restrict(t, "state = 'LA'").unwrap();
    let sx = s.set_attribute(la, "x", T::Float, "longitude").unwrap();
    let sy = s.set_attribute(sx, "y", T::Float, "latitude").unwrap();
    let tee = s.add_tee(sy, 0).unwrap();
    // tee used as input to two styling chains... first chain:
    let circles0 =
        s.set_attribute(tee, "display", T::DrawList, "circle(0.04,'red') ++ nodraw()").unwrap();
    let circles1 = s.set_layer_name(circles0, "circles").unwrap();
    let circles = s.set_range(circles1, 2.0, 1e9, Selection::default()).unwrap();

    let names0 = s
        .add_box(BoxKind::RelOp {
            op: RelOpKind::SetAttribute {
                name: "display".into(),
                ty: T::DrawList,
                def: parse("circle(0.04,'red') ++ offset(text(name,'black'), 0.0, -0.07)").unwrap(),
            },
            shape: PortType::R,
            sel: Selection::default(),
        })
        .unwrap();
    s.connect(tee, 1, names0, 0).unwrap();
    let names1 = s.set_layer_name(names0, "names").unwrap();
    let names = s.set_range(names1, 0.0, 2.0, Selection::default()).unwrap();

    // Overlay: map (2-D) under stations detail layers (dimension match
    // here, but use invariant mode as the paper's dialog would).
    let o1 = s.overlay(map, circles, vec![], true).unwrap();
    let o2 = s.overlay(o1, names, vec![], true).unwrap();
    s.add_viewer(o2, "atlas").unwrap();

    let frame = s.render("atlas").unwrap();
    assert!(frame.fb.count_color(Color::GRAY) > 0, "map lines visible");

    // Elevation map shows three layers with the right activity.
    let bars = s.elevation_map("atlas").unwrap();
    assert_eq!(bars.len(), 3);
    let by_name = |n: &str| bars.iter().find(|b| b.layer_name == n).unwrap();
    assert!(by_name("map").range.max.is_infinite());
    assert_eq!(by_name("circles").range.min, 2.0);
    assert_eq!(by_name("names").range.max, 2.0);

    // Drag the names bar on the elevation map: the program grows a Set
    // Range box on the canvas edge.
    let n_before = s.graph.len();
    s.set_range_via_map("atlas", 2, 0.0, 5.0).unwrap();
    assert_eq!(s.graph.len(), n_before + 1);
    let bars2 = s.elevation_map("atlas").unwrap();
    assert_eq!(bars2[2].range.max, 5.0);

    // Reorder via the elevation map, too.
    s.reorder_via_map("atlas", 2, 0).unwrap();
    let bars3 = s.elevation_map("atlas").unwrap();
    assert_eq!(bars3[0].layer_name, "names");
}

#[test]
fn figure8_wormholes_and_rear_view() {
    let mut s = session();
    // Destination canvas: temperature vs time.
    let obs = s.add_table("Observations").unwrap();
    let ox = s.set_attribute(obs, "x", T::Float, "to_float(epoch(time)) / 86400.0").unwrap();
    let oy = s.set_attribute(ox, "y", T::Float, "temperature").unwrap();
    let od = s.set_attribute(oy, "display", T::DrawList, "point('blue') ++ nodraw()").unwrap();
    s.add_viewer(od, "temps").unwrap();

    // Source canvas: one station with a wormhole to temps, plus an
    // underside layer for the mirror.
    let t = s.add_table("Stations").unwrap();
    let one = s.restrict(t, "id = 0").unwrap();
    let sx = s.set_attribute(one, "x", T::Float, "longitude").unwrap();
    let sy = s.set_attribute(sx, "y", T::Float, "latitude").unwrap();
    let tee = s.add_tee(sy, 0).unwrap();
    let wh = s
        .set_attribute(
            tee,
            "display",
            T::DrawList,
            "circle(0.05,'red') ++ viewer('temps', 50.0, 5500.0, 20.0, 0.4, 0.3)",
        )
        .unwrap();
    // Underside marker (negative range) overlaid on the same canvas.
    let under0 = s
        .add_box(BoxKind::RelOp {
            op: RelOpKind::SetAttribute {
                name: "display".into(),
                ty: T::DrawList,
                def: parse("rect(0.5,0.5,'green') ++ nodraw()").unwrap(),
            },
            shape: PortType::R,
            sel: Selection::default(),
        })
        .unwrap();
    s.connect(tee, 1, under0, 0).unwrap();
    let under = s.set_range(under0, -1e9, -0.001, Selection::default()).unwrap();
    let both = s.overlay(wh, under, vec![], true).unwrap();
    s.add_viewer(both, "stations").unwrap();

    // Zoom down onto the station: pass through.
    s.render("stations").unwrap();
    let mut dest = None;
    for _ in 0..80 {
        if let Some(d) = s.zoom("stations", 0.5).unwrap() {
            dest = Some(d);
            break;
        }
    }
    assert_eq!(dest.as_deref(), Some("temps"));
    assert_eq!(s.focus(), Some("temps"));
    assert_eq!(s.travel_depth(), 1);
    // Arrived at the spec position.
    let v = s.viewers.get("temps").unwrap();
    assert_eq!(v.position.center, (5500.0, 20.0));
    assert_eq!(v.position.elevation, 50.0);

    // Descend on temps; the rear view shows the stations underside.
    s.zoom("temps", 0.5).unwrap();
    let rear = s.rear_view_elevation().unwrap();
    assert!(rear < 0.0);
    let (fb, scene) = s.render_rear_view(120, 120).unwrap().unwrap();
    assert!(!scene.is_empty());
    assert!(fb.count_color(Color::GREEN) > 0, "underside marker in the mirror");

    // Go home.
    let home = s.go_back().unwrap();
    assert_eq!(home, "stations");
    assert_eq!(s.focus(), Some("stations"));
    assert_eq!(s.travel_depth(), 0);
}

#[test]
fn figure9_magnifier_with_alternative_display() {
    let mut s = session();
    let obs = s.add_table("Observations").unwrap();
    let ox = s.set_attribute(obs, "x", T::Float, "to_float(epoch(time)) / 86400.0").unwrap();
    let oy = s.set_attribute(ox, "y", T::Float, "temperature").unwrap();
    let od = s.set_attribute(oy, "display", T::DrawList, "circle(0.4,'red') ++ nodraw()").unwrap();
    let alt = s
        .add_attribute(od, "precip_view", T::Drawable, "rect(0.4,0.4,'blue')", AttrRole::Display)
        .unwrap();
    s.add_viewer(alt, "plot").unwrap();
    s.render("plot").unwrap();
    let m = Magnifier::new((200, 150, 160, 120), 2.0).unwrap().with_display("precip_view");
    s.add_magnifier("plot", m).unwrap();
    let frame = s.render("plot").unwrap();
    assert!(frame.fb.count_color(Color::BLUE) > 0, "lens shows the precip display");
    assert!(frame.fb.count_color(Color::RED) > 0, "outer still temperature");
    s.remove_magnifier("plot", 0).unwrap();
    assert!(s.remove_magnifier("plot", 0).is_err());
}

#[test]
fn figure10_stitch_with_slaved_members() {
    let mut s = session();
    let obs = s.add_table("Observations").unwrap();
    let x = s.set_attribute(obs, "x", T::Float, "to_float(epoch(time)) / 86400.0").unwrap();
    let tee = s.add_tee(x, 0).unwrap();
    let temp = s.set_attribute(tee, "y", T::Float, "temperature").unwrap();
    let precip0 = s
        .add_box(BoxKind::RelOp {
            op: RelOpKind::SetAttribute {
                name: "y".into(),
                ty: T::Float,
                def: parse("precipitation").unwrap(),
            },
            shape: PortType::R,
            sel: Selection::default(),
        })
        .unwrap();
    s.connect(tee, 1, precip0, 0).unwrap();
    let st = s.stitch(&[temp, precip0], Layout::Vertical).unwrap();
    s.add_viewer(st, "both").unwrap();
    let frame = s.render("both").unwrap();
    assert_eq!(frame.member_hits.len(), 2);
    // Slave the precipitation member to the temperature member; panning
    // the date range moves both.
    {
        let gw = s.group_window_mut("both").unwrap();
        gw.slave_members(0, 1).unwrap();
        let before =
            gw.viewers.get(&tioga2_viewer::group::member_viewer_name(1)).unwrap().position.clone();
        gw.pan_member(0, 40, 0).unwrap();
        let after =
            gw.viewers.get(&tioga2_viewer::group::member_viewer_name(1)).unwrap().position.clone();
        assert_ne!(before.center, after.center);
    }
    // Window ops propagate.
    s.group_window_mut("both").unwrap().iconify();
    let frame2 = s.render("both").unwrap();
    assert!(frame2.member_hits.is_empty());
}

#[test]
fn figure11_replicate_before_after_1990() {
    let mut s = session();
    let obs = s.add_table("Observations").unwrap();
    let x = s.set_attribute(obs, "x", T::Float, "to_float(epoch(time)) / 86400.0").unwrap();
    let y = s.set_attribute(x, "y", T::Float, "temperature").unwrap();
    let g = s
        .replicate(
            y,
            PartitionSpec::Predicates(vec![
                ("year < 1990".into(), parse("year(time) < 1990").unwrap()),
                ("year >= 1990".into(), parse("year(time) >= 1990").unwrap()),
            ]),
            None,
            Selection::default(),
        )
        .unwrap();
    s.add_viewer(g, "replicated").unwrap();
    match s.displayable("replicated").unwrap() {
        Displayable::G(group) => {
            assert_eq!(group.members.len(), 2);
            assert_eq!(group.labels[0], "year < 1990");
            let a = group.members[0].layers[0].rel.len();
            let b = group.members[1].layers[0].rel.len();
            assert_eq!(a + b, 120 * 8, "partition is exhaustive");
        }
        other => panic!("expected group, got {}", other.type_tag()),
    }
    let frame = s.render("replicated").unwrap();
    assert_eq!(frame.member_hits.len(), 2);
}

#[test]
fn section8_update_roundtrip() {
    let mut s = session();
    let t = s.add_table("Employees").unwrap();
    let v = s.add_viewer(t, "emps").unwrap();
    let _ = v;
    let frame = s.render("emps").unwrap();
    // Click the first visible screen object.
    let rec = frame.hits.records()[1].clone();
    let (cx, cy) = ((rec.bbox.0 + rec.bbox.2) / 2, (rec.bbox.1 + rec.bbox.3) / 2);
    let mut dialog = s.begin_update("emps", cx, cy).unwrap();
    assert_eq!(dialog.table, "Employees");
    let before_salary: i64 =
        dialog.fields.iter().find(|f| f.name == "salary").unwrap().original.parse().unwrap();
    dialog.set_field("salary", "9999").unwrap();
    assert!(dialog.set_field("no_such", "x").is_err());
    let row_id = dialog.row_id;
    dialog.commit(&mut s).unwrap();
    // Visible through the pipeline after invalidation.
    let snap = s.env.catalog.snapshot("Employees").unwrap();
    let updated = snap.tuples().iter().find(|t| t.row_id == row_id).unwrap();
    let idx = snap.schema().index_of("salary").unwrap();
    assert_eq!(updated.values()[idx], tioga2_expr::Value::Int(9999));
    assert_ne!(before_salary, 9999);
    // And the rendered canvas reflects it.
    let d = s.displayable("emps").unwrap();
    match d {
        Displayable::R(dr) => {
            let found = (0..dr.rel.len())
                .any(|i| dr.rel.attr_value(i, "salary").unwrap() == tioga2_expr::Value::Int(9999));
            assert!(found);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn update_rejects_bad_field_text() {
    let mut s = session();
    s.add_table("Employees").and_then(|t| s.add_viewer(t, "emps")).unwrap();
    let frame = s.render("emps").unwrap();
    let rec = frame.hits.records()[0].clone();
    let (cx, cy) = ((rec.bbox.0 + rec.bbox.2) / 2, (rec.bbox.1 + rec.bbox.3) / 2);
    let mut dialog = s.begin_update("emps", cx, cy).unwrap();
    dialog.set_field("salary", "lots").unwrap();
    assert!(dialog.commit(&mut s).is_err());
}

#[test]
fn encapsulate_and_reuse_through_menu() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let p = s.project(r, &["name", "state", "altitude"]).unwrap();
    let def = s.encapsulate(&[r, p], &[], "LaPrep").unwrap();
    assert!(tioga2_core::menus::boxes_menu(&s).contains(&"LaPrep".to_string()));
    // Instantiate in a fresh program.
    s.new_program();
    let t2 = s.add_table("Stations").unwrap();
    let inst = def.instantiate(vec![]).unwrap();
    let e = s.add_box(inst).unwrap();
    s.connect(t2, 0, e, 0).unwrap();
    let d = s.demand(e, 0).unwrap();
    assert!(d.tuple_count() > 0);
    match d {
        Displayable::R(dr) => assert_eq!(dr.rel.schema().len(), 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn tioga1_eager_mode_recomputes_on_every_edit() {
    let mut s = session();
    s.set_mode(EvalMode::EagerTioga1);
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let _ = s.restrict(r, "altitude > 1.0").unwrap();
    // 1 + 2 + 3 box evaluations across the three edits.
    assert_eq!(s.eager_evals, 6);
    s.set_mode(EvalMode::Lazy);
    assert_eq!(s.mode(), EvalMode::Lazy);
}

#[test]
fn slaved_canvases_pan_together() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let tee = s.add_tee_root(t);
    // Two viewers on the same data.
    let v1 = s.add_viewer(tee.0, "left").unwrap();
    let _ = v1;
    s.add_viewer_second(tee, "right");
    s.render("left").unwrap();
    s.render("right").unwrap();
    s.slave("left", "right").unwrap();
    let before = s.viewers.get("right").unwrap().position.center;
    s.pan("left", 30, 0).unwrap();
    let after = s.viewers.get("right").unwrap().position.center;
    assert_ne!(before, after);
    s.unslave("left", "right").unwrap();
    let frozen = s.viewers.get("right").unwrap().position.center;
    s.pan("left", 30, 0).unwrap();
    assert_eq!(s.viewers.get("right").unwrap().position.center, frozen);
}

// Helper trait impls used by the slaving test: a T directly after a
// table so two viewers can watch the same output.
trait TeeRoot {
    fn add_tee_root(&mut self, t: tioga2_dataflow::NodeId) -> (tioga2_dataflow::NodeId, usize);
    fn add_viewer_second(&mut self, from: (tioga2_dataflow::NodeId, usize), name: &str);
}

impl TeeRoot for Session {
    fn add_tee_root(&mut self, t: tioga2_dataflow::NodeId) -> (tioga2_dataflow::NodeId, usize) {
        let tee = self.add_box(BoxKind::Tee(PortType::R)).unwrap();
        self.connect(t, 0, tee, 0).unwrap();
        (tee, 1)
    }

    fn add_viewer_second(&mut self, from: (tioga2_dataflow::NodeId, usize), name: &str) {
        let v = self.add_box(BoxKind::Viewer { canvas: name.into(), ty: PortType::R }).unwrap();
        self.connect(from.0, from.1, v, 0).unwrap();
    }
}

#[test]
fn menus_reflect_catalog_and_registry() {
    let s = session();
    let tables = tioga2_core::menus::tables_menu(&s);
    for t in ["Stations", "Observations", "LaBorder", "Employees"] {
        assert!(tables.contains(&t.to_string()));
    }
    assert!(tioga2_core::menus::help("Overlay").is_some());
}

#[test]
fn aggregate_distinct_limit_rename_through_session() {
    use tioga2_relational::{AggFunc, AggSpec};
    let mut s = session();
    let obs = s.add_table("Observations").unwrap();
    // Per-station temperature statistics.
    let agg = s
        .aggregate(
            obs,
            &["station_id"],
            vec![
                AggSpec::count("n"),
                AggSpec::of(AggFunc::Avg, "temperature", "mean_temp"),
                AggSpec::of(AggFunc::Max, "precipitation", "max_precip"),
            ],
        )
        .unwrap();
    match s.demand(agg, 0).unwrap() {
        Displayable::R(dr) => {
            assert_eq!(dr.rel.len(), 120, "one group per station");
            assert_eq!(dr.rel.schema().len(), 4);
            dr.validate().unwrap();
            // Every group counted all 8 observations.
            for seq in 0..dr.rel.len() {
                assert_eq!(dr.rel.attr_value(seq, "n").unwrap(), tioga2_expr::Value::Int(8));
            }
        }
        other => panic!("{other:?}"),
    }
    // Chain: rename, distinct, limit, and a viewer at the end.
    let renamed = s.rename_field(agg, "mean_temp", "avg_temperature").unwrap();
    let lim = s.limit(renamed, 10, 25).unwrap();
    s.add_viewer(lim, "stats").unwrap();
    let d = s.displayable("stats").unwrap();
    assert_eq!(d.tuple_count(), 25);

    let st = s.add_table("Stations").unwrap();
    let states = s.distinct(st, &["state"]).unwrap();
    let n_states = s.demand(states, 0).unwrap().tuple_count();
    assert!(n_states > 5 && n_states < 120, "{n_states} distinct states");

    // New ops persist through save/load.
    s.save_program("stats-program");
    let before = s.graph.clone();
    s.load_program("stats-program").unwrap();
    assert_eq!(s.graph.len(), before.len());
    assert_eq!(s.displayable("stats").unwrap().tuple_count(), 25);

    // Bad aggregates are rejected atomically.
    let n = s.graph.len();
    assert!(s.aggregate(st, &["nope"], vec![AggSpec::count("n")]).is_err());
    assert_eq!(s.graph.len(), n);
}

#[test]
fn group_elevation_map_cycles_and_canvas_clones() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let la = s.restrict(t, "state = 'LA'").unwrap();
    // A 3-member replicated group.
    let g = s
        .replicate(la, PartitionSpec::Enumerate("state".into()), None, Selection::default())
        .unwrap();
    s.add_viewer(g, "grp").unwrap();
    // Only one member's elevation map is visible; cycling walks members.
    let m0 = s.elevation_map("grp").unwrap();
    assert_eq!(m0.len(), 1);
    let next = s.cycle_elevation_map("grp").unwrap();
    assert_eq!(next, 0, "single-state enumerate wraps to itself");

    // Clone a plain canvas: shares the edge, copies the position.
    let v = s.add_viewer(la, "orig").unwrap();
    let _ = v;
    s.render("orig").unwrap();
    s.pan("orig", 25, -10).unwrap();
    let pos = s.viewers.get("orig").unwrap().position.clone();
    s.clone_canvas("orig", "copy").unwrap();
    assert_eq!(s.viewers.get("copy").unwrap().position, pos);
    assert_eq!(
        s.displayable("copy").unwrap().tuple_count(),
        s.displayable("orig").unwrap().tuple_count()
    );
    // Clones move independently unless slaved.
    s.pan("copy", 10, 0).unwrap();
    assert_ne!(s.viewers.get("copy").unwrap().position, s.viewers.get("orig").unwrap().position);
    assert!(s.clone_canvas("orig", "copy").is_err(), "name collision rejected");
}

#[test]
fn runtime_parameters_twiddle_interactively() {
    use tioga2_expr::Value;
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let cutoff = s.add_const(Value::Float(100.0)).unwrap();
    let which = s.add_const(Value::Text("LA".into())).unwrap();
    let r = s
        .restrict_with_params(
            t,
            "altitude > cutoff AND state = which",
            &[("cutoff", cutoff), ("which", which)],
        )
        .unwrap();
    s.add_viewer(r, "main").unwrap();
    let high_la = s.displayable("main").unwrap().tuple_count();
    assert!(high_la > 0);

    // Twiddle the cutoff: only the restrict cone re-fires.
    let evals = s.engine_stats().box_evals;
    s.set_const(cutoff, Value::Float(0.0)).unwrap();
    let all_la = s.displayable("main").unwrap().tuple_count();
    assert!(all_la > high_la, "{all_la} > {high_la}");
    assert!(s.engine_stats().box_evals - evals <= 3, "const + restrict + viewer only");

    // Type-changing const edits are rejected (signature change).
    assert!(s.set_const(cutoff, Value::Text("oops".into())).is_err());
    // Drawable constants rejected outright.
    assert!(s
        .add_const(Value::Drawable(Box::new(tioga2_expr::Drawable::point(Color::RED))))
        .is_err());
    // Program with parameters persists and reloads.
    s.save_program("params");
    s.load_program("params").unwrap();
    assert_eq!(s.displayable("main").unwrap().tuple_count(), all_la);
}

#[test]
fn update_through_group_member_canvas() {
    let mut s = session();
    let t = s.add_table("Employees").unwrap();
    let g = s
        .replicate(t, PartitionSpec::Enumerate("department".into()), None, Selection::default())
        .unwrap();
    s.add_viewer(g, "byteam").unwrap();
    let frame = s.render("byteam").unwrap();
    let member = 0;
    let rec = frame.member_hits[member].records()[1].clone();
    let (cx, cy) = ((rec.bbox.0 + rec.bbox.2) / 2, (rec.bbox.1 + rec.bbox.3) / 2);
    let hit = s.click_member("byteam", member, cx, cy).unwrap().unwrap();
    assert_eq!(hit.provenance.source.as_deref(), Some("Employees"));
    let mut dialog = s.begin_update_member("byteam", member, cx, cy).unwrap();
    dialog.set_field("salary", "7777").unwrap();
    let row = dialog.row_id;
    dialog.commit(&mut s).unwrap();
    let snap = s.env.catalog.snapshot("Employees").unwrap();
    let idx = snap.schema().index_of("salary").unwrap();
    let updated = snap.tuples().iter().find(|t| t.row_id == row).unwrap();
    assert_eq!(updated.values()[idx], tioga2_expr::Value::Int(7777));
    assert!(s.click_member("byteam", 99, 0, 0).is_err());
}

#[test]
fn zoomed_render_pushes_window_into_plan() {
    // A table with *stored* numeric x/y: positions do not depend on
    // __seq, so the viewer's window is expressible as a predicate and
    // the render path may demand through the plan layer.
    let catalog = Catalog::new();
    let mut b = tioga2_relational::relation::RelationBuilder::new()
        .field("name", T::Text)
        .field("x", T::Float)
        .field("y", T::Float);
    for i in 0..100 {
        b = b.row(vec![
            tioga2_expr::Value::Text(format!("p{i}")),
            tioga2_expr::Value::Float(i as f64),
            tioga2_expr::Value::Float(i as f64),
        ]);
    }
    catalog.register("Pts", b.build().unwrap());
    let mut s = Session::new(Environment::new(catalog));
    let rec = std::sync::Arc::new(tioga2_obs::InMemoryRecorder::new());
    s.set_recorder(rec.clone());

    let t = s.add_table("Pts").unwrap();
    let r = s.restrict(t, "x >= 0.0").unwrap();
    s.add_viewer(r, "main").unwrap();

    // First render fits the canvas (full demand, no window yet).
    let full = s.render("main").unwrap();
    assert_eq!(
        full.scene
            .items
            .iter()
            .map(|i| i.provenance.row_id)
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        100
    );

    // Zoom in hard: most tuples fall outside the window + margin.
    s.zoom("main", 0.05).unwrap();
    let zoomed = s.render("main").unwrap();
    let zoomed_rows: std::collections::BTreeSet<u64> =
        zoomed.scene.items.iter().map(|i| i.provenance.row_id).collect();
    assert!(!zoomed_rows.is_empty());
    assert!(zoomed_rows.len() < 100, "zoomed window must cull most rows");

    // The plan layer actually carried the demand: its executor span ran
    // and the synthesized window restrict fused with the box's own.
    assert!(rec.completed_spans().iter().any(|sp| sp.name == "plan.execute"));
    assert!(rec.counters().get("plan.rewrite.fuse_restricts").copied().unwrap_or(0) >= 1);

    // Equivalence: the windowed render shows exactly what an unwindowed
    // compose of the full relation shows.
    let full_rows: std::collections::BTreeSet<u64> =
        full.scene.items.iter().map(|i| i.provenance.row_id).collect();
    assert!(zoomed_rows.is_subset(&full_rows));
}

#[test]
fn explain_analyze_renders_attributed_tree() {
    let mut s = session();
    let (p, _) = figure1(&mut s);
    let report = s.explain_analyze(p, 0).unwrap();
    assert!(report.contains("demand #"), "{report}");
    assert!(report.contains("Restrict"), "{report}");
    assert!(report.contains("Source"), "{report}");
    assert!(report.contains("rows"), "{report}");
    assert!(report.contains('%'), "{report}");
    assert!(report.contains("plan cache"), "{report}");
    // The analyzed demand landed in the trace ring.
    assert_eq!(s.demand_traces().len(), 1);

    // A bare table box has no relational chain to attribute.
    let t = s.add_table("Stations").unwrap();
    let report = s.explain_analyze(t, 0).unwrap();
    assert!(report.contains("no relational chain"), "{report}");
}

#[test]
fn explain_analyze_on_fitted_canvas_shows_the_window_restrict() {
    // Same setup as zoomed_render_pushes_window_into_plan: stored x/y so
    // the viewer window is expressible as a predicate.
    let catalog = Catalog::new();
    let mut b = tioga2_relational::relation::RelationBuilder::new()
        .field("name", T::Text)
        .field("x", T::Float)
        .field("y", T::Float);
    for i in 0..100 {
        b = b.row(vec![
            tioga2_expr::Value::Text(format!("p{i}")),
            tioga2_expr::Value::Float(i as f64),
            tioga2_expr::Value::Float(i as f64),
        ]);
    }
    catalog.register("Pts", b.build().unwrap());
    let mut s = Session::new(Environment::new(catalog));
    let t = s.add_table("Pts").unwrap();
    let r = s.restrict(t, "x >= 0.0").unwrap();
    let v = s.add_viewer(r, "main").unwrap();
    s.render("main").unwrap();
    s.zoom("main", 0.05).unwrap();
    // Analyzing the viewer's output uses the render's window pushdown;
    // the fused restrict is visible with rewritten provenance.
    let report = s.explain_analyze(v, 0).unwrap();
    assert!(report.contains("[rewritten]") || report.contains("[window]"), "{report}");
}

#[test]
fn sys_tables_are_ordinary_demandable_relations() {
    let mut s = session();
    s.set_recorder(std::sync::Arc::new(tioga2_obs::InMemoryRecorder::new()));
    let (p, _) = figure1(&mut s);
    s.render("main").unwrap();
    s.explain_analyze(p, 0).unwrap();

    let registered = s.refresh_sys_tables().unwrap();
    assert_eq!(registered, Session::SYS_TABLES.to_vec());
    for name in Session::SYS_TABLES {
        assert!(s.env.catalog.contains(name), "missing {name}");
    }

    // sys.counters carries the engine's own counters.
    let counters = s.env.catalog.snapshot("sys.counters").unwrap();
    let names: Vec<String> = (0..counters.len())
        .map(|i| match counters.attr_value(i, "name").unwrap() {
            tioga2_expr::Value::Text(t) => t,
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(names.iter().any(|n| n == "engine.box_evals"), "{names:?}");

    // sys.demands is demandable and restrictable like any relation:
    // exactly one depth-0 tuple per recorded trace.
    let traces = s.demand_traces().len();
    assert!(traces >= 1);
    let t = s.add_table("sys.demands").unwrap();
    let roots = s.restrict(t, "depth = 0").unwrap();
    assert_eq!(s.demand(roots, 0).unwrap().tuple_count(), traces);
    let all = s.demand(t, 0).unwrap().tuple_count();
    assert!(all > traces, "per-operator tuples present");
}

#[test]
fn tuple_edit_propagates_as_delta_not_invalidation() {
    // PR 8 regression: `install_update` must never reach
    // `invalidate_all`.  A cached plan over an *unrelated* table
    // survives a tuple edit untouched (still a cache hit, no box
    // refires), and the edited table's own chain is patched in place —
    // the re-demand reflects the new value with `plan.delta.applied`
    // counted and zero plan-level recomputation.
    let mut s = session();
    let rec = std::sync::Arc::new(tioga2_obs::InMemoryRecorder::new());
    s.set_recorder(rec.clone());

    // Unrelated pipeline over Stations.
    let t1 = s.add_table("Stations").unwrap();
    let r1 = s.restrict(t1, "state = 'LA'").unwrap();
    let unrelated_before = s.demand(r1, 0).unwrap().tuple_count();

    // Edited pipeline over Employees (a pure restrict chain: patchable).
    let t2 = s.add_table("Employees").unwrap();
    let r2 = s.restrict(t2, "salary >= 0").unwrap();
    s.demand(r2, 0).unwrap();
    s.add_viewer(t2, "emps").unwrap();
    let frame = s.render("emps").unwrap();

    // Warm-cache baselines.
    let hits_before = rec.counter("plan.cache_hits").unwrap_or(0);
    s.demand(r1, 0).unwrap();
    assert_eq!(rec.counter("plan.cache_hits"), Some(hits_before + 1), "warm");
    let evals_before = s.engine_stats().box_evals;

    // Commit a field edit through the §8 dialog.
    let hit = frame.hits.records()[1].clone();
    let (cx, cy) = ((hit.bbox.0 + hit.bbox.2) / 2, (hit.bbox.1 + hit.bbox.3) / 2);
    let mut dialog = s.begin_update("emps", cx, cy).unwrap();
    let row_id = dialog.row_id;
    dialog.set_field("salary", "123456").unwrap();
    dialog.commit(&mut s).unwrap();

    // The delta was applied, not a flush: no full invalidation event,
    // and at least the Table boundary + restrict chain were patched.
    assert!(rec.counter("plan.delta.applied").unwrap_or(0) >= 2, "patched entries");
    let hits_mid = rec.counter("plan.cache_hits").unwrap_or(0);

    // Unrelated chain: still answered from the plan cache, no refires.
    assert_eq!(s.demand(r1, 0).unwrap().tuple_count(), unrelated_before);
    assert_eq!(rec.counter("plan.cache_hits"), Some(hits_mid + 1), "unrelated survives");
    assert_eq!(s.engine_stats().box_evals, evals_before, "no box refired");

    // Edited chain: the patched cache answers with the new value.
    let d = s.demand(r2, 0).unwrap();
    assert_eq!(rec.counter("plan.cache_hits"), Some(hits_mid + 2), "edited chain patched");
    match d {
        Displayable::R(dr) => {
            let i = (0..dr.rel.len())
                .find(|&i| dr.rel.tuples()[i].row_id == row_id)
                .expect("edited row visible");
            assert_eq!(dr.rel.attr_value(i, "salary").unwrap(), tioga2_expr::Value::Int(123456));
        }
        other => panic!("{other:?}"),
    }
}
