//! The session event journal end to end: append, snapshot, recover
//! byte-identically, time-travel, live tail, and the `sys.events`
//! self-hosted table.

use tioga2_core::{Environment, Session};
use tioga2_datagen::register_standard_catalog;
use tioga2_expr::ViewerSpec;
use tioga2_relational::persist as rel_persist;
use tioga2_relational::Catalog;
use tioga2_viewer::magnifier::Magnifier;

fn session() -> Session {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 120, 8, 42);
    Session::new(Environment::new(catalog))
}

/// Figure 1 plus some view-layer state: two canvases, a pan/zoom, a
/// slider, slaving, and a magnifier.
fn busy_session() -> Session {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    let p = s.project(r, &["name", "longitude", "latitude", "altitude"]).unwrap();
    s.add_viewer(p, "main").unwrap();
    let t2 = s.add_table("Stations").unwrap();
    let r2 = s.restrict(t2, "altitude > 100.0").unwrap();
    s.add_viewer(r2, "high").unwrap();
    s.render("main").unwrap();
    s.render("high").unwrap();
    s.pan("main", 12, -7).unwrap();
    s.zoom("main", 1.5).unwrap();
    s.slave("main", "high").unwrap();
    s.add_magnifier("main", Magnifier::new((10, 10, 60, 40), 2.0).unwrap()).unwrap();
    s.save_program("fig1");
    s
}

/// Everything observable about a session that recovery must reproduce:
/// framebuffer bytes per canvas, catalog relations (serialized), saved
/// programs, focus, and undo depth.
fn fingerprint(s: &mut Session) -> (Vec<(String, Vec<u8>)>, Vec<(String, String)>, Vec<String>) {
    let mut frames = Vec::new();
    for c in s.canvas_names() {
        let f = s.render(&c).unwrap();
        frames.push((c.clone(), f.fb.pixels().iter().flatten().copied().collect()));
    }
    let mut tables = Vec::new();
    for name in s.env.catalog.table_names() {
        if name.starts_with("sys.") {
            continue;
        }
        let rel = s.env.catalog.snapshot(&name).unwrap();
        tables.push((name.clone(), rel_persist::save_relation(&rel).unwrap()));
    }
    (frames, tables, s.env.program_names())
}

#[test]
fn recover_is_byte_identical() {
    let mut s = busy_session();
    s.snapshot_now().unwrap();
    // Post-snapshot tail: more edits and gestures that replay must apply.
    let t = s.add_table("Observations").unwrap();
    s.add_viewer(t, "obs2").unwrap();
    s.render("obs2").unwrap();
    s.pan("main", -3, 4).unwrap();
    s.zoom("high", 0.75).unwrap();

    let want = fingerprint(&mut s);
    let text = s.journal_text();
    let mut back = Session::recover(&text).unwrap();
    let got = fingerprint(&mut back);
    assert_eq!(want.0.len(), got.0.len(), "same canvases");
    for ((wc, wf), (gc, gf)) in want.0.iter().zip(got.0.iter()) {
        assert_eq!(wc, gc);
        assert_eq!(wf, gf, "framebuffer for '{wc}' differs after recovery");
    }
    assert_eq!(want.1, got.1, "catalog differs after recovery");
    assert_eq!(want.2, got.2, "saved programs differ after recovery");
    assert_eq!(s.focus(), back.focus());
}

#[test]
fn recover_survives_undo_redo_and_traverse() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    s.render("main").unwrap();
    s.snapshot_now().unwrap();
    // Tail: an edit, an undo, a redo, and a wormhole traversal.
    let t2 = s.add_table("Stations").unwrap();
    s.add_viewer(t2, "all").unwrap();
    s.undo();
    s.redo();
    s.render("all").unwrap();
    s.traverse(
        "main",
        &ViewerSpec { destination: "all".into(), elevation: 0.5, at: (0.1, 0.2), size: (0.4, 0.4) },
    )
    .unwrap();

    let text = s.journal_text();
    let mut back = Session::recover(&text).unwrap();
    assert_eq!(s.travel_depth(), back.travel_depth());
    assert_eq!(s.canvas_names(), back.canvas_names());
    for c in s.canvas_names() {
        let a = s.render(&c).unwrap();
        let b = back.render(&c).unwrap();
        assert_eq!(a.fb.pixels(), b.fb.pixels(), "canvas '{c}'");
    }
    // Undo depth survives: both sessions can undo the same number of steps.
    let mut n_orig = 0;
    while s.undo() {
        n_orig += 1;
    }
    let mut n_back = 0;
    while back.undo() {
        n_back += 1;
    }
    assert_eq!(n_orig, n_back, "undo stack depth differs after recovery");
}

#[test]
fn recover_without_snapshot_is_an_error() {
    let mut s = session();
    s.add_table("Stations").unwrap();
    let text = s.journal_text();
    let err = match Session::recover(&text) {
        Ok(_) => panic!("recovery without a snapshot should fail"),
        Err(e) => e,
    };
    assert!(format!("{err}").contains("snapshot"), "got: {err}");
}

#[test]
fn auto_snapshot_fires_on_edit_cadence() {
    let mut s = session();
    // snapshot_every defaults to 64; drive enough edits to cross it.
    let t = s.add_table("Stations").unwrap();
    let mut cur = t;
    for i in 0..70 {
        cur = s.restrict(cur, &format!("altitude > {i}.0")).unwrap();
    }
    let snaps = s.events().events().iter().filter(|(_, e)| matches!(e.kind(), "snapshot")).count();
    assert!(snaps >= 1, "auto-snapshot never fired over 71 edits");
    // And the log recovers from the auto-snapshot alone.
    let back = Session::recover(&s.journal_text()).unwrap();
    assert_eq!(back.graph.len(), s.graph.len());
}

#[test]
fn rewind_and_replay_reuse_undo_machinery() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    let len_full = s.graph.len();
    assert_eq!(s.rewind(2), 2, "two steps back");
    assert!(s.graph.len() < len_full);
    assert_eq!(s.replay_forward(2), 2, "two steps forward again");
    assert_eq!(s.graph.len(), len_full);
    // Rewinding past the beginning stops early rather than erroring.
    let n = s.rewind(100);
    assert!(n <= 3);
    assert_eq!(s.replay_forward(100), n);
    // Undo/redo show up in the journal as replayable events.
    let kinds: Vec<&str> = s.events().events().iter().map(|(_, e)| e.kind()).collect();
    assert!(kinds.contains(&"undo") && kinds.contains(&"redo"));
}

#[test]
fn watch_tails_a_live_demand() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.set_watch(Some("demand"));
    assert!(s.drain_watch().is_empty(), "nothing new yet");
    s.demand(r, 0).unwrap();
    let got = s.drain_watch();
    assert!(!got.is_empty(), "demand not delivered to watch");
    assert!(got.iter().all(|(_, e)| e.kind() == "demand"));
    // The filter really filters: edits are skipped but advance the cursor.
    s.add_table("Observations").unwrap();
    assert!(s.drain_watch().is_empty());
    s.set_watch(Some(""));
    s.add_table("Employees").unwrap();
    let all = s.drain_watch();
    assert!(all.iter().any(|(_, e)| e.kind() == "edit"), "unfiltered watch sees edits");
    s.clear_watch();
    assert!(s.watch_filter().is_none());
}

#[test]
fn sys_events_queryable_through_box_chain() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.demand(r, 0).unwrap();
    s.refresh_sys_tables().unwrap();
    // Ordinary box chain over the self-hosted event table.
    let ev = s.add_table("sys.events").unwrap();
    let edits = s.restrict(ev, "kind = 'edit'").unwrap();
    let d = s.demand(edits, 0).unwrap();
    assert!(d.tuple_count() >= 2, "expected the add_table/restrict edits, got {}", d.tuple_count());
    let all = s.demand(ev, 0).unwrap();
    assert!(all.tuple_count() > d.tuple_count());
}

#[test]
fn refresh_sys_tables_keeps_non_sys_plans_cached() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.demand(r, 0).unwrap();
    let evals_before = s.engine_stats().box_evals;
    s.refresh_sys_tables().unwrap();
    s.demand(r, 0).unwrap();
    assert_eq!(
        s.engine_stats().box_evals,
        evals_before,
        "non-sys plan re-evaluated after :sys refresh — selective invalidation regressed"
    );
    // But a sys-reading plan IS invalidated and recomputes fresh results.
    let ev = s.add_table("sys.counters").unwrap();
    let before = s.demand(ev, 0).unwrap().tuple_count();
    s.refresh_sys_tables().unwrap();
    let evals = s.engine_stats().box_evals;
    let after = s.demand(ev, 0).unwrap().tuple_count();
    assert!(s.engine_stats().box_evals > evals, "sys plan must recompute after refresh");
    assert!(after >= before);
}

#[test]
fn trace_ring_is_configurable_and_counts_drops() {
    let mut s = session();
    assert_eq!(s.trace_ring(), 32, "default ring size");
    s.set_trace_ring(2);
    assert_eq!(s.trace_ring(), 2);
    let t = s.add_table("Stations").unwrap();
    let a = s.restrict(t, "altitude > 1.0").unwrap();
    let b = s.restrict(t, "altitude > 2.0").unwrap();
    let c = s.restrict(t, "altitude > 3.0").unwrap();
    for n in [a, b, c] {
        s.explain_analyze(n, 0).unwrap();
    }
    assert!(s.demand_traces().len() <= 2, "ring respects its capacity");
    assert!(s.traces_dropped() >= 1, "evictions are counted");
    // The counters surface in sys.counters after a refresh.
    s.refresh_sys_tables().unwrap();
    let rel = s.env.catalog.snapshot("sys.counters").unwrap();
    let text = rel_persist::save_relation(&rel).unwrap();
    assert!(text.contains("demand.trace_ring.size"), "ring size counter missing");
    assert!(text.contains("demand.trace_ring.dropped"), "dropped counter missing");
    assert!(text.contains("journal.events"), "journal length counter missing");
}

#[test]
fn journal_roundtrips_updates_and_config() {
    let mut s = busy_session();
    s.set_threads(2);
    s.set_canvas_size(320, 200);
    s.snapshot_now().unwrap();
    s.set_threads(1);
    let text = s.journal_text();
    let back = Session::recover(&text).unwrap();
    assert_eq!(back.threads(), 1, "post-snapshot config replays");
    // The recovered journal still has the full history and stays armed:
    // new events append after the adopted tail.
    assert!(back.events().len() >= s.events().len());
}
