//! The `Employees` relation used by the paper's §7.4 Replicate example
//! ("replication is tabular, with predicates salary <= 5000 and
//! salary > 5000 in the horizontal dimension and the enumerated type
//! department in the vertical dimension").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tioga2_expr::{timestamp_from_parts, ScalarType, Value};
use tioga2_relational::relation::RelationBuilder;
use tioga2_relational::Relation;

const DEPARTMENTS: &[(&str, i64, i64)] = &[
    // (name, salary min, salary max) — spans straddle the paper's 5000
    // cutoff so both replicate cells are populated.
    ("sales", 2500, 7000),
    ("engineering", 3500, 9500),
    ("shipping", 2000, 5500),
    ("finance", 3000, 8500),
];

const FIRST: &[&str] = &[
    "Alex", "Blair", "Casey", "Dana", "Emery", "Flynn", "Gale", "Harper", "Indra", "Jordan", "Kim",
    "Lee", "Morgan", "Noel", "Oakley", "Parker", "Quinn", "Reese", "Sage", "Taylor",
];

const LAST: &[&str] = &[
    "Abel",
    "Boudreaux",
    "Chen",
    "Dufour",
    "Evans",
    "Fontenot",
    "Guidry",
    "Hebert",
    "Ito",
    "Jackson",
    "Kowalski",
    "Landry",
    "Moreau",
    "Nguyen",
    "Okafor",
    "Prejean",
    "Quist",
    "Romero",
    "Singh",
    "Thibodeaux",
];

/// Generate `Employees`: `id int, name text, salary int, department text,
/// hired timestamp`.
pub fn employees(n: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = RelationBuilder::new()
        .field("id", ScalarType::Int)
        .field("name", ScalarType::Text)
        .field("salary", ScalarType::Int)
        .field("department", ScalarType::Text)
        .field("hired", ScalarType::Timestamp);
    for i in 0..n {
        let dept = &DEPARTMENTS[rng.gen_range(0..DEPARTMENTS.len())];
        let salary = rng.gen_range(dept.1..=dept.2);
        let name = format!(
            "{} {}",
            FIRST[rng.gen_range(0..FIRST.len())],
            LAST[rng.gen_range(0..LAST.len())]
        );
        let hired = timestamp_from_parts(
            rng.gen_range(1975..1996),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
            9,
            0,
        );
        b = b.row(vec![
            Value::Int(i as i64),
            Value::Text(name),
            Value::Int(salary),
            Value::Text(dept.0.to_string()),
            Value::Timestamp(hired),
        ]);
    }
    b.build().expect("employee schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = employees(100, 4);
        assert_eq!(a.len(), 100);
        assert_eq!(a.tuples(), employees(100, 4).tuples());
    }

    #[test]
    fn paper_cutoff_splits_both_ways() {
        let r = employees(200, 8);
        let lo = r
            .tuples()
            .iter()
            .filter(|t| matches!(t.values()[2], Value::Int(s) if s <= 5000))
            .count();
        assert!(lo > 20 && lo < 180, "salary <= 5000 count {lo}");
    }

    #[test]
    fn all_departments_present() {
        let r = employees(200, 15);
        let mut seen = std::collections::BTreeSet::new();
        for t in r.tuples() {
            seen.insert(t.values()[3].as_text().unwrap().to_string());
        }
        assert_eq!(seen.len(), DEPARTMENTS.len());
    }
}
