//! # tioga2-datagen
//!
//! Deterministic synthetic data standing in for the paper's weather data
//! (the substitution is documented in `DESIGN.md`: the paper's examples
//! use NOAA-style North-America station/observation data we do not have;
//! these generators produce data with the same spatial and temporal
//! structure, keyed by explicit seeds so every figure is reproducible
//! bit-for-bit).
//!
//! Generators:
//!
//! * [`stations()`] — the `Stations` relation: named weather stations across
//!   North America (with a guaranteed Louisiana contingent),
//! * [`observations()`] — the `Observations` relation: per-station hourly
//!   temperature/precipitation series with latitude, altitude, seasonal
//!   and diurnal structure,
//! * [`louisiana_border`] / [`louisiana_counties`] — line-segment
//!   relations for the Figure 7 map overlay,
//! * [`employees()`] — the salary/department relation of the paper's §7.4
//!   Replicate example,
//! * [`register_standard_catalog`] — one call to set up the catalog every
//!   example, test and bench uses.

pub mod employees;
pub mod maps;
pub mod observations;
pub mod stations;

pub use employees::employees;
pub use maps::{louisiana_border, louisiana_counties};
pub use observations::{observations, ObservationConfig};
pub use stations::{stations, StationConfig, LOUISIANA_BOUNDS};

use tioga2_relational::Catalog;

/// Register the standard tables used by the paper's worked example:
/// `Stations` (n stations), `Observations` (`obs_per_station` each),
/// `LaBorder`, `LaCounties`, and `Employees`.
pub fn register_standard_catalog(
    catalog: &Catalog,
    n_stations: usize,
    obs_per_station: usize,
    seed: u64,
) {
    let st = stations(&StationConfig { n: n_stations, seed });
    let obs = observations(
        &st,
        &ObservationConfig {
            per_station: obs_per_station,
            seed: seed ^ 0x9e37,
            ..Default::default()
        },
    );
    catalog.register("Stations", st);
    catalog.register("Observations", obs);
    catalog.register("LaBorder", louisiana_border());
    catalog.register("LaCounties", louisiana_counties());
    catalog.register("Employees", employees(200, seed ^ 0xabcd));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalog_registers_all_tables() {
        let c = Catalog::new();
        register_standard_catalog(&c, 50, 10, 42);
        for t in ["Stations", "Observations", "LaBorder", "LaCounties", "Employees"] {
            assert!(c.contains(t), "missing {t}");
        }
        assert_eq!(c.snapshot("Stations").unwrap().len(), 50);
        assert_eq!(c.snapshot("Observations").unwrap().len(), 500);
    }

    #[test]
    fn catalog_generation_is_deterministic() {
        let a = Catalog::new();
        let b = Catalog::new();
        register_standard_catalog(&a, 30, 5, 7);
        register_standard_catalog(&b, 30, 5, 7);
        assert_eq!(
            a.snapshot("Stations").unwrap().tuples(),
            b.snapshot("Stations").unwrap().tuples()
        );
        assert_eq!(
            a.snapshot("Observations").unwrap().tuples(),
            b.snapshot("Observations").unwrap().tuples()
        );
    }
}
