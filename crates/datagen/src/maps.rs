//! Map line relations: a stylized Louisiana border and county grid,
//! "derived from a relation of lines defining the map" (paper §6.1,
//! Figure 7).

use tioga2_expr::{ScalarType, Value};
use tioga2_relational::relation::RelationBuilder;
use tioga2_relational::Relation;

/// Stylized Louisiana border polyline (longitude, latitude), traced
/// clockwise from the northwest corner.  Schematic, not surveyed — the
/// figure only needs a recognizable state outline for reference.
const BORDER: &[(f64, f64)] = &[
    (-94.04, 33.02),
    (-91.17, 33.01),
    (-91.20, 32.20),
    (-90.95, 31.70),
    (-91.50, 31.05),
    (-90.85, 30.70),
    (-89.85, 30.65),
    (-89.80, 30.20),
    (-89.50, 30.18),
    (-89.20, 29.70),
    (-89.00, 29.20),
    (-89.40, 28.95),
    (-90.30, 29.25),
    (-91.30, 29.50),
    (-92.20, 29.55),
    (-93.20, 29.72),
    (-93.85, 29.70),
    (-93.80, 30.40),
    (-93.70, 31.00),
    (-94.00, 31.50),
    (-94.04, 33.02),
];

/// Even-odd point-in-polygon test against the stylized border.
pub fn inside_louisiana(lon: f64, lat: f64) -> bool {
    let mut inside = false;
    let n = BORDER.len() - 1; // closed polyline: last point repeats first
    for i in 0..n {
        let (x0, y0) = BORDER[i];
        let (x1, y1) = BORDER[i + 1];
        if (y0 <= lat && lat < y1) || (y1 <= lat && lat < y0) {
            let t = (lat - y0) / (y1 - y0);
            if lon < x0 + t * (x1 - x0) {
                inside = !inside;
            }
        }
    }
    inside
}

fn line_relation(segments: impl IntoIterator<Item = ((f64, f64), (f64, f64))>) -> Relation {
    let mut b = RelationBuilder::new()
        .field("x1", ScalarType::Float)
        .field("y1", ScalarType::Float)
        .field("x2", ScalarType::Float)
        .field("y2", ScalarType::Float);
    for ((x1, y1), (x2, y2)) in segments {
        b = b.row(vec![Value::Float(x1), Value::Float(y1), Value::Float(x2), Value::Float(y2)]);
    }
    b.build().expect("line schema is valid")
}

/// The Louisiana border as a relation of line segments
/// (`x1, y1, x2, y2` — one tuple per segment).
pub fn louisiana_border() -> Relation {
    line_relation(BORDER.windows(2).map(|w| (w[0], w[1])))
}

/// A schematic county grid inside the state's bounding box (clipped to a
/// coarse interior region), giving the Figure 7 drill-down a second map
/// level.
pub fn louisiana_counties() -> Relation {
    let (lon0, lat0, lon1, lat1) = (-93.8, 29.8, -89.3, 32.8);
    let mut segments = Vec::new();
    let cols = 6;
    let rows = 5;
    for i in 0..=cols {
        let x = lon0 + (lon1 - lon0) * i as f64 / cols as f64;
        segments.push(((x, lat0), (x, lat1)));
    }
    for j in 0..=rows {
        let y = lat0 + (lat1 - lat0) * j as f64 / rows as f64;
        segments.push(((lon0, y), (lon1, y)));
    }
    line_relation(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stations::LOUISIANA_BOUNDS;

    #[test]
    fn border_is_closed_polyline() {
        let r = louisiana_border();
        assert_eq!(r.len(), BORDER.len() - 1);
        // Consecutive segments share endpoints; the chain closes.
        let first = r.tuples().first().unwrap();
        let last = r.tuples().last().unwrap();
        assert_eq!(first.values()[0], last.values()[2]);
        assert_eq!(first.values()[1], last.values()[3]);
        for w in r.tuples().windows(2) {
            assert_eq!(w[0].values()[2], w[1].values()[0]);
            assert_eq!(w[0].values()[3], w[1].values()[1]);
        }
    }

    #[test]
    fn border_within_louisiana_bounds() {
        let (lon0, lat0, lon1, lat1) = LOUISIANA_BOUNDS;
        for t in louisiana_border().tuples() {
            for (xi, yi) in [(0, 1), (2, 3)] {
                let x = t.values()[xi].as_f64().unwrap();
                let y = t.values()[yi].as_f64().unwrap();
                assert!(x >= lon0 && x <= lon1, "lon {x}");
                assert!(y >= lat0 && y <= lat1, "lat {y}");
            }
        }
    }

    #[test]
    fn point_in_polygon_agrees_with_landmarks() {
        // Baton Rouge and Shreveport are inside; Houston and Jackson are
        // outside the stylized border.
        assert!(inside_louisiana(-91.15, 30.45), "Baton Rouge");
        assert!(inside_louisiana(-93.75, 32.52), "Shreveport");
        assert!(!inside_louisiana(-95.36, 29.76), "Houston TX");
        assert!(!inside_louisiana(-90.18, 32.30), "Jackson MS");
        assert!(!inside_louisiana(-88.0, 30.0), "Gulf, east of the state");
    }

    #[test]
    fn county_grid_has_expected_lines() {
        let r = louisiana_counties();
        assert_eq!(r.len(), 7 + 6);
    }
}
