//! The `Stations` relation: weather stations across North America.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tioga2_expr::{timestamp_from_parts, ScalarType, Value};
use tioga2_relational::relation::RelationBuilder;
use tioga2_relational::Relation;

/// Louisiana bounding box `(lon_min, lat_min, lon_max, lat_max)` used by
/// the Figure 1 Restrict and the map overlay.
pub const LOUISIANA_BOUNDS: (f64, f64, f64, f64) = (-94.05, 28.9, -88.8, 33.02);

/// Regions stations are drawn from: `(state code, lon range, lat range,
/// weight)`.  Louisiana is up-weighted so the paper's worked example has
/// enough in-state stations at any catalog size.
type Region = (&'static str, (f64, f64), (f64, f64), u32);

const REGIONS: &[Region] = &[
    ("LA", (-94.0, -89.0), (29.0, 33.0), 16),
    ("TX", (-106.5, -93.6), (25.9, 36.4), 10),
    ("CA", (-124.3, -114.2), (32.6, 41.9), 8),
    ("FL", (-87.6, -80.1), (25.2, 30.9), 6),
    ("NY", (-79.7, -72.0), (40.6, 45.0), 5),
    ("WA", (-124.6, -117.0), (45.6, 48.9), 4),
    ("CO", (-109.0, -102.1), (37.0, 41.0), 4),
    ("IL", (-91.5, -87.5), (37.0, 42.5), 4),
    ("GA", (-85.6, -80.9), (30.4, 35.0), 4),
    ("AZ", (-114.8, -109.1), (31.4, 37.0), 3),
    ("MN", (-97.2, -89.6), (43.5, 49.0), 3),
    ("MT", (-116.0, -104.1), (44.4, 49.0), 3),
    ("ME", (-71.1, -67.0), (43.1, 47.4), 2),
    ("ON", (-95.1, -74.4), (41.7, 56.9), 5),
    ("QC", (-79.7, -57.1), (45.0, 62.5), 4),
    ("BC", (-139.0, -114.0), (48.3, 60.0), 4),
    ("CH", (-109.0, -103.0), (26.0, 31.7), 3),
    ("SO", (-115.0, -108.4), (26.0, 32.4), 2),
];

const NAME_FIRST: &[&str] = &[
    "Baton", "New", "Grand", "Little", "Port", "Lake", "Fort", "Saint", "Cedar", "Red", "Twin",
    "Iron", "Gulf", "Bayou", "Cypress", "Willow", "Pine", "Oak", "Silver", "North",
];

const NAME_SECOND: &[&str] = &[
    "Rouge", "Orleans", "Isle", "Rock", "Allen", "Charles", "Landing", "Ridge", "Springs",
    "Harbor", "Point", "Creek", "Falls", "Prairie", "Crossing", "Bluff", "Grove", "Shore",
    "Junction", "Hollow",
];

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct StationConfig {
    pub n: usize,
    pub seed: u64,
}

/// Generate the `Stations` relation:
/// `id int, name text, state text, longitude float, latitude float,
/// altitude float, built timestamp`.
pub fn stations(cfg: &StationConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let total_weight: u32 = REGIONS.iter().map(|r| r.3).sum();
    let mut b = RelationBuilder::new()
        .field("id", ScalarType::Int)
        .field("name", ScalarType::Text)
        .field("state", ScalarType::Text)
        .field("longitude", ScalarType::Float)
        .field("latitude", ScalarType::Float)
        .field("altitude", ScalarType::Float)
        .field("built", ScalarType::Timestamp);
    for i in 0..cfg.n {
        let mut pick = rng.gen_range(0..total_weight);
        let region = REGIONS
            .iter()
            .find(|r| {
                if pick < r.3 {
                    true
                } else {
                    pick -= r.3;
                    false
                }
            })
            .expect("weights cover the range");
        let (mut lon, mut lat);
        loop {
            lon = rng.gen_range(region.1 .0..region.1 .1);
            lat = rng.gen_range(region.2 .0..region.2 .1);
            // Louisiana samples stay inside the stylized border so map
            // overlays (Figure 7) look right; other regions are plain
            // boxes.
            if region.0 != "LA" || crate::maps::inside_louisiana(lon, lat) {
                break;
            }
        }
        // Altitude: coastal south is low, mountains west/north higher,
        // with a lognormal-ish tail.
        let base = ((lat - 25.0) * 18.0).max(0.0) + ((-95.0 - lon).max(0.0) * 40.0);
        let altitude = (base + rng.gen_range(0.0..120.0) * rng.gen_range(0.1..3.0)).max(0.0);
        let name = format!(
            "{} {}",
            NAME_FIRST[rng.gen_range(0..NAME_FIRST.len())],
            NAME_SECOND[rng.gen_range(0..NAME_SECOND.len())]
        );
        let built = timestamp_from_parts(
            rng.gen_range(1930..1995),
            rng.gen_range(1..=12),
            rng.gen_range(1..=28),
            0,
            0,
        );
        b = b.row(vec![
            Value::Int(i as i64),
            Value::Text(name),
            Value::Text(region.0.to_string()),
            Value::Float((lon * 1000.0).round() / 1000.0),
            Value::Float((lat * 1000.0).round() / 1000.0),
            Value::Float(altitude.round()),
            Value::Timestamp(built),
        ]);
    }
    b.build().expect("station schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(n: usize, seed: u64) -> Relation {
        stations(&StationConfig { n, seed })
    }

    #[test]
    fn deterministic() {
        assert_eq!(gen(100, 1).tuples(), gen(100, 1).tuples());
        assert_ne!(gen(100, 1).tuples(), gen(100, 2).tuples());
    }

    #[test]
    fn louisiana_is_well_represented() {
        let r = gen(500, 42);
        let la = r.tuples().iter().filter(|t| t.values()[2] == Value::Text("LA".into())).count();
        assert!(la > 30, "only {la} Louisiana stations out of 500");
        assert!(la < 300, "Louisiana should not dominate");
    }

    #[test]
    fn louisiana_stations_inside_bounds() {
        let r = gen(500, 7);
        let (lon0, lat0, lon1, lat1) = LOUISIANA_BOUNDS;
        for t in r.tuples() {
            if t.values()[2] == Value::Text("LA".into()) {
                let lon = t.values()[3].as_f64().unwrap();
                let lat = t.values()[4].as_f64().unwrap();
                assert!(lon >= lon0 && lon <= lon1, "lon {lon}");
                assert!(lat >= lat0 && lat <= lat1, "lat {lat}");
                assert!(
                    crate::maps::inside_louisiana(lon, lat),
                    "station at ({lon}, {lat}) is outside the border polygon"
                );
            }
        }
    }

    #[test]
    fn schema_and_values_sane() {
        let r = gen(50, 3);
        assert_eq!(r.schema().len(), 7);
        assert_eq!(r.len(), 50);
        for (i, t) in r.tuples().iter().enumerate() {
            assert_eq!(t.values()[0], Value::Int(i as i64), "ids sequential");
            let alt = t.values()[5].as_f64().unwrap();
            assert!((0.0..6000.0).contains(&alt), "altitude {alt}");
            assert!(!t.values()[1].as_text().unwrap().is_empty());
        }
    }

    #[test]
    fn many_distinct_states() {
        let r = gen(1000, 11);
        let mut states = std::collections::BTreeSet::new();
        for t in r.tuples() {
            states.insert(t.values()[2].as_text().unwrap().to_string());
        }
        assert!(states.len() >= 12, "got {} states", states.len());
    }
}
