//! The `Observations` relation: per-station weather time series.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tioga2_expr::{timestamp_from_parts, ScalarType, Value};
use tioga2_relational::relation::RelationBuilder;
use tioga2_relational::Relation;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct ObservationConfig {
    /// Observations per station.
    pub per_station: usize,
    /// Timestamp of the first observation.
    pub start: i64,
    /// Seconds between observations.
    pub step: i64,
    pub seed: u64,
}

impl Default for ObservationConfig {
    fn default() -> Self {
        ObservationConfig {
            per_station: 24,
            // The paper predates 1996; Figure 11 splits at 1990, so the
            // default series spans 1985–1995 when per_station is large.
            start: timestamp_from_parts(1985, 1, 1, 0, 0),
            step: 6 * 3600,
            seed: 0,
        }
    }
}

/// Generate the `Observations` relation:
/// `station_id int, time timestamp, temperature float, precipitation
/// float`.
///
/// Temperature combines a latitude gradient, an altitude lapse rate, a
/// seasonal sinusoid, a diurnal sinusoid and noise, so drill-down views
/// at any scale show plausible structure.  Precipitation is bursty:
/// mostly zero with occasional showers whose intensity grows toward the
/// Gulf coast.
pub fn observations(stations: &Relation, cfg: &ObservationConfig) -> Relation {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let id_idx = stations.schema().index_of("id").expect("stations has id");
    let lat_idx = stations.schema().index_of("latitude").expect("stations has latitude");
    let alt_idx = stations.schema().index_of("altitude").expect("stations has altitude");

    let mut b = RelationBuilder::new()
        .field("station_id", ScalarType::Int)
        .field("time", ScalarType::Timestamp)
        .field("temperature", ScalarType::Float)
        .field("precipitation", ScalarType::Float);

    for t in stations.tuples() {
        let id = t.values()[id_idx].clone();
        let lat = t.values()[lat_idx].as_f64().unwrap_or(30.0);
        let alt = t.values()[alt_idx].as_f64().unwrap_or(0.0);
        let base = 32.0 - (lat - 25.0) * 0.9 - alt * 0.0065;
        let wetness = ((33.0 - lat) / 8.0).clamp(0.2, 1.5);
        for k in 0..cfg.per_station {
            let ts = cfg.start + k as i64 * cfg.step;
            let day_frac = (ts.rem_euclid(86_400)) as f64 / 86_400.0;
            let year_frac = (ts.rem_euclid(31_557_600)) as f64 / 31_557_600.0;
            let seasonal = -10.0 * (std::f64::consts::TAU * (year_frac + 0.04)).cos();
            let diurnal = -4.0 * (std::f64::consts::TAU * day_frac).cos();
            let noise: f64 = rng.gen_range(-2.0..2.0);
            let temp = base + seasonal + diurnal + noise;
            let precip = if rng.gen::<f64>() < 0.22 * wetness {
                let burst: f64 = rng.gen_range(0.0..1.0);
                (burst * burst * 25.0 * wetness * 100.0).round() / 100.0
            } else {
                0.0
            };
            b = b.row(vec![
                id.clone(),
                Value::Timestamp(ts),
                Value::Float((temp * 10.0).round() / 10.0),
                Value::Float(precip),
            ]);
        }
    }
    b.build().expect("observation schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stations::{stations, StationConfig};

    fn obs(per: usize, seed: u64) -> Relation {
        let st = stations(&StationConfig { n: 20, seed: 1 });
        observations(&st, &ObservationConfig { per_station: per, seed, ..Default::default() })
    }

    #[test]
    fn cardinality_and_determinism() {
        let a = obs(12, 5);
        assert_eq!(a.len(), 240);
        assert_eq!(a.tuples(), obs(12, 5).tuples());
        assert_ne!(a.tuples(), obs(12, 6).tuples());
    }

    #[test]
    fn temperatures_physical() {
        let r = obs(40, 9);
        for t in r.tuples() {
            let temp = t.values()[2].as_f64().unwrap();
            assert!((-60.0..60.0).contains(&temp), "temperature {temp}");
        }
    }

    #[test]
    fn precipitation_bursty_nonnegative() {
        let r = obs(100, 13);
        let mut dry = 0usize;
        for t in r.tuples() {
            let p = t.values()[3].as_f64().unwrap();
            assert!(p >= 0.0);
            if p == 0.0 {
                dry += 1;
            }
        }
        let frac = dry as f64 / r.len() as f64;
        assert!(frac > 0.4 && frac < 0.95, "dry fraction {frac}");
    }

    #[test]
    fn seasonal_signal_present() {
        // January should average colder than July for a northern station.
        let st = stations(&StationConfig { n: 1, seed: 3 });
        let r = observations(
            &st,
            &ObservationConfig { per_station: 365 * 4, step: 6 * 3600, ..Default::default() },
        );
        let mut jan = (0.0, 0usize);
        let mut jul = (0.0, 0usize);
        for t in r.tuples() {
            let ts = match t.values()[1] {
                Value::Timestamp(x) => x,
                _ => unreachable!(),
            };
            let month = tioga2_expr::value::timestamp_parts(ts).1;
            let temp = t.values()[2].as_f64().unwrap();
            if month == 1 {
                jan = (jan.0 + temp, jan.1 + 1);
            } else if month == 7 {
                jul = (jul.0 + temp, jul.1 + 1);
            }
        }
        let jan_avg = jan.0 / jan.1 as f64;
        let jul_avg = jul.0 / jul.1 as f64;
        assert!(jul_avg > jan_avg + 8.0, "jan {jan_avg:.1} vs jul {jul_avg:.1}");
    }

    #[test]
    fn figure11_cutoff_has_data_on_both_sides() {
        let st = stations(&StationConfig { n: 3, seed: 2 });
        let r = observations(
            &st,
            &ObservationConfig { per_station: 4000, step: 86_400, ..Default::default() },
        );
        let cutoff = timestamp_from_parts(1990, 1, 1, 0, 0);
        let before = r
            .tuples()
            .iter()
            .filter(|t| matches!(t.values()[1], Value::Timestamp(x) if x < cutoff))
            .count();
        assert!(before > 0 && before < r.len(), "both sides of 1990 populated");
    }

    #[test]
    fn joins_back_to_stations() {
        let st = stations(&StationConfig { n: 10, seed: 1 });
        let ob = observations(&st, &ObservationConfig { per_station: 3, ..Default::default() });
        let j =
            tioga2_relational::ops::join(&st, &ob, &tioga2_expr::parse("id = station_id").unwrap())
                .unwrap();
        assert_eq!(j.len(), 30);
    }
}
