//! The world ↔ screen transform.
//!
//! A Tioga-2 viewer has an (n+1)-dimensional position: a pan location in
//! the n viewing dimensions plus an **elevation** (§2).  For the two
//! screen dimensions the transform is determined by the pan center and
//! the elevation; we define the visible world *height* to equal the
//! elevation, so zooming in (descending) shows less of the world and
//! elevation → 0 is the wormhole pass-through limit (§6.2).
//!
//! World coordinates follow mathematical convention (y grows up); pixel
//! coordinates follow raster convention (y grows down).

/// World↔screen transform for one canvas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viewport {
    /// World coordinates at the center of the screen.
    pub center: (f64, f64),
    /// Elevation: the visible world height.  Must be positive.
    pub elevation: f64,
    /// Screen size in pixels.
    pub width_px: u32,
    pub height_px: u32,
}

impl Viewport {
    pub fn new(center: (f64, f64), elevation: f64, width_px: u32, height_px: u32) -> Self {
        Viewport { center, elevation: elevation.max(f64::MIN_POSITIVE), width_px, height_px }
    }

    /// Pixels per world unit.
    pub fn scale(&self) -> f64 {
        self.height_px as f64 / self.elevation
    }

    /// Visible world width (aspect-corrected).
    pub fn world_width(&self) -> f64 {
        self.width_px as f64 / self.scale()
    }

    /// Visible world rectangle `(min_x, min_y, max_x, max_y)`.
    pub fn world_bounds(&self) -> (f64, f64, f64, f64) {
        let hw = self.world_width() / 2.0;
        let hh = self.elevation / 2.0;
        (self.center.0 - hw, self.center.1 - hh, self.center.0 + hw, self.center.1 + hh)
    }

    /// World → screen pixels (y flipped).
    pub fn to_screen(&self, wx: f64, wy: f64) -> (i32, i32) {
        let s = self.scale();
        let x = (wx - self.center.0) * s + self.width_px as f64 / 2.0;
        let y = self.height_px as f64 / 2.0 - (wy - self.center.1) * s;
        (x.round() as i32, y.round() as i32)
    }

    /// Screen pixels → world.
    pub fn to_world(&self, px: i32, py: i32) -> (f64, f64) {
        let s = self.scale();
        let wx = (px as f64 - self.width_px as f64 / 2.0) / s + self.center.0;
        let wy = (self.height_px as f64 / 2.0 - py as f64) / s + self.center.1;
        (wx, wy)
    }

    /// A world length in pixels.
    pub fn len_to_px(&self, len: f64) -> i32 {
        (len * self.scale()).round() as i32
    }

    /// Pan by a screen-pixel delta (e.g. a drag gesture).
    pub fn pan_px(&mut self, dx_px: i32, dy_px: i32) {
        let s = self.scale();
        self.center.0 -= dx_px as f64 / s;
        self.center.1 += dy_px as f64 / s;
    }

    /// Multiply the elevation by `factor` (< 1 zooms in, > 1 zooms out),
    /// keeping the world point under the screen center fixed.
    pub fn zoom(&mut self, factor: f64) {
        self.elevation = (self.elevation * factor).max(f64::MIN_POSITIVE);
    }

    /// Fit the viewport to show the world rectangle with a margin factor
    /// (1.1 = 10% border).  Degenerate rectangles get a unit window.
    pub fn fit(bounds: (f64, f64, f64, f64), width_px: u32, height_px: u32, margin: f64) -> Self {
        let (x0, y0, x1, y1) = bounds;
        let cx = (x0 + x1) / 2.0;
        let cy = (y0 + y1) / 2.0;
        let w = (x1 - x0).abs().max(1e-9);
        let h = (y1 - y0).abs().max(1e-9);
        // Elevation must fit both height and (aspect-scaled) width.
        let aspect = width_px.max(1) as f64 / height_px.max(1) as f64;
        let elev = (h.max(w / aspect) * margin).max(1e-9);
        Viewport::new((cx, cy), elev, width_px, height_px)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vp() -> Viewport {
        Viewport::new((10.0, 20.0), 100.0, 400, 200)
    }

    #[test]
    fn center_maps_to_screen_center() {
        let v = vp();
        assert_eq!(v.to_screen(10.0, 20.0), (200, 100));
    }

    #[test]
    fn y_axis_flips() {
        let v = vp();
        let (_, py_up) = v.to_screen(10.0, 30.0);
        let (_, py_down) = v.to_screen(10.0, 10.0);
        assert!(py_up < 100 && py_down > 100, "world up is screen up");
    }

    #[test]
    fn roundtrip_world_screen() {
        let v = vp();
        for &(wx, wy) in &[(10.0, 20.0), (0.0, 0.0), (-35.5, 61.25)] {
            let (px, py) = v.to_screen(wx, wy);
            let (bx, by) = v.to_world(px, py);
            assert!((bx - wx).abs() < 1.0 && (by - wy).abs() < 1.0, "({wx},{wy}) -> ({bx},{by})");
        }
    }

    #[test]
    fn elevation_is_visible_height() {
        let v = vp();
        let (_, y0, _, y1) = v.world_bounds();
        assert!((y1 - y0 - 100.0).abs() < 1e-9);
        // Aspect 2:1 → world width is double.
        assert!((v.world_width() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn zoom_in_shows_less() {
        let mut v = vp();
        v.zoom(0.5);
        assert_eq!(v.elevation, 50.0);
        assert_eq!(v.scale(), 4.0);
        v.zoom(0.0); // clamped, never reaches zero
        assert!(v.elevation > 0.0);
    }

    #[test]
    fn pan_px_moves_center() {
        let mut v = vp();
        // scale = 2 px per world unit; drag right 20px = move center left 10.
        v.pan_px(20, 0);
        assert!((v.center.0 - 0.0).abs() < 1e-9);
        v.pan_px(0, -20);
        assert!((v.center.1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fit_contains_bounds() {
        let v = Viewport::fit((-91.0, 29.0, -89.0, 33.0), 400, 400, 1.1);
        let (x0, y0, x1, y1) = v.world_bounds();
        assert!(x0 <= -91.0 && x1 >= -89.0 && y0 <= 29.0 && y1 >= 33.0);
        // Wide bounds on a square screen still fit horizontally.
        let v2 = Viewport::fit((0.0, 0.0, 100.0, 1.0), 400, 400, 1.0);
        let (x0, _, x1, _) = v2.world_bounds();
        assert!(x0 <= 0.0 && x1 >= 100.0);
    }

    #[test]
    fn fit_degenerate_bounds() {
        let v = Viewport::fit((5.0, 5.0, 5.0, 5.0), 100, 100, 1.1);
        assert!(v.elevation > 0.0);
        assert_eq!(v.to_screen(5.0, 5.0), (50, 50));
    }

    #[test]
    fn len_to_px() {
        let v = vp();
        assert_eq!(v.len_to_px(10.0), 20);
    }
}
