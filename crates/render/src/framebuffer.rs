//! RGBA framebuffer with clipped primitive rasterization.

use tioga2_expr::Color;

/// A width × height RGBA-8888 pixel buffer.  (0, 0) is the top-left
/// corner; x grows right, y grows down (standard raster convention — the
/// [`crate::Viewport`] flips world y so world y grows upward).
#[derive(Debug, Clone, PartialEq)]
pub struct Framebuffer {
    width: u32,
    height: u32,
    pixels: Vec<[u8; 4]>,
}

impl Framebuffer {
    pub fn new(width: u32, height: u32) -> Self {
        Framebuffer {
            width,
            height,
            pixels: vec![[255, 255, 255, 255]; (width as usize) * (height as usize)],
        }
    }

    pub fn width(&self) -> u32 {
        self.width
    }

    pub fn height(&self) -> u32 {
        self.height
    }

    pub fn pixels(&self) -> &[[u8; 4]] {
        &self.pixels
    }

    pub fn clear(&mut self, color: Color) {
        let px = [color.r, color.g, color.b, color.a];
        self.pixels.fill(px);
    }

    #[inline]
    pub fn get(&self, x: i32, y: i32) -> Option<[u8; 4]> {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
            return None;
        }
        Some(self.pixels[y as usize * self.width as usize + x as usize])
    }

    /// Set a pixel; out-of-bounds writes are silently clipped.
    #[inline]
    pub fn set(&mut self, x: i32, y: i32, color: Color) {
        if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 || color.a == 0 {
            return;
        }
        let idx = y as usize * self.width as usize + x as usize;
        if color.a == 255 {
            self.pixels[idx] = [color.r, color.g, color.b, 255];
        } else {
            // Source-over blend for translucent marks.
            let dst = self.pixels[idx];
            let a = color.a as u32;
            let inv = 255 - a;
            self.pixels[idx] = [
                ((color.r as u32 * a + dst[0] as u32 * inv) / 255) as u8,
                ((color.g as u32 * a + dst[1] as u32 * inv) / 255) as u8,
                ((color.b as u32 * a + dst[2] as u32 * inv) / 255) as u8,
                255,
            ];
        }
    }

    /// Fraction of pixels that differ from pure white — a cheap "did
    /// anything draw?" probe used heavily by tests.
    pub fn ink_fraction(&self) -> f64 {
        let ink = self.pixels.iter().filter(|p| p[0] != 255 || p[1] != 255 || p[2] != 255).count();
        ink as f64 / self.pixels.len().max(1) as f64
    }

    /// Count pixels of exactly `color` (ignoring alpha).
    pub fn count_color(&self, color: Color) -> usize {
        self.pixels.iter().filter(|p| p[0] == color.r && p[1] == color.g && p[2] == color.b).count()
    }

    /// A point, rendered as a filled square of side `size` centered on
    /// (x, y).
    pub fn draw_point(&mut self, x: i32, y: i32, size: u32, color: Color) {
        let half = (size.max(1) / 2) as i32;
        for dy in -half..=half {
            for dx in -half..=half {
                self.set(x + dx, y + dy, color);
            }
        }
    }

    /// Clip a segment to the buffer rectangle (expanded by `pad`) with
    /// Liang-Barsky; None if fully outside.
    fn clip_segment(
        &self,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        pad: f64,
    ) -> Option<(i32, i32, i32, i32)> {
        let (min_x, min_y) = (-pad, -pad);
        let (max_x, max_y) = (self.width as f64 + pad, self.height as f64 + pad);
        let (dx, dy) = (x1 - x0, y1 - y0);
        let mut t0 = 0.0f64;
        let mut t1 = 1.0f64;
        for (p, q) in [(-dx, x0 - min_x), (dx, max_x - x0), (-dy, y0 - min_y), (dy, max_y - y0)] {
            if p == 0.0 {
                if q < 0.0 {
                    return None;
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    if r > t1 {
                        return None;
                    }
                    if r > t0 {
                        t0 = r;
                    }
                } else {
                    if r < t0 {
                        return None;
                    }
                    if r < t1 {
                        t1 = r;
                    }
                }
            }
        }
        Some((
            (x0 + t0 * dx).round() as i32,
            (y0 + t0 * dy).round() as i32,
            (x0 + t1 * dx).round() as i32,
            (y0 + t1 * dy).round() as i32,
        ))
    }

    /// Bresenham line with square pen of width `width`.  Segments are
    /// clipped to the buffer first, so arbitrarily long lines (extreme
    /// zoom) stay O(buffer size).
    pub fn draw_line(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, width: u32, color: Color) {
        let pad = width as f64 + 1.0;
        let Some((x0, y0, x1, y1)) =
            self.clip_segment(x0 as f64, y0 as f64, x1 as f64, y1 as f64, pad)
        else {
            return;
        };
        let (mut x, mut y) = (x0, y0);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        loop {
            self.draw_point(x, y, width, color);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    pub fn fill_rect(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, color: Color) {
        let (x0, x1) = (x0.min(x1), x0.max(x1));
        let (y0, y1) = (y0.min(y1), y0.max(y1));
        for y in y0.max(0)..=y1.min(self.height as i32 - 1) {
            for x in x0.max(0)..=x1.min(self.width as i32 - 1) {
                self.set(x, y, color);
            }
        }
    }

    pub fn draw_rect(&mut self, x0: i32, y0: i32, x1: i32, y1: i32, width: u32, color: Color) {
        self.draw_line(x0, y0, x1, y0, width, color);
        self.draw_line(x1, y0, x1, y1, width, color);
        self.draw_line(x1, y1, x0, y1, width, color);
        self.draw_line(x0, y1, x0, y0, width, color);
    }

    pub fn fill_circle(&mut self, cx: i32, cy: i32, r: i32, color: Color) {
        // Clip the row range to the buffer and use i64 math so huge radii
        // (deep zoom) stay cheap and overflow-free.
        let r = r.max(0) as i64;
        let (cx, cy) = (cx as i64, cy as i64);
        let y_lo = (cy - r).max(0);
        let y_hi = (cy + r).min(self.height as i64 - 1);
        for y in y_lo..=y_hi {
            let dy = y - cy;
            let half = ((r * r - dy * dy) as f64).sqrt() as i64;
            let x_lo = (cx - half).max(0);
            let x_hi = (cx + half).min(self.width as i64 - 1);
            for x in x_lo..=x_hi {
                self.set(x as i32, y as i32, color);
            }
        }
    }

    /// Midpoint circle outline.
    pub fn draw_circle(&mut self, cx: i32, cy: i32, r: i32, width: u32, color: Color) {
        if r <= 0 {
            self.draw_point(cx, cy, width, color);
            return;
        }
        let span = (self.width + self.height) as i32;
        if r > span * 4 {
            // The visible part of so large a circle is near-straight; the
            // buffer intersects at most a shallow arc.  Draw it as chords
            // (clipped lines) instead of walking millions of perimeter
            // pixels.
            let rf = r as f64;
            let steps = 64;
            let mut prev: Option<(i32, i32)> = None;
            for i in 0..=steps {
                let a = std::f64::consts::TAU * i as f64 / steps as f64;
                let px = cx as f64 + rf * a.cos();
                let py = cy as f64 + rf * a.sin();
                let p = (
                    px.clamp(i32::MIN as f64, i32::MAX as f64) as i32,
                    py.clamp(i32::MIN as f64, i32::MAX as f64) as i32,
                );
                if let Some(q) = prev {
                    self.draw_line(q.0, q.1, p.0, p.1, width, color);
                }
                prev = Some(p);
            }
            return;
        }
        let mut x = r;
        let mut y = 0;
        let mut err = 1 - r;
        while x >= y {
            for (px, py) in [
                (cx + x, cy + y),
                (cx + y, cy + x),
                (cx - y, cy + x),
                (cx - x, cy + y),
                (cx - x, cy - y),
                (cx - y, cy - x),
                (cx + y, cy - x),
                (cx + x, cy - y),
            ] {
                self.draw_point(px, py, width, color);
            }
            y += 1;
            if err < 0 {
                err += 2 * y + 1;
            } else {
                x -= 1;
                err += 2 * (y - x) + 1;
            }
        }
    }

    /// Scanline polygon fill (even-odd rule).
    pub fn fill_polygon(&mut self, pts: &[(i32, i32)], color: Color) {
        if pts.len() < 3 {
            return;
        }
        let min_y = pts.iter().map(|p| p.1).min().unwrap().max(0);
        let max_y = pts.iter().map(|p| p.1).max().unwrap().min(self.height as i32 - 1);
        for y in min_y..=max_y {
            let mut xs: Vec<i32> = Vec::new();
            let n = pts.len();
            for i in 0..n {
                let (x0, y0) = pts[i];
                let (x1, y1) = pts[(i + 1) % n];
                if (y0 <= y && y < y1) || (y1 <= y && y < y0) {
                    let t = (y - y0) as f64 / (y1 - y0) as f64;
                    xs.push((x0 as f64 + t * (x1 - x0) as f64).round() as i32);
                }
            }
            xs.sort_unstable();
            for pair in xs.chunks(2) {
                if let [a, b] = pair {
                    for x in (*a).max(0)..=(*b).min(self.width as i32 - 1) {
                        self.set(x, y, color);
                    }
                }
            }
        }
    }

    pub fn draw_polygon(&mut self, pts: &[(i32, i32)], width: u32, color: Color) {
        if pts.is_empty() {
            return;
        }
        let n = pts.len();
        for i in 0..n {
            let (x0, y0) = pts[i];
            let (x1, y1) = pts[(i + 1) % n];
            self.draw_line(x0, y0, x1, y1, width, color);
        }
    }

    /// Copy `src` into this buffer with its top-left corner at (x, y),
    /// clipping at the edges.  Used for magnifying glasses and wormhole
    /// apertures (viewer-in-viewer rendering).
    pub fn blit(&mut self, src: &Framebuffer, x: i32, y: i32) {
        for sy in 0..src.height as i32 {
            for sx in 0..src.width as i32 {
                if let Some(px) = src.get(sx, sy) {
                    self.set(x + sx, y + sy, Color { r: px[0], g: px[1], b: px[2], a: px[3] });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_white() {
        let fb = Framebuffer::new(4, 3);
        assert_eq!(fb.pixels().len(), 12);
        assert_eq!(fb.ink_fraction(), 0.0);
        assert_eq!(fb.get(0, 0), Some([255, 255, 255, 255]));
        assert_eq!(fb.get(4, 0), None);
        assert_eq!(fb.get(-1, 0), None);
    }

    #[test]
    fn set_clips_out_of_bounds() {
        let mut fb = Framebuffer::new(2, 2);
        fb.set(-5, 0, Color::RED);
        fb.set(0, 99, Color::RED);
        assert_eq!(fb.ink_fraction(), 0.0);
        fb.set(1, 1, Color::RED);
        assert_eq!(fb.count_color(Color::RED), 1);
    }

    #[test]
    fn alpha_blend() {
        let mut fb = Framebuffer::new(1, 1);
        fb.set(0, 0, Color { r: 0, g: 0, b: 0, a: 128 });
        let p = fb.get(0, 0).unwrap();
        assert!(p[0] > 100 && p[0] < 150, "half-blend of black over white, got {}", p[0]);
        // Zero alpha is a no-op.
        let mut fb2 = Framebuffer::new(1, 1);
        fb2.set(0, 0, Color { r: 0, g: 0, b: 0, a: 0 });
        assert_eq!(fb2.ink_fraction(), 0.0);
    }

    #[test]
    fn line_endpoints_drawn() {
        let mut fb = Framebuffer::new(10, 10);
        fb.draw_line(1, 1, 8, 6, 1, Color::BLUE);
        assert_eq!(fb.get(1, 1).unwrap()[2], Color::BLUE.b);
        assert_eq!(fb.get(8, 6).unwrap()[2], Color::BLUE.b);
        assert!(fb.count_color(Color::BLUE) >= 8);
    }

    #[test]
    fn line_clips_safely() {
        let mut fb = Framebuffer::new(4, 4);
        fb.draw_line(-100, -50, 100, 50, 3, Color::BLACK);
        assert!(fb.ink_fraction() > 0.0);
    }

    #[test]
    fn rect_fill_and_outline() {
        let mut fb = Framebuffer::new(10, 10);
        fb.fill_rect(2, 2, 5, 4, Color::GREEN);
        assert_eq!(fb.count_color(Color::GREEN), 4 * 3);
        let mut fb2 = Framebuffer::new(10, 10);
        fb2.draw_rect(2, 2, 7, 7, 1, Color::BLACK);
        assert!(fb2.get(2, 4).is_some_and(|p| p[0] == 0));
        assert_eq!(fb2.get(4, 4), Some([255, 255, 255, 255]), "interior empty");
        // Inverted corners normalize.
        let mut fb3 = Framebuffer::new(10, 10);
        fb3.fill_rect(5, 4, 2, 2, Color::GREEN);
        assert_eq!(fb3.count_color(Color::GREEN), 4 * 3);
    }

    #[test]
    fn circle_fill_contains_center_and_respects_radius() {
        let mut fb = Framebuffer::new(21, 21);
        fb.fill_circle(10, 10, 5, Color::RED);
        assert_eq!(fb.get(10, 10).unwrap()[0], Color::RED.r);
        assert_eq!(fb.get(10, 4).unwrap(), [255, 255, 255, 255], "outside radius");
        let area = fb.count_color(Color::RED) as f64;
        let expect = std::f64::consts::PI * 25.0;
        assert!((area - expect).abs() < expect * 0.3, "area {area} vs {expect}");
    }

    #[test]
    fn circle_outline_on_perimeter() {
        let mut fb = Framebuffer::new(21, 21);
        fb.draw_circle(10, 10, 5, 1, Color::BLACK);
        assert_eq!(fb.get(15, 10).unwrap()[0], 0);
        assert_eq!(fb.get(10, 15).unwrap()[0], 0);
        assert_eq!(fb.get(10, 10), Some([255, 255, 255, 255]), "center empty");
        // Degenerate radius draws a point.
        let mut fb2 = Framebuffer::new(5, 5);
        fb2.draw_circle(2, 2, 0, 1, Color::BLACK);
        assert_eq!(fb2.get(2, 2).unwrap()[0], 0);
    }

    #[test]
    fn polygon_fill_even_odd() {
        let mut fb = Framebuffer::new(20, 20);
        fb.fill_polygon(&[(2, 2), (17, 2), (17, 17), (2, 17)], Color::BLUE);
        assert_eq!(fb.get(10, 10).unwrap()[2], Color::BLUE.b);
        assert_eq!(fb.get(1, 1), Some([255, 255, 255, 255]));
        // Triangle.
        let mut fb2 = Framebuffer::new(20, 20);
        fb2.fill_polygon(&[(10, 2), (18, 18), (2, 18)], Color::RED);
        assert_eq!(fb2.get(10, 10).unwrap()[0], Color::RED.r);
        assert_eq!(fb2.get(2, 3), Some([255, 255, 255, 255]));
        // Degenerate polygons are no-ops.
        let mut fb3 = Framebuffer::new(5, 5);
        fb3.fill_polygon(&[(1, 1), (2, 2)], Color::RED);
        assert_eq!(fb3.ink_fraction(), 0.0);
    }

    #[test]
    fn blit_clips() {
        let mut dst = Framebuffer::new(8, 8);
        let mut src = Framebuffer::new(4, 4);
        src.clear(Color::RED);
        dst.blit(&src, 6, 6);
        assert_eq!(dst.count_color(Color::RED), 4, "only the 2x2 overlap lands");
        dst.blit(&src, 0, 0);
        assert_eq!(dst.count_color(Color::RED), 16 + 4);
    }

    #[test]
    fn clear_fills() {
        let mut fb = Framebuffer::new(3, 3);
        fb.clear(Color::BLACK);
        assert_eq!(fb.count_color(Color::BLACK), 9);
    }
}
