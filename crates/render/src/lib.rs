//! # tioga2-render
//!
//! A deterministic, dependency-free software rasterizer — the substitute
//! for the X11 canvas of the original Tioga-2 design (the substitution is
//! documented in `DESIGN.md`).  The paper's direct-manipulation semantics
//! are about *what a gesture means as a program edit*, not about a
//! windowing toolkit; a headless canvas lets the test suite assert
//! pixel-level outcomes of every gesture, which an interactive GUI could
//! not.
//!
//! Contents:
//!
//! * [`Framebuffer`] — an RGBA pixel buffer with clipped primitive
//!   rasterization (Bresenham lines, midpoint circles, scanline polygon
//!   fill) and sub-buffer blitting (used for magnifying glasses and
//!   wormhole previews),
//! * [`font`] — a 5×7 bitmap font for the text drawable,
//! * [`Viewport`] — the world↔screen transform driven by pan position and
//!   elevation (paper §2: a viewer has an n+1-dimensional position; zoom
//!   changes the elevation),
//! * [`Scene`] — a display list of positioned drawables with tuple
//!   provenance, rendered to a framebuffer while building a [`HitIndex`]
//!   (screen object → tuple) for the update machinery of §8, and
//! * [`ppm`] / [`svg`] — image writers.

pub mod font;
pub mod framebuffer;
pub mod hittest;
pub mod ppm;
pub mod scene;
pub mod svg;
pub mod viewport;

pub use framebuffer::Framebuffer;
pub use hittest::{HitIndex, HitRecord, Provenance};
pub use scene::{render_scene, Scene, SceneItem};
pub use viewport::Viewport;
