//! Scenes: display lists of positioned drawables with tuple provenance.
//!
//! The viewer layer lowers displayables to a `Scene` (one item per
//! drawable per visible tuple, in composite draw order) and this module
//! rasterizes the scene through a [`Viewport`], producing the pixels and
//! the [`HitIndex`] that maps screen objects back to tuples.
//!
//! Geometry semantics: shape extents (circle radii, rectangle sizes, line
//! vectors, polygon vertices, drawable offsets) are **world units** — they
//! scale with zoom.  Text renders at a fixed pixel size regardless of
//! elevation, like real map labels; this is why the paper's Figure 7
//! range-limits the name layer "at high elevations, where they would be
//! illegible".

use crate::font;
use crate::framebuffer::Framebuffer;
use crate::hittest::{HitIndex, HitRecord, Provenance};
use crate::viewport::Viewport;
use tioga2_expr::{Color, Drawable, Shape};
use tioga2_obs::Recorder;

/// One positioned drawable.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneItem {
    /// World position of the owning tuple (x, y location attributes plus
    /// any overlay offset).
    pub world: (f64, f64),
    pub drawable: Drawable,
    pub provenance: Provenance,
}

/// A display list in drawing order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scene {
    pub items: Vec<SceneItem>,
}

impl Scene {
    pub fn push(&mut self, item: SceneItem) {
        self.items.push(item);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

fn clamp_px(v: f64) -> i32 {
    v.clamp(i32::MIN as f64, i32::MAX as f64).round() as i32
}

/// Render `scene` into `fb` through `vp`, returning the hit index.
/// Items whose bounding box misses the screen entirely are skipped (and
/// therefore not clickable).
pub fn render_scene(scene: &Scene, vp: &Viewport, fb: &mut Framebuffer) -> HitIndex {
    let mut hits = HitIndex::default();
    for (idx, item) in scene.items.iter().enumerate() {
        if let Some(bbox) = draw_item(item, vp, fb) {
            hits.push(HitRecord {
                bbox,
                kind: item.drawable.kind(),
                provenance: item.provenance.clone(),
                scene_index: idx,
            });
        }
    }
    hits
}

/// [`render_scene`] wrapped in a `render.draw` span recording items
/// drawn vs. culled, with wall time fed to the recorder's latency
/// histogram.  With a disabled recorder this is the plain raster pass.
pub fn render_scene_recorded(
    scene: &Scene,
    vp: &Viewport,
    fb: &mut Framebuffer,
    rec: &dyn Recorder,
) -> HitIndex {
    if !rec.is_enabled() {
        return render_scene(scene, vp, fb);
    }
    let span = rec.span_begin("render.draw", "");
    let hits = render_scene(scene, vp, fb);
    rec.span_end(
        span,
        &[
            ("items", scene.items.len() as i64),
            ("drawn", hits.len() as i64),
            ("culled", (scene.items.len() - hits.len()) as i64),
        ],
    );
    hits
}

/// Screen bbox of an item without drawing (used by wormhole pass-through
/// checks).
pub fn item_screen_bbox(item: &SceneItem, vp: &Viewport) -> (i32, i32, i32, i32) {
    let (wx0, wy0, wx1, wy1) = item.drawable.bounds();
    let (ax, ay) = item.world;
    let (px0, py1) = vp.to_screen(ax + wx0, ay + wy0);
    let (px1, py0) = vp.to_screen(ax + wx1, ay + wy1);
    if let Shape::Text { content } = &item.drawable.shape {
        let (tw, th) = font::text_extent(content, item.drawable.style.text_scale);
        let (cx, cy) = vp.to_screen(ax + item.drawable.offset.0, ay + item.drawable.offset.1);
        return (cx - tw as i32 / 2, cy - th as i32 / 2, cx + tw as i32 / 2, cy + th as i32 / 2);
    }
    // Ensure at least a 1px box so degenerate shapes stay clickable.
    (px0.min(px1), py0.min(py1), px0.max(px1).saturating_add(1), py0.max(py1).saturating_add(1))
}

fn on_screen(bbox: (i32, i32, i32, i32), fb: &Framebuffer) -> bool {
    let (x0, y0, x1, y1) = bbox;
    x1 >= 0 && y1 >= 0 && x0 < fb.width() as i32 && y0 < fb.height() as i32
}

fn draw_item(
    item: &SceneItem,
    vp: &Viewport,
    fb: &mut Framebuffer,
) -> Option<(i32, i32, i32, i32)> {
    let bbox = item_screen_bbox(item, vp);
    if !on_screen(bbox, fb) {
        return None;
    }
    let d = &item.drawable;
    let (ax, ay) = (item.world.0 + d.offset.0, item.world.1 + d.offset.1);
    let (cx, cy) = {
        let (x, y) = vp.to_screen(ax, ay);
        (x, y)
    };
    let color = d.color;
    let sw = d.style.stroke_width.max(1);
    match &d.shape {
        Shape::Point => fb.draw_point(cx, cy, sw, color),
        Shape::Line { dx, dy } => {
            let (x1, y1) = vp.to_screen(ax + dx, ay + dy);
            fb.draw_line(cx, cy, x1, y1, sw, color);
        }
        Shape::Rect { w, h } => {
            let hw = (vp.len_to_px(*w) / 2).max(0);
            let hh = (vp.len_to_px(*h) / 2).max(0);
            let (x0, y0) = (cx.saturating_sub(hw), cy.saturating_sub(hh));
            let (x1, y1) = (cx.saturating_add(hw), cy.saturating_add(hh));
            if d.style.filled {
                fb.fill_rect(x0, y0, x1, y1, color);
            } else {
                fb.draw_rect(x0, y0, x1, y1, sw, color);
            }
        }
        Shape::Circle { radius } => {
            let r = vp.len_to_px(*radius).max(1);
            if d.style.filled {
                fb.fill_circle(cx, cy, r, color);
            } else {
                fb.draw_circle(cx, cy, r, sw, color);
            }
        }
        Shape::Polygon { points } => {
            let pts: Vec<(i32, i32)> = points
                .iter()
                .map(|(px, py)| vp.to_screen(ax + px, ay + py))
                .map(|(x, y)| (clamp_px(x as f64), clamp_px(y as f64)))
                .collect();
            if d.style.filled {
                fb.fill_polygon(&pts, color);
            } else {
                fb.draw_polygon(&pts, sw, color);
            }
        }
        Shape::Text { content } => {
            let (tw, th) = font::text_extent(content, d.style.text_scale);
            font::draw_text(
                fb,
                cx - tw as i32 / 2,
                cy - th as i32 / 2,
                content,
                color,
                d.style.text_scale,
            );
        }
        Shape::Viewer(spec) => {
            // The wormhole aperture: a framed window.  The destination
            // canvas's preview is blitted by the viewer runtime; here we
            // draw the frame and a faint backdrop so an unfilled wormhole
            // is still visible.
            let hw = (vp.len_to_px(spec.size.0) / 2).max(2);
            let hh = (vp.len_to_px(spec.size.1) / 2).max(2);
            let (x0, y0) = (cx.saturating_sub(hw), cy.saturating_sub(hh));
            let (x1, y1) = (cx.saturating_add(hw), cy.saturating_add(hh));
            fb.fill_rect(x0, y0, x1, y1, Color { r: 235, g: 235, b: 245, a: 255 });
            fb.draw_rect(x0, y0, x1, y1, sw.max(2), color);
        }
    }
    Some(bbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tioga2_expr::ViewerSpec;

    fn prov(row: u64) -> Provenance {
        Provenance { layer: "t".into(), row_id: row, seq: row as usize, source: None }
    }

    fn item(world: (f64, f64), d: Drawable) -> SceneItem {
        SceneItem { world, drawable: d, provenance: prov(0) }
    }

    fn setup() -> (Viewport, Framebuffer) {
        (Viewport::new((0.0, 0.0), 100.0, 200, 200), Framebuffer::new(200, 200))
    }

    #[test]
    fn circle_renders_at_world_position() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item((0.0, 0.0), Drawable::circle(5.0, Color::RED)));
        let hits = render_scene(&scene, &vp, &mut fb);
        assert_eq!(hits.len(), 1);
        assert_eq!(fb.get(100, 100).unwrap()[0], Color::RED.r, "center pixel red");
        // radius 5 world = 10 px.
        assert_eq!(fb.get(100, 88).unwrap(), [255, 255, 255, 255]);
        assert!(hits.top_hit(100, 100).is_some());
    }

    #[test]
    fn offscreen_items_skipped() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item((1e6, 1e6), Drawable::circle(5.0, Color::RED)));
        let hits = render_scene(&scene, &vp, &mut fb);
        assert_eq!(hits.len(), 0);
        assert_eq!(fb.ink_fraction(), 0.0);
    }

    #[test]
    fn zoom_scales_shapes_but_not_text() {
        let mut scene = Scene::default();
        scene.push(item((0.0, 0.0), Drawable::circle(5.0, Color::RED)));
        scene.push(item((0.0, 0.0), Drawable::text("Hi", Color::BLACK)));

        let far = Viewport::new((0.0, 0.0), 400.0, 200, 200);
        let near = Viewport::new((0.0, 0.0), 50.0, 200, 200);
        let mut fb_far = Framebuffer::new(200, 200);
        let mut fb_near = Framebuffer::new(200, 200);
        render_scene(&scene, &far, &mut fb_far);
        render_scene(&scene, &near, &mut fb_near);
        assert!(
            fb_near.count_color(Color::RED) > 4 * fb_far.count_color(Color::RED),
            "circle grows when zooming in"
        );
        // Text pixel count identical at both elevations (fixed label size).
        assert_eq!(fb_far.count_color(Color::BLACK), fb_near.count_color(Color::BLACK));
    }

    #[test]
    fn drawable_offset_is_world_space() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item((0.0, 0.0), Drawable::point(Color::BLACK).with_offset(10.0, 0.0)));
        render_scene(&scene, &vp, &mut fb);
        // 10 world units right = 20 px right of center.
        assert_eq!(fb.get(120, 100).unwrap()[0], 0);
    }

    #[test]
    fn draw_order_is_paint_order() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item((0.0, 0.0), Drawable::circle(5.0, Color::RED)));
        scene.push(item((0.0, 0.0), Drawable::circle(5.0, Color::BLUE)));
        let hits = render_scene(&scene, &vp, &mut fb);
        assert_eq!(fb.get(100, 100).unwrap()[2], Color::BLUE.b, "later layer wins");
        assert_eq!(hits.top_hit(100, 100).unwrap().scene_index, 1);
    }

    #[test]
    fn lines_rects_polygons_render() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item((-20.0, 0.0), Drawable::line(10.0, 10.0, Color::BLACK)));
        scene.push(item((20.0, 0.0), Drawable::rect(10.0, 6.0, Color::GREEN)));
        scene.push(item(
            (0.0, -30.0),
            Drawable::polygon(vec![(0.0, 0.0), (8.0, 0.0), (4.0, 8.0)], Color::PURPLE),
        ));
        let hits = render_scene(&scene, &vp, &mut fb);
        assert_eq!(hits.len(), 3);
        assert!(fb.count_color(Color::GREEN) > 50);
        assert!(fb.count_color(Color::PURPLE) > 20);
        assert!(fb.count_color(Color::BLACK) > 5);
    }

    #[test]
    fn outlined_style_leaves_interior_empty() {
        let (vp, mut fb) = setup();
        let mut d = Drawable::rect(20.0, 20.0, Color::BLACK);
        d.style.filled = false;
        let mut scene = Scene::default();
        scene.push(item((0.0, 0.0), d));
        render_scene(&scene, &vp, &mut fb);
        assert_eq!(fb.get(100, 100), Some([255, 255, 255, 255]));
    }

    #[test]
    fn viewer_drawable_renders_frame_and_is_hittable() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item(
            (0.0, 0.0),
            Drawable::viewer(ViewerSpec {
                destination: "temps".into(),
                elevation: 50.0,
                at: (0.0, 0.0),
                size: (20.0, 16.0),
            }),
        ));
        let hits = render_scene(&scene, &vp, &mut fb);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits.records()[0].kind, "viewer");
        assert!(hits.top_hit(100, 100).is_some(), "click inside the aperture hits");
        assert!(fb.ink_fraction() > 0.0);
    }

    #[test]
    fn text_hit_box_matches_extent() {
        let (vp, mut fb) = setup();
        let mut scene = Scene::default();
        scene.push(item((0.0, 0.0), Drawable::text("Baton Rouge", Color::BLACK)));
        let hits = render_scene(&scene, &vp, &mut fb);
        let r = hits.top_hit(100, 100).expect("click on label center");
        let (x0, _, x1, _) = r.bbox;
        let (w, _) = font::text_extent("Baton Rouge", 1);
        assert_eq!((x1 - x0) as u32, w);
    }
}
