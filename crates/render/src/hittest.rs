//! Hit testing: mapping a screen click back to the tuple that produced
//! the clicked object.
//!
//! Paper §8: "When a user clicks on a screen object, the Tioga-2 run time
//! system activates a generic update procedure, passing it the tuple
//! corresponding to the screen object."  Rendering a scene produces a
//! [`HitIndex`]; [`HitIndex::hit`] returns matches topmost-first (reverse
//! draw order).

/// Identity of the tuple behind a screen object.
#[derive(Debug, Clone, PartialEq)]
pub struct Provenance {
    /// Layer (display relation) name.
    pub layer: String,
    /// Stable base-table row identity (update target).
    pub row_id: u64,
    /// Position of the tuple within its displayed relation.
    pub seq: usize,
    /// Base table the tuple came from, when update-traceable.
    pub source: Option<String>,
}

/// One rendered screen object.
#[derive(Debug, Clone, PartialEq)]
pub struct HitRecord {
    /// Screen-space bounding box (x0, y0, x1, y1), inclusive.
    pub bbox: (i32, i32, i32, i32),
    /// What kind of drawable this was ("circle", "text", "viewer", ...).
    pub kind: &'static str,
    pub provenance: Provenance,
    /// Index of the item in the scene that produced this record.
    pub scene_index: usize,
}

/// Spatial index of rendered objects, in draw order.
#[derive(Debug, Clone, Default)]
pub struct HitIndex {
    records: Vec<HitRecord>,
}

impl HitIndex {
    pub fn push(&mut self, rec: HitRecord) {
        self.records.push(rec);
    }

    pub fn records(&self) -> &[HitRecord] {
        &self.records
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All objects containing the point, topmost (last drawn) first.
    pub fn hit(&self, x: i32, y: i32) -> Vec<&HitRecord> {
        self.records
            .iter()
            .rev()
            .filter(|r| {
                let (x0, y0, x1, y1) = r.bbox;
                x >= x0 && x <= x1 && y >= y0 && y <= y1
            })
            .collect()
    }

    /// The topmost object containing the point, if any.
    pub fn top_hit(&self, x: i32, y: i32) -> Option<&HitRecord> {
        self.hit(x, y).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bbox: (i32, i32, i32, i32), layer: &str, row: u64, idx: usize) -> HitRecord {
        HitRecord {
            bbox,
            kind: "circle",
            provenance: Provenance {
                layer: layer.into(),
                row_id: row,
                seq: row as usize,
                source: Some("stations".into()),
            },
            scene_index: idx,
        }
    }

    #[test]
    fn hit_returns_topmost_first() {
        let mut idx = HitIndex::default();
        idx.push(rec((0, 0, 10, 10), "bottom", 1, 0));
        idx.push(rec((5, 5, 15, 15), "top", 2, 1));
        let hits = idx.hit(7, 7);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].provenance.layer, "top");
        assert_eq!(hits[1].provenance.layer, "bottom");
        assert_eq!(idx.top_hit(7, 7).unwrap().provenance.row_id, 2);
    }

    #[test]
    fn miss_returns_empty() {
        let mut idx = HitIndex::default();
        idx.push(rec((0, 0, 10, 10), "a", 1, 0));
        assert!(idx.hit(20, 20).is_empty());
        assert!(idx.top_hit(20, 20).is_none());
    }

    #[test]
    fn bbox_edges_inclusive() {
        let mut idx = HitIndex::default();
        idx.push(rec((2, 2, 4, 4), "a", 1, 0));
        assert!(idx.top_hit(2, 2).is_some());
        assert!(idx.top_hit(4, 4).is_some());
        assert!(idx.top_hit(5, 4).is_none());
    }
}
