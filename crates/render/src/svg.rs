//! SVG writer: serializes a [`Scene`] through a [`Viewport`] into vector
//! form.  Produces resolution-independent versions of the paper figures;
//! geometry matches the rasterizer's conventions (shape extents in world
//! units, text at fixed pixel size).

use crate::font;
use crate::scene::Scene;
use crate::viewport::Viewport;
use std::fmt::Write as _;
use tioga2_expr::{Color, Shape};

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

fn fill_stroke(color: Color, filled: bool, stroke_width: u32) -> String {
    if filled {
        format!("fill=\"{}\"", color.to_hex())
    } else {
        format!(
            "fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"",
            color.to_hex(),
            stroke_width.max(1)
        )
    }
}

/// Render the scene to an SVG document string.
pub fn scene_to_svg(scene: &Scene, vp: &Viewport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">",
        w = vp.width_px,
        h = vp.height_px
    );
    let _ = writeln!(out, "<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>");
    for item in &scene.items {
        let d = &item.drawable;
        let (ax, ay) = (item.world.0 + d.offset.0, item.world.1 + d.offset.1);
        let (cx, cy) = vp.to_screen(ax, ay);
        let c = d.color.to_hex();
        let sw = d.style.stroke_width.max(1);
        match &d.shape {
            Shape::Point => {
                let _ = writeln!(
                    out,
                    "<rect x=\"{}\" y=\"{}\" width=\"{sw}\" height=\"{sw}\" fill=\"{c}\"/>",
                    cx - sw as i32 / 2,
                    cy - sw as i32 / 2
                );
            }
            Shape::Line { dx, dy } => {
                let (x1, y1) = vp.to_screen(ax + dx, ay + dy);
                let _ = writeln!(
                    out,
                    "<line x1=\"{cx}\" y1=\"{cy}\" x2=\"{x1}\" y2=\"{y1}\" stroke=\"{c}\" stroke-width=\"{sw}\"/>"
                );
            }
            Shape::Rect { w, h } => {
                let pw = vp.len_to_px(*w).max(1);
                let ph = vp.len_to_px(*h).max(1);
                let _ = writeln!(
                    out,
                    "<rect x=\"{}\" y=\"{}\" width=\"{pw}\" height=\"{ph}\" {}/>",
                    cx - pw / 2,
                    cy - ph / 2,
                    fill_stroke(d.color, d.style.filled, sw)
                );
            }
            Shape::Circle { radius } => {
                let r = vp.len_to_px(*radius).max(1);
                let _ = writeln!(
                    out,
                    "<circle cx=\"{cx}\" cy=\"{cy}\" r=\"{r}\" {}/>",
                    fill_stroke(d.color, d.style.filled, sw)
                );
            }
            Shape::Polygon { points } => {
                let pts: Vec<String> = points
                    .iter()
                    .map(|(px, py)| {
                        let (x, y) = vp.to_screen(ax + px, ay + py);
                        format!("{x},{y}")
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "<polygon points=\"{}\" {}/>",
                    pts.join(" "),
                    fill_stroke(d.color, d.style.filled, sw)
                );
            }
            Shape::Text { content } => {
                let size = 8 * d.style.text_scale.max(1);
                let _ = writeln!(
                    out,
                    "<text x=\"{cx}\" y=\"{cy}\" font-family=\"monospace\" font-size=\"{size}\" text-anchor=\"middle\" dominant-baseline=\"middle\" fill=\"{c}\">{}</text>",
                    esc(content)
                );
            }
            Shape::Viewer(spec) => {
                let pw = vp.len_to_px(spec.size.0).max(4);
                let ph = vp.len_to_px(spec.size.1).max(4);
                let _ = writeln!(
                    out,
                    "<g><rect x=\"{x}\" y=\"{y}\" width=\"{pw}\" height=\"{ph}\" fill=\"#ebebf5\" stroke=\"{c}\" stroke-width=\"2\"/><text x=\"{cx}\" y=\"{cy}\" font-family=\"monospace\" font-size=\"7\" text-anchor=\"middle\" fill=\"#555555\">{}</text></g>",
                    esc(&spec.destination),
                    x = cx - pw / 2,
                    y = cy - ph / 2,
                );
            }
        }
    }
    out.push_str("</svg>\n");
    out
}

/// Convenience: write SVG to a file.
pub fn write_svg(
    scene: &Scene,
    vp: &Viewport,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    std::fs::write(path, scene_to_svg(scene, vp))
}

/// Extent helper re-exported for callers sizing labels consistently with
/// the rasterizer.
pub fn text_extent_px(s: &str, scale: u32) -> (u32, u32) {
    font::text_extent(s, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hittest::Provenance;
    use crate::scene::SceneItem;
    use tioga2_expr::{Drawable, ViewerSpec};

    fn scene() -> Scene {
        let mut s = Scene::default();
        let prov = Provenance { layer: "t".into(), row_id: 0, seq: 0, source: None };
        s.push(SceneItem {
            world: (0.0, 0.0),
            drawable: Drawable::circle(5.0, Color::RED),
            provenance: prov.clone(),
        });
        s.push(SceneItem {
            world: (10.0, 10.0),
            drawable: Drawable::text("a<b&c", Color::BLACK),
            provenance: prov.clone(),
        });
        s.push(SceneItem {
            world: (-10.0, 0.0),
            drawable: Drawable::viewer(ViewerSpec {
                destination: "temps".into(),
                elevation: 10.0,
                at: (0.0, 0.0),
                size: (8.0, 6.0),
            }),
            provenance: prov,
        });
        s
    }

    #[test]
    fn svg_structure() {
        let vp = Viewport::new((0.0, 0.0), 100.0, 300, 200);
        let svg = scene_to_svg(&scene(), &vp);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("a&lt;b&amp;c"), "text is escaped");
        assert!(svg.contains("temps"), "wormhole labelled with destination");
    }

    #[test]
    fn svg_scales_with_elevation() {
        let near = Viewport::new((0.0, 0.0), 50.0, 300, 200);
        let far = Viewport::new((0.0, 0.0), 200.0, 300, 200);
        let s_near = scene_to_svg(&scene(), &near);
        let s_far = scene_to_svg(&scene(), &far);
        // Circle radius is in pixels post-transform: bigger when near.
        let r_near: i32 =
            s_near.split("r=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
        let r_far: i32 =
            s_far.split("r=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
        assert!(r_near > r_far);
    }
}
