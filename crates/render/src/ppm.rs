//! Binary PPM (P6) image writer — the figure regenerator saves canvases
//! with it, keeping the workspace dependency-free.

use crate::framebuffer::Framebuffer;
use std::io::{self, Write};
use std::path::Path;

/// Encode the framebuffer as a binary PPM (P6) byte vector.
pub fn encode(fb: &Framebuffer) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + fb.pixels().len() * 3);
    out.extend_from_slice(format!("P6\n{} {}\n255\n", fb.width(), fb.height()).as_bytes());
    for p in fb.pixels() {
        out.extend_from_slice(&p[..3]);
    }
    out
}

/// Write the framebuffer to `path` as PPM.
pub fn write_ppm(fb: &Framebuffer, path: impl AsRef<Path>) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&encode(fb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tioga2_expr::Color;

    #[test]
    fn header_and_size() {
        let mut fb = Framebuffer::new(2, 3);
        fb.set(0, 0, Color::RED);
        let bytes = encode(&fb);
        assert!(bytes.starts_with(b"P6\n2 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 2 * 3 * 3);
        // First pixel is the red we set.
        assert_eq!(&bytes[11..14], &[Color::RED.r, Color::RED.g, Color::RED.b]);
    }

    #[test]
    fn write_to_disk() {
        let fb = Framebuffer::new(4, 4);
        let dir = std::env::temp_dir().join("tioga2_ppm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ppm");
        write_ppm(&fb, &path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert_eq!(data, encode(&fb));
    }
}
