//! Fleet manifest + journal-directory lock for tiogad restart recovery.
//!
//! The manifest is a single small JSON file in the journal directory
//! recording which sessions were live (and under which tenant) when the
//! daemon last wrote it.  On restart the daemon eagerly recovers exactly
//! the manifest's sessions; journal files *not* listed stay on disk and
//! remain lazily attachable.  The file is rewritten atomically
//! (tmp + rename) so a crash mid-write leaves either the old or the new
//! manifest, never a torn one.
//!
//! The lock file pins a journal directory to one daemon: two tiogads
//! pointed at the same `--journal-dir` would interleave appends and
//! corrupt every journal.  Staleness is decided by pid liveness
//! (`/proc/<pid>` on Linux), so a SIGKILLed daemon's lock does not
//! block the restart that recovery exists for.

use crate::journal::Json;
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the manifest inside the journal directory.
pub const MANIFEST_FILE: &str = "fleet-manifest.json";
/// File name of the daemon lock inside the journal directory.
pub const LOCK_FILE: &str = "tiogad.lock";

const MANIFEST_FORMAT: &str = "tioga2-fleet-manifest";
const MANIFEST_VERSION: u64 = 1;

/// One live session as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Session id — also the journal file stem (`<sid>.journal`).
    pub sid: String,
    /// Owning tenant; reattach must present the same one.
    pub tenant: String,
}

/// The fleet manifest: which sessions the daemon considered live at the
/// moment it was last written.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetManifest {
    pub sessions: Vec<ManifestEntry>,
    /// `true` when written by a graceful drain; `false` on the periodic
    /// rewrites that happen while serving.  A recovered fleet whose
    /// manifest says `clean: false` crashed.
    pub clean_shutdown: bool,
}

impl FleetManifest {
    pub fn new() -> FleetManifest {
        FleetManifest::default()
    }

    pub fn to_text(&self) -> String {
        let sessions = self
            .sessions
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("sid".into(), Json::Str(e.sid.clone())),
                    ("tenant".into(), Json::Str(e.tenant.clone())),
                ])
            })
            .collect();
        let obj = Json::Obj(vec![
            ("format".into(), Json::Str(MANIFEST_FORMAT.into())),
            ("version".into(), Json::Num(MANIFEST_VERSION as f64)),
            ("clean".into(), Json::Bool(self.clean_shutdown)),
            ("sessions".into(), Json::Arr(sessions)),
        ]);
        let mut text = obj.to_text();
        text.push('\n');
        text
    }

    pub fn parse(text: &str) -> Result<FleetManifest, String> {
        let v = Json::parse(text.trim_end())?;
        let fields = match &v {
            Json::Obj(fields) => fields,
            _ => return Err("manifest: expected a JSON object".into()),
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        match get("format") {
            Some(Json::Str(s)) if s == MANIFEST_FORMAT => {}
            _ => return Err(format!("manifest: missing format marker '{MANIFEST_FORMAT}'")),
        }
        match get("version") {
            Some(Json::Num(n)) if *n as u64 == MANIFEST_VERSION => {}
            Some(Json::Num(n)) => return Err(format!("manifest: unsupported version {n}")),
            _ => return Err("manifest: missing version".into()),
        }
        let clean_shutdown = matches!(get("clean"), Some(Json::Bool(true)));
        let mut sessions = Vec::new();
        match get("sessions") {
            Some(Json::Arr(items)) => {
                for item in items {
                    let entry = match item {
                        Json::Obj(fs) => fs,
                        _ => return Err("manifest: session entry must be an object".into()),
                    };
                    let field = |key: &str| -> Result<String, String> {
                        match entry.iter().find(|(k, _)| k == key).map(|(_, v)| v) {
                            Some(Json::Str(s)) => Ok(s.clone()),
                            _ => Err(format!("manifest: session entry missing '{key}'")),
                        }
                    };
                    sessions.push(ManifestEntry { sid: field("sid")?, tenant: field("tenant")? });
                }
            }
            _ => return Err("manifest: missing sessions array".into()),
        }
        Ok(FleetManifest { sessions, clean_shutdown })
    }

    /// Atomically (tmp + rename) write the manifest into `dir`.
    pub fn store(&self, dir: &Path) -> Result<(), String> {
        let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
        let fin = dir.join(MANIFEST_FILE);
        fs::write(&tmp, self.to_text()).map_err(|e| format!("manifest write: {e}"))?;
        fs::rename(&tmp, &fin).map_err(|e| format!("manifest rename: {e}"))
    }

    /// Load the manifest from `dir`.  `Ok(None)` when the file does not
    /// exist (fresh directory / pre-manifest journals); parse failures
    /// are real errors the caller should surface.
    pub fn load(dir: &Path) -> Result<Option<FleetManifest>, String> {
        let path = dir.join(MANIFEST_FILE);
        match fs::read_to_string(&path) {
            Ok(text) => Ok(Some(FleetManifest::parse(&text)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("manifest read: {e}")),
        }
    }
}

/// Exclusive ownership of a journal directory, released on drop.
#[derive(Debug)]
pub struct DirLock {
    path: PathBuf,
}

impl DirLock {
    /// Take the lock, refusing if another *live* daemon holds it.  A
    /// lock left by a dead pid (crash) is silently replaced.
    pub fn acquire(dir: &Path) -> Result<DirLock, String> {
        let path = dir.join(LOCK_FILE);
        let pid = std::process::id();
        match fs::read_to_string(&path) {
            Ok(prev) => {
                let prev_pid: Option<u32> = prev.trim().parse().ok();
                match prev_pid {
                    Some(p) if p != pid && pid_alive(p) => {
                        return Err(format!(
                            "journal dir {} is locked by live pid {p} (remove {} if stale)",
                            dir.display(),
                            path.display()
                        ));
                    }
                    _ => {} // dead holder or unparseable: reclaim
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("lockfile read: {e}")),
        }
        fs::write(&path, format!("{pid}\n")).map_err(|e| format!("lockfile write: {e}"))?;
        Ok(DirLock { path })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn pid_alive(pid: u32) -> bool {
    // Linux-only liveness probe; on other platforms assume alive so we
    // err on the side of refusing to double-attach a journal dir.
    if !cfg!(target_os = "linux") {
        return true;
    }
    // `/proc/<pid>` alone is not enough: a SIGKILLed daemon lingers
    // there as a zombie until its parent reaps it, and a zombie cannot
    // be writing journals — treating it as live would block exactly the
    // restart recovery the lock exists to protect.  State is the third
    // field of `/proc/<pid>/stat`, after the parenthesized comm (which
    // may itself contain spaces or parens, hence rfind).
    match fs::read_to_string(format!("/proc/{pid}/stat")) {
        Err(_) => false,
        Ok(stat) => match stat.rfind(')') {
            None => true, // unparseable: assume alive, refuse the dir
            Some(i) => !matches!(
                stat[i + 1..].split_whitespace().next(),
                Some("Z") | Some("X") | Some("x")
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("tioga2-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn manifest_round_trips() {
        let m = FleetManifest {
            sessions: vec![
                ManifestEntry { sid: "s1".into(), tenant: "acme".into() },
                ManifestEntry { sid: "s2".into(), tenant: "zenith \"quoted\"".into() },
            ],
            clean_shutdown: true,
        };
        let back = FleetManifest::parse(&m.to_text()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn manifest_store_and_load() {
        let dir = tmpdir("store");
        assert_eq!(FleetManifest::load(&dir).unwrap(), None);
        let m = FleetManifest {
            sessions: vec![ManifestEntry { sid: "a".into(), tenant: "t".into() }],
            clean_shutdown: false,
        };
        m.store(&dir).unwrap();
        assert_eq!(FleetManifest::load(&dir).unwrap(), Some(m));
        // no tmp residue from the atomic write
        assert!(!dir.join(format!("{MANIFEST_FILE}.tmp")).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_rejects_garbage_and_wrong_format() {
        assert!(FleetManifest::parse("not json").is_err());
        assert!(FleetManifest::parse("{\"format\":\"other\",\"version\":1}").is_err());
        assert!(FleetManifest::parse(
            "{\"format\":\"tioga2-fleet-manifest\",\"version\":99,\"sessions\":[]}"
        )
        .is_err());
    }

    #[test]
    fn dirlock_excludes_live_pid_and_reclaims_dead() {
        let dir = tmpdir("lock");
        let lock = DirLock::acquire(&dir).unwrap();
        // Same (live) pid re-acquiring is allowed — it is *our* lock.
        drop(DirLock::acquire(&dir).unwrap());
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        // A live foreign pid refuses: pid 1 is always alive on Linux.
        if cfg!(target_os = "linux") {
            fs::write(dir.join(LOCK_FILE), "1\n").unwrap();
            assert!(DirLock::acquire(&dir).is_err());
        }
        // A dead pid's lock is reclaimed.
        fs::write(dir.join(LOCK_FILE), "4294967: not-a-pid\n").unwrap();
        let lock = DirLock::acquire(&dir).unwrap();
        drop(lock);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A SIGKILLed daemon lingers in `/proc` as a zombie until its
    /// parent reaps it; its lock must still be reclaimable — blocking
    /// on a zombie would defeat the restart recovery the lock protects.
    #[test]
    #[cfg(target_os = "linux")]
    fn dirlock_reclaims_zombie_holder() {
        let dir = tmpdir("zombie");
        fs::create_dir_all(&dir).unwrap();
        let mut child = std::process::Command::new("true").spawn().unwrap();
        // Wait for the process to exit WITHOUT reaping it: /proc/<pid>
        // stays present with state Z until `wait` below.
        let stat = format!("/proc/{}/stat", child.id());
        for _ in 0..200 {
            let state = fs::read_to_string(&stat)
                .ok()
                .and_then(|s| s[s.rfind(')')? + 1..].split_whitespace().next().map(String::from));
            if state.as_deref() == Some("Z") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        fs::write(dir.join(LOCK_FILE), format!("{}\n", child.id())).unwrap();
        let lock = DirLock::acquire(&dir);
        let _ = child.wait();
        drop(lock.expect("a zombie holder's lock must be reclaimed"));
        let _ = fs::remove_dir_all(&dir);
    }
}
