//! The slow-demand log: a bounded, thread-safe ring of fully attributed
//! traces for demands that ran longer than an armed threshold.
//!
//! Sampling-profiler output answers "where does time go on average";
//! the slowlog answers the operator's question "what exactly happened in
//! the request that took 800ms last Tuesday".  Every captured entry
//! carries the demand's whole [`DemandTrace`] tree *and* its folded
//! flamegraph stack, plus the `{tenant, session}` labels and the
//! protocol request id, so a single slow frame can be correlated from
//! the wire down to the operator that burned the time.
//!
//! One [`SlowLog`] is shared: in the REPL a session owns its own; under
//! `tiogad` the daemon installs one fleet-wide log into every session
//! worker, so `slowlog`/`sys.slow` show the slowest demands across all
//! tenants.  The threshold is an atomic — `:slowlog 250` in any session
//! (or `TIOGA2_SLOWLOG=250` at startup) re-arms the shared log without
//! locking.

use crate::tree::DemandTrace;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

/// Threshold sentinel meaning "disarmed" (never captures).
const OFF: u64 = u64::MAX;

/// Default ring capacity; enough to hold a storm of slow demands
/// without unbounded growth.
pub const DEFAULT_SLOW_RING: usize = 64;

/// One captured over-threshold demand.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Tenant of the session that ran the demand ("" outside `tiogad`).
    pub tenant: String,
    /// Session id ("" outside `tiogad`).
    pub session: String,
    /// Threshold (ns) that was armed when this entry was captured.
    pub threshold_ns: u64,
    /// The full attributed trace (request id, rows, per-operator time).
    pub trace: DemandTrace,
    /// Folded flamegraph stacks of the trace, captured eagerly so the
    /// entry stays useful after the engine's trace ring evicts it.
    pub folded: String,
}

struct Ring {
    entries: VecDeque<SlowEntry>,
    capacity: usize,
    /// Entries evicted because the ring was full.
    dropped: u64,
}

/// Thread-safe slow-demand ring; see the module docs.
pub struct SlowLog {
    threshold_ns: AtomicU64,
    ring: Mutex<Ring>,
}

impl SlowLog {
    /// A disarmed log with the default ring capacity.
    pub fn new() -> SlowLog {
        SlowLog {
            threshold_ns: AtomicU64::new(OFF),
            ring: Mutex::new(Ring {
                entries: VecDeque::new(),
                capacity: DEFAULT_SLOW_RING,
                dropped: 0,
            }),
        }
    }

    /// A log armed (or not) from `TIOGA2_SLOWLOG`: a number of
    /// milliseconds arms the threshold, anything else (or unset) leaves
    /// the log disarmed.
    pub fn from_env() -> SlowLog {
        let log = SlowLog::new();
        if let Ok(v) = std::env::var("TIOGA2_SLOWLOG") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                log.arm_ms(ms);
            }
        }
        log
    }

    /// Arm at a millisecond threshold.  0 captures every traced demand.
    pub fn arm_ms(&self, ms: u64) {
        self.threshold_ns.store(ms.saturating_mul(1_000_000), Ordering::Relaxed);
    }

    /// Disarm: stop capturing (existing entries are kept).
    pub fn disarm(&self) {
        self.threshold_ns.store(OFF, Ordering::Relaxed);
    }

    /// Current threshold in nanoseconds, `None` when disarmed.
    pub fn threshold_ns(&self) -> Option<u64> {
        match self.threshold_ns.load(Ordering::Relaxed) {
            OFF => None,
            ns => Some(ns),
        }
    }

    /// Offer a finished demand.  Cheap when disarmed or under threshold
    /// (one atomic load, no lock); otherwise clones the trace, renders
    /// its folded stacks, and pushes a ring entry.
    pub fn observe(&self, tenant: &str, session: &str, trace: &DemandTrace) {
        let armed = self.threshold_ns.load(Ordering::Relaxed);
        if armed == OFF || trace.total_ns < armed {
            return;
        }
        let entry = SlowEntry {
            tenant: tenant.to_string(),
            session: session.to_string(),
            threshold_ns: armed,
            folded: trace.folded(),
            trace: trace.clone(),
        };
        let mut ring = self.ring.lock();
        while ring.entries.len() >= ring.capacity {
            ring.entries.pop_front();
            ring.dropped += 1;
        }
        ring.entries.push_back(entry);
    }

    /// Snapshot of the captured entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring.lock().entries.iter().cloned().collect()
    }

    /// Entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Drop all captured entries (the threshold stays as armed).
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.entries.clear();
        ring.dropped = 0;
    }

    /// Human-readable report: the armed state plus one block per entry
    /// (newest last) — backs the REPL `:slowlog` and the `slowlog`
    /// protocol verb.
    pub fn render(&self) -> String {
        let mut out = match self.threshold_ns() {
            Some(ns) => format!("slowlog armed at {} ms\n", ns / 1_000_000),
            None => "slowlog off\n".to_string(),
        };
        let entries = self.entries();
        let dropped = self.dropped();
        if entries.is_empty() {
            out.push_str("(no slow demands captured)\n");
            return out;
        }
        out.push_str(&format!("{} slow demand(s) captured", entries.len()));
        if dropped > 0 {
            out.push_str(&format!(" ({dropped} evicted)"));
        }
        out.push('\n');
        for e in &entries {
            let who = match (e.tenant.is_empty(), e.session.is_empty()) {
                (true, true) => String::new(),
                _ => format!(" [tenant {} session {}]", e.tenant, e.session),
            };
            out.push_str(&format!(
                "--- req #{} demand #{}{} over {} ms threshold ---\n",
                e.trace.request_id,
                e.trace.demand_id,
                who,
                e.threshold_ns / 1_000_000
            ));
            out.push_str(&e.trace.render());
        }
        out
    }
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{CacheStatus, OpNode};

    fn trace(id: u64, req: u64, total_ns: u64) -> DemandTrace {
        DemandTrace {
            demand_id: id,
            request_id: req,
            label: format!("#{id}.0 (Project)"),
            total_ns,
            threads: 1,
            par_segments: 0,
            plan_cache: CacheStatus::Miss,
            rewrites: vec![],
            status: "ok".to_string(),
            root: OpNode {
                op: "Project [a]".to_string(),
                rows_in: 5,
                rows_out: 5,
                ns: total_ns,
                cache: CacheStatus::NotCached,
                provenance: String::new(),
                par_workers: 0,
                children: vec![],
            },
        }
    }

    #[test]
    fn disarmed_log_captures_nothing() {
        let log = SlowLog::new();
        assert_eq!(log.threshold_ns(), None);
        log.observe("t", "s", &trace(1, 1, u64::MAX - 1));
        assert!(log.entries().is_empty());
        assert!(log.render().contains("slowlog off"));
    }

    #[test]
    fn armed_log_captures_only_over_threshold() {
        let log = SlowLog::new();
        log.arm_ms(10);
        assert_eq!(log.threshold_ns(), Some(10_000_000));
        log.observe("acme", "s1", &trace(1, 41, 9_000_000)); // under
        log.observe("acme", "s1", &trace(2, 42, 11_000_000)); // over
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].trace.demand_id, 2);
        assert_eq!(entries[0].trace.request_id, 42);
        assert_eq!(entries[0].tenant, "acme");
        assert_eq!(entries[0].threshold_ns, 10_000_000);
        assert!(entries[0].folded.contains("Project"));
        let text = log.render();
        assert!(text.contains("slowlog armed at 10 ms"), "{text}");
        assert!(text.contains("req #42 demand #2 [tenant acme session s1]"), "{text}");
        log.disarm();
        log.observe("acme", "s1", &trace(3, 43, 99_000_000));
        assert_eq!(log.entries().len(), 1, "disarm stops capture, keeps entries");
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let log = SlowLog::new();
        log.arm_ms(0); // capture everything
        for i in 0..(DEFAULT_SLOW_RING as u64 + 5) {
            log.observe("", "", &trace(i, i, 1_000));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), DEFAULT_SLOW_RING);
        assert_eq!(log.dropped(), 5);
        // Oldest evicted first.
        assert_eq!(entries[0].trace.demand_id, 5);
        log.clear();
        assert!(log.entries().is_empty());
        assert_eq!(log.dropped(), 0);
    }
}
