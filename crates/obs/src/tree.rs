//! Per-demand trace trees: the attribution model behind `:explain
//! analyze` and the `sys.demands` introspection table.
//!
//! A [`DemandTrace`] records one executed demand: the optimized plan
//! shape with one [`OpNode`] per operator carrying exact row counts and
//! *sampled* cumulative nanoseconds (the executor stamps every Nth
//! tuple, so times are estimates while rows are exact).  The engine
//! keeps a bounded ring of the last K traces; the REPL renders them,
//! [`crate::export::folded_stacks`] turns them into flamegraph input,
//! and `sys.demands` exposes one tuple per node.

/// Cache disposition of one trace-tree node (or of the demand's plan
/// cache as a whole).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from a cache (memo or plan cache) without recomputation.
    Hit,
    /// A cacheable boundary that had to compute.
    Miss,
    /// Not a caching boundary.
    NotCached,
}

impl CacheStatus {
    pub fn label(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::NotCached => "-",
        }
    }
}

/// One executed operator in a demand's plan.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// Operator label as printed by the plan pretty-printer, e.g.
    /// `Restrict state = 'LA'`.
    pub op: String,
    /// Exact tuples pulled from the children (source: tuples scanned).
    pub rows_in: u64,
    /// Exact tuples this operator produced.
    pub rows_out: u64,
    /// Sampled cumulative (inclusive-of-children) nanoseconds.  Zero for
    /// stages fused into a parallel segment — their time is attributed
    /// to the segment root.
    pub ns: u64,
    /// Memo-cache disposition (sources are the memo boundaries).
    pub cache: CacheStatus,
    /// Empty for operators present in the user's program; `"window"` for
    /// the viewer-synthesized window restrict, `"rewritten"` for nodes
    /// the optimizer produced or moved.
    pub provenance: String,
    /// Workers that executed the parallel segment rooted here; 0 when
    /// this node ran serially.
    pub par_workers: u64,
    pub children: Vec<OpNode>,
}

impl OpNode {
    /// Inclusive time normalized so a parent is never reported smaller
    /// than the sum of its children (tuple-sampling noise can otherwise
    /// invert them).  Self time is `effective_ns - Σ children effective`.
    pub fn effective_ns(&self) -> u64 {
        self.ns.max(self.children.iter().map(Self::effective_ns).sum())
    }

    /// This node plus all descendants.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(Self::node_count).sum::<usize>()
    }
}

/// One recorded demand: header facts plus the operator tree.
#[derive(Debug, Clone)]
pub struct DemandTrace {
    /// Monotonic id assigned by the engine.
    pub demand_id: u64,
    /// Protocol request id of the frame that triggered this demand
    /// (assigned per frame by `tiogad`'s protocol layer), or 0 for
    /// demands issued outside a request context (REPL, tests).  Lets an
    /// operator correlate a slow trace back to the exact wire frame and
    /// its journal event.
    pub request_id: u64,
    /// The demanded output, e.g. `#7.0 (Project)`.
    pub label: String,
    /// Wall time of the whole demand (planning + execution).
    pub total_ns: u64,
    /// Worker budget the demand ran under.
    pub threads: usize,
    /// Partition-parallel segments executed.
    pub par_segments: u64,
    /// Whether the plan cache answered (or could have answered) the
    /// demand without executing.
    pub plan_cache: CacheStatus,
    /// Rewrite rules applied while planning, with counts.
    pub rewrites: Vec<(String, u64)>,
    /// `"ok"` for a completed demand; otherwise the abort class
    /// (`"budget_exceeded"`, `"cancelled"`, `"fault_injected"`,
    /// `"panic"`, `"error"`) — the demand stopped early and the row/time
    /// figures below cover only the work done before the abort.
    pub status: String,
    pub root: OpNode,
}

impl DemandTrace {
    /// Whether the demand aborted before completing (see [`Self::status`]).
    pub fn is_aborted(&self) -> bool {
        !self.status.is_empty() && self.status != "ok"
    }

    /// The demand's total, never smaller than the tree it encloses.
    pub fn total_effective_ns(&self) -> u64 {
        self.total_ns.max(self.root.effective_ns())
    }

    /// Human-readable annotated tree (the body of `:explain analyze`).
    pub fn render(&self) -> String {
        let mut out = format!(
            "demand #{} on {} — {}, threads={}, {} parallel segment(s), plan cache {}\n",
            self.demand_id,
            self.label,
            fmt_ms(self.total_ns),
            self.threads,
            self.par_segments,
            self.plan_cache.label(),
        );
        if self.request_id != 0 {
            out.push_str(&format!("request #{}\n", self.request_id));
        }
        if !self.rewrites.is_empty() {
            let list: Vec<String> =
                self.rewrites.iter().map(|(r, n)| format!("{r} x{n}")).collect();
            out.push_str(&format!("rewrites: {}\n", list.join(", ")));
        }
        if self.is_aborted() {
            out.push_str(&format!(
                "ABORTED ({}): partial counts below cover only the work done before the abort\n",
                self.status
            ));
        }
        // Two-pass render so the annotation columns line up.
        let mut lines: Vec<(String, String)> = Vec::new();
        let total = self.total_effective_ns().max(1);
        collect_lines(&self.root, 1, total, &mut lines);
        let width = lines.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (left, right) in lines {
            out.push_str(&format!("{left:width$}  {right}\n"));
        }
        out
    }

    /// Folded-stacks (flamegraph collapsed) lines for this demand.  The
    /// demand label is the root frame; every line's count is a node's
    /// *self* time, so the lines sum exactly to
    /// [`total_effective_ns`](Self::total_effective_ns).
    pub fn folded(&self) -> String {
        let mut out = String::new();
        let root_frame = frame(&format!("demand#{}_{}", self.demand_id, self.label));
        let overhead = self.total_effective_ns() - self.root.effective_ns();
        if overhead > 0 {
            out.push_str(&format!("{root_frame} {overhead}\n"));
        }
        fold(&self.root, &root_frame, &mut out);
        out
    }
}

fn collect_lines(node: &OpNode, depth: usize, total: u64, out: &mut Vec<(String, String)>) {
    let eff = node.effective_ns();
    let mut right = format!(
        "rows {} -> {}  {}  {:5.1}%",
        node.rows_in,
        node.rows_out,
        fmt_ms(eff),
        100.0 * eff as f64 / total as f64
    );
    match node.cache {
        CacheStatus::NotCached => {}
        status => right.push_str(&format!("  [memo {}]", status.label())),
    }
    if !node.provenance.is_empty() {
        right.push_str(&format!("  [{}]", node.provenance));
    }
    if node.par_workers > 0 {
        right.push_str(&format!("  [par x{}]", node.par_workers));
    }
    out.push((format!("{}{}", "  ".repeat(depth), node.op), right));
    for child in &node.children {
        collect_lines(child, depth + 1, total, out);
    }
}

fn fold(node: &OpNode, prefix: &str, out: &mut String) {
    let stack = format!("{prefix};{}", frame(&node.op));
    let child_sum: u64 = node.children.iter().map(OpNode::effective_ns).sum();
    let self_ns = node.effective_ns() - child_sum;
    if self_ns > 0 || node.children.is_empty() {
        out.push_str(&format!("{stack} {self_ns}\n"));
    }
    for child in &node.children {
        fold(child, &stack, out);
    }
}

/// Folded-format frame names must not contain the `;` separator, and
/// whitespace confuses the trailing-count split in common tooling.
fn frame(s: &str) -> String {
    s.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(op: &str, rows: u64, ns: u64) -> OpNode {
        OpNode {
            op: op.to_string(),
            rows_in: rows,
            rows_out: rows,
            ns,
            cache: CacheStatus::NotCached,
            provenance: String::new(),
            par_workers: 0,
            children: vec![],
        }
    }

    fn sample_trace() -> DemandTrace {
        let mut source = leaf("Source #0.0 (Stations)", 200, 100_000);
        source.cache = CacheStatus::Hit;
        let restrict = OpNode {
            op: "Restrict state = 'LA'".to_string(),
            rows_in: 200,
            rows_out: 42,
            ns: 400_000,
            cache: CacheStatus::NotCached,
            provenance: "rewritten".to_string(),
            par_workers: 4,
            children: vec![source],
        };
        let root = OpNode {
            op: "Project [name, altitude]".to_string(),
            rows_in: 42,
            rows_out: 42,
            // Deliberately *less* than the child: sampling noise.
            ns: 300_000,
            cache: CacheStatus::NotCached,
            provenance: String::new(),
            par_workers: 0,
            children: vec![restrict],
        };
        DemandTrace {
            demand_id: 7,
            request_id: 91,
            label: "#2.0 (Project)".to_string(),
            total_ns: 1_000_000,
            threads: 4,
            par_segments: 1,
            plan_cache: CacheStatus::Miss,
            rewrites: vec![("fuse_restricts".to_string(), 1)],
            status: "ok".to_string(),
            root,
        }
    }

    #[test]
    fn effective_ns_never_inverts_parent_child() {
        let t = sample_trace();
        assert_eq!(t.root.effective_ns(), 400_000); // lifted to child sum
        assert_eq!(t.total_effective_ns(), 1_000_000);
        assert_eq!(t.root.node_count(), 3);
    }

    #[test]
    fn render_shows_rows_time_pct_and_annotations() {
        let r = sample_trace().render();
        assert!(r.contains("demand #7 on #2.0 (Project)"), "{r}");
        assert!(r.contains("request #91"), "{r}");
        assert!(r.contains("plan cache miss"), "{r}");
        assert!(r.contains("rewrites: fuse_restricts x1"), "{r}");
        assert!(r.contains("rows 200 -> 42"), "{r}");
        assert!(r.contains("[memo hit]"), "{r}");
        assert!(r.contains("[rewritten]"), "{r}");
        assert!(r.contains("[par x4]"), "{r}");
        assert!(r.contains('%'), "{r}");
    }

    #[test]
    fn folded_sums_to_total_demand_time() {
        let t = sample_trace();
        let folded = t.folded();
        let mut sum = 0u64;
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.contains(' '), "frames must not contain spaces: {line}");
            sum += count.parse::<u64>().unwrap();
        }
        assert_eq!(sum, t.total_effective_ns());
        assert!(folded.contains("demand#7_#2.0_(Project);Project_[name,_altitude]"), "{folded}");
    }
}
