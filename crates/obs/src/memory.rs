//! The collecting recorder: a `parking_lot`-guarded store of events,
//! counters, cache tallies, and histograms.

use crate::hist::Histogram;
use crate::{Recorder, SpanId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::Instant;

/// Default bound on the event journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// One journal entry.  Times are nanoseconds since the recorder was
/// created (or last reset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened.
    Begin { id: u64, name: String, detail: String, ts_ns: u64, depth: u32 },
    /// A span closed.  Self-contained (name/detail/depth repeated) so a
    /// span survives its `Begin` being evicted from the ring.
    End {
        id: u64,
        name: String,
        detail: String,
        ts_ns: u64,
        dur_ns: u64,
        depth: u32,
        fields: Vec<(&'static str, i64)>,
    },
    /// A counter bump (`Recorder::add`).
    Count { name: String, delta: u64, ts_ns: u64 },
}

/// A closed span reconstructed from the journal.
#[derive(Debug, Clone)]
pub struct CompletedSpan {
    pub id: u64,
    pub name: String,
    pub detail: String,
    pub begin_ns: u64,
    pub dur_ns: u64,
    pub depth: u32,
    pub fields: Vec<(&'static str, i64)>,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTally {
    pub hits: u64,
    pub misses: u64,
}

impl CacheTally {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Default)]
struct Inner {
    events: VecDeque<Event>,
    /// Events evicted from the ring since the last reset.
    dropped: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    node_cache: BTreeMap<String, CacheTally>,
    /// Spans begun but not yet ended, keyed by span id.
    open: HashMap<u64, OpenSpan>,
    next_id: u64,
    /// `span_end` calls whose id was unknown (already ended, never
    /// begun, or begun on another recorder).  Counted explicitly so a
    /// mismatched pair is visible instead of silently ignored.
    mismatched_ends: u64,
}

struct OpenSpan {
    name: String,
    detail: String,
    begin_ns: u64,
    depth: u32,
}

/// The collecting [`Recorder`].
pub struct InMemoryRecorder {
    start: Instant,
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for InMemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl InMemoryRecorder {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// `capacity` bounds the event journal (ring buffer); counters,
    /// histograms, and cache tallies are not ring-bounded.
    pub fn with_capacity(capacity: usize) -> Self {
        InMemoryRecorder {
            start: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(Inner { next_id: 1, ..Inner::default() }),
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    fn push_event(inner: &mut Inner, capacity: usize, ev: Event) {
        if inner.events.len() >= capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(ev);
    }

    /// Snapshot of the journal, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// How many journal entries the ring has evicted.
    pub fn dropped_events(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// How many `span_end` calls arrived with an unknown span id (double
    /// end, never-begun id, or an id from another recorder).  Such calls
    /// are dropped without touching depth, histograms, or the journal.
    pub fn mismatched_span_ends(&self) -> u64 {
        self.inner.lock().mismatched_ends
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.lock().counters.clone()
    }

    /// Snapshot of one histogram.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().histograms.get(name).cloned()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        self.inner.lock().histograms.clone()
    }

    /// Per-node memo-cache tallies, sorted by node label.
    pub fn node_cache_tallies(&self) -> BTreeMap<String, CacheTally> {
        self.inner.lock().node_cache.clone()
    }

    /// Cache hit rate for one node label, if that node was ever probed.
    pub fn node_hit_rate(&self, node: &str) -> Option<f64> {
        self.inner.lock().node_cache.get(node).map(CacheTally::hit_rate)
    }

    /// Closed spans reconstructed from `End` journal entries, ordered by
    /// begin time.  Spans whose `End` was evicted are absent; spans
    /// whose `Begin` was evicted are still complete (`End` is
    /// self-contained).
    pub fn completed_spans(&self) -> Vec<CompletedSpan> {
        let inner = self.inner.lock();
        let mut spans: Vec<CompletedSpan> = inner
            .events
            .iter()
            .filter_map(|ev| match ev {
                Event::End { id, name, detail, ts_ns, dur_ns, depth, fields } => {
                    Some(CompletedSpan {
                        id: *id,
                        name: name.clone(),
                        detail: detail.clone(),
                        begin_ns: ts_ns.saturating_sub(*dur_ns),
                        dur_ns: *dur_ns,
                        depth: *depth,
                        fields: fields.clone(),
                    })
                }
                _ => None,
            })
            .collect();
        spans.sort_by_key(|s| (s.begin_ns, s.depth, s.id));
        spans
    }
}

impl Recorder for InMemoryRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn span_begin(&self, name: &str, detail: &str) -> SpanId {
        let ts_ns = self.now_ns();
        let mut inner = self.inner.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        // Depth is the number of spans currently open, not a running
        // counter: a counter desynchronizes permanently after one
        // out-of-order or mismatched `span_end`, while the open-set size
        // self-corrects as soon as the strays close.
        let depth = inner.open.len() as u32;
        inner.open.insert(
            id,
            OpenSpan { name: name.to_string(), detail: detail.to_string(), begin_ns: ts_ns, depth },
        );
        Self::push_event(
            &mut inner,
            self.capacity,
            Event::Begin { id, name: name.to_string(), detail: detail.to_string(), ts_ns, depth },
        );
        SpanId(id)
    }

    fn span_end(&self, id: SpanId, fields: &[(&'static str, i64)]) {
        if id.is_none() {
            return;
        }
        let ts_ns = self.now_ns();
        let mut inner = self.inner.lock();
        let Some(open) = inner.open.remove(&id.0) else {
            inner.mismatched_ends += 1;
            return;
        };
        let dur_ns = ts_ns.saturating_sub(open.begin_ns);
        inner.histograms.entry(open.name.clone()).or_default().record(dur_ns);
        Self::push_event(
            &mut inner,
            self.capacity,
            Event::End {
                id: id.0,
                name: open.name,
                detail: open.detail,
                ts_ns: open.begin_ns + dur_ns,
                dur_ns,
                depth: open.depth,
                fields: fields.to_vec(),
            },
        );
    }

    fn add(&self, counter: &str, delta: u64) {
        let ts_ns = self.now_ns();
        let mut inner = self.inner.lock();
        *inner.counters.entry(counter.to_string()).or_insert(0) += delta;
        Self::push_event(
            &mut inner,
            self.capacity,
            Event::Count { name: counter.to_string(), delta, ts_ns },
        );
    }

    fn observe_ns(&self, name: &str, nanos: u64) {
        let mut inner = self.inner.lock();
        inner.histograms.entry(name.to_string()).or_default().record(nanos);
    }

    fn cache_access(&self, node: &str, hit: bool) {
        let mut inner = self.inner.lock();
        let tally = inner.node_cache.entry(node.to_string()).or_default();
        if hit {
            tally.hits += 1;
        } else {
            tally.misses += 1;
        }
    }

    fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner { next_id: 1, ..Inner::default() };
    }

    fn counter(&self, name: &str) -> Option<u64> {
        self.inner.lock().counters.get(name).copied()
    }

    fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters().into_iter().collect()
    }

    fn histograms_snapshot(&self) -> Vec<(String, Histogram)> {
        self.histograms().into_iter().collect()
    }

    fn chrome_trace_json(&self) -> Option<String> {
        Some(crate::export::chrome_trace_json(self))
    }

    fn summary_table(&self) -> Option<String> {
        Some(crate::export::summary_table(self))
    }

    fn prometheus_text(&self) -> Option<String> {
        Some(crate::export::prometheus_text(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_complete() {
        let rec = InMemoryRecorder::new();
        let outer = rec.span_begin("outer", "o");
        let inner = rec.span_begin("inner", "i");
        rec.span_end(inner, &[("rows", 3)]);
        rec.span_end(outer, &[]);
        let spans = rec.completed_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[1].fields, vec![("rows", 3)]);
        // The inner span is contained in the outer.
        assert!(spans[1].begin_ns >= spans[0].begin_ns);
        assert!(spans[1].begin_ns + spans[1].dur_ns <= spans[0].begin_ns + spans[0].dur_ns);
        // Each closed span fed its histogram.
        assert_eq!(rec.histogram("outer").unwrap().count(), 1);
        assert_eq!(rec.histogram("inner").unwrap().count(), 1);
    }

    #[test]
    fn ring_buffer_wraparound() {
        let rec = InMemoryRecorder::with_capacity(8);
        for i in 0..20u64 {
            rec.add("c", i);
        }
        let events = rec.events();
        assert_eq!(events.len(), 8);
        assert_eq!(rec.dropped_events(), 12);
        // Oldest entries were evicted: the survivors are deltas 12..=19.
        match &events[0] {
            Event::Count { delta, .. } => assert_eq!(*delta, 12),
            other => panic!("unexpected event {other:?}"),
        }
        // The counter itself is exact despite eviction.
        assert_eq!(rec.counter("c"), Some((0..20).sum()));
    }

    #[test]
    fn end_survives_begin_eviction() {
        let rec = InMemoryRecorder::with_capacity(4);
        let s = rec.span_begin("survivor", "d");
        for _ in 0..10 {
            rec.add("noise", 1);
        }
        rec.span_end(s, &[("f", 7)]);
        let spans = rec.completed_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "survivor");
        assert_eq!(spans[0].detail, "d");
        assert_eq!(spans[0].fields, vec![("f", 7)]);
    }

    #[test]
    fn cache_tallies_and_hit_rate() {
        let rec = InMemoryRecorder::new();
        rec.cache_access("Restrict#3", false);
        rec.cache_access("Restrict#3", true);
        rec.cache_access("Restrict#3", true);
        rec.cache_access("Table#0", false);
        let t = rec.node_cache_tallies();
        assert_eq!(t["Restrict#3"], CacheTally { hits: 2, misses: 1 });
        let rate = rec.node_hit_rate("Restrict#3").unwrap();
        assert!((rate - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rec.node_hit_rate("Table#0"), Some(0.0));
        assert_eq!(rec.node_hit_rate("absent"), None);
    }

    #[test]
    fn reset_clears_everything() {
        let rec = InMemoryRecorder::with_capacity(4);
        let s = rec.span_begin("a", "");
        rec.span_end(s, &[]);
        for _ in 0..10 {
            rec.add("c", 1);
        }
        rec.cache_access("n", true);
        rec.reset();
        assert!(rec.events().is_empty());
        assert_eq!(rec.dropped_events(), 0);
        assert!(rec.counters().is_empty());
        assert!(rec.histograms().is_empty());
        assert!(rec.node_cache_tallies().is_empty());
        // Ids restart, and recording still works.
        let s2 = rec.span_begin("b", "");
        assert_eq!(s2, SpanId(1));
        rec.span_end(s2, &[]);
        assert_eq!(rec.completed_spans().len(), 1);
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let rec = InMemoryRecorder::new();
        rec.span_end(SpanId(42), &[]);
        rec.span_end(SpanId::NONE, &[]);
        assert!(rec.events().is_empty());
        // The unknown id is counted; the noop id is not even a call.
        assert_eq!(rec.mismatched_span_ends(), 1);
    }

    #[test]
    fn out_of_order_end_keeps_depth_sane() {
        let rec = InMemoryRecorder::new();
        let outer = rec.span_begin("outer", "");
        let inner = rec.span_begin("inner", "");
        // End the *outer* span first — before the fix this decremented a
        // global depth counter while `inner` was still open, so the next
        // begin reused depth 1 and exports nested it under `inner`.
        rec.span_end(outer, &[]);
        let next = rec.span_begin("next", "");
        rec.span_end(next, &[]);
        rec.span_end(inner, &[]);
        assert_eq!(rec.mismatched_span_ends(), 0);
        let spans = rec.completed_spans();
        let depth_of = |n: &str| spans.iter().find(|s| s.name == n).unwrap().depth;
        assert_eq!(depth_of("outer"), 0);
        assert_eq!(depth_of("inner"), 1);
        // `inner` is still open when `next` begins, so depth 1 — and once
        // everything closes, a fresh span is back at depth 0.
        assert_eq!(depth_of("next"), 1);
        let fresh = rec.span_begin("fresh", "");
        rec.span_end(fresh, &[]);
        assert_eq!(rec.completed_spans().iter().find(|s| s.name == "fresh").unwrap().depth, 0);
    }

    #[test]
    fn double_end_is_counted_not_corrupting() {
        let rec = InMemoryRecorder::new();
        let a = rec.span_begin("a", "");
        rec.span_end(a, &[]);
        rec.span_end(a, &[]); // double end: dropped, counted
        assert_eq!(rec.mismatched_span_ends(), 1);
        assert_eq!(rec.completed_spans().len(), 1);
        assert_eq!(rec.histogram("a").unwrap().count(), 1);
        // Depth accounting is untouched by the stray end.
        let b = rec.span_begin("b", "");
        rec.span_end(b, &[]);
        assert_eq!(rec.completed_spans().iter().find(|s| s.name == "b").unwrap().depth, 0);
    }

    #[test]
    fn begin_eviction_cannot_corrupt_nesting_or_durations() {
        // Tiny ring: every Begin is evicted long before its End arrives.
        let rec = InMemoryRecorder::with_capacity(2);
        let outer = rec.span_begin("outer", "");
        let inner = rec.span_begin("inner", "");
        for _ in 0..16 {
            rec.add("noise", 1);
        }
        rec.span_end(inner, &[]);
        rec.span_end(outer, &[]);
        assert_eq!(rec.mismatched_span_ends(), 0);
        let spans = rec.completed_spans();
        // Both Begins were evicted, yet both spans reconstruct from their
        // self-contained Ends: correct depths, non-garbage durations, and
        // each histogram saw its span exactly once.
        assert_eq!(spans.len(), 2);
        let outer_span = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner_span = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer_span.depth, 0);
        assert_eq!(inner_span.depth, 1);
        assert!(inner_span.dur_ns <= outer_span.dur_ns);
        assert!(outer_span.begin_ns + outer_span.dur_ns <= rec.now_ns());
        assert_eq!(rec.histogram("outer").unwrap().count(), 1);
        assert_eq!(rec.histogram("inner").unwrap().count(), 1);
    }

    #[test]
    fn snapshots_enumerate_counters_and_histograms() {
        let rec = InMemoryRecorder::new();
        rec.add("b.two", 2);
        rec.add("a.one", 1);
        rec.observe_ns("lat", 500);
        let counters = rec.counters_snapshot();
        assert_eq!(counters, vec![("a.one".to_string(), 1), ("b.two".to_string(), 2)]);
        let hists = rec.histograms_snapshot();
        assert_eq!(hists.len(), 1);
        assert_eq!(hists[0].0, "lat");
        assert_eq!(hists[0].1.count(), 1);
    }
}
