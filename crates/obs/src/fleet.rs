//! Fleet-wide metrics aggregation for `tiogad`.
//!
//! A [`crate::InMemoryRecorder`] observes *one* session.  The daemon
//! hosts many, across tenants, and an operator asking "which tenant is
//! slow" needs every session's counters and latency histograms merged
//! into one scrape under `{tenant, session}` labels.  [`FleetRecorder`]
//! is that registry: each attach registers the session's recorder, each
//! detach retires it — folding its final counters/histograms into a
//! per-tenant "retired" aggregate so fleet totals stay monotonic and
//! memory stays bounded no matter how many sessions come and go.
//!
//! The exposition is native Prometheus: counters become
//! `tioga2_fleet_<name>{tenant,session}` series and histograms become
//! spec-compliant `histogram` families (cumulative `_bucket{le=...}`
//! including `+Inf`, plus `_sum`/`_count`) via
//! [`crate::export::histogram_series`].

use crate::export::{escape_json, histogram_series, prom_name};
use crate::hist::Histogram;
use crate::memory::InMemoryRecorder;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// `session` label used for a tenant's retired-session aggregate.  Real
/// session ids come from `attach` and never contain parentheses.
pub const RETIRED_SESSION_LABEL: &str = "(retired)";

#[derive(Default)]
struct Retired {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    sessions: u64,
}

#[derive(Default)]
struct Inner {
    /// Live per-session recorders, keyed `(tenant, session)`.
    live: BTreeMap<(String, String), Arc<InMemoryRecorder>>,
    /// Folded-in state of detached sessions, per tenant.
    retired: BTreeMap<String, Retired>,
}

/// Aggregates N per-session recorders into one labeled exposition; see
/// the module docs.  All methods take `&self` — the daemon shares one
/// instance across connection and session-worker threads.
#[derive(Default)]
pub struct FleetRecorder {
    inner: Mutex<Inner>,
}

impl FleetRecorder {
    pub fn new() -> FleetRecorder {
        FleetRecorder::default()
    }

    /// Register a session's recorder under `{tenant, session}`.
    /// Re-registering the same key (journal-backed re-attach) replaces
    /// the old recorder after folding it into the retired aggregate.
    pub fn register(&self, tenant: &str, session: &str, rec: Arc<InMemoryRecorder>) {
        let mut inner = self.inner.lock();
        let key = (tenant.to_string(), session.to_string());
        if let Some(old) = inner.live.insert(key, rec) {
            fold(inner.retired.entry(tenant.to_string()).or_default(), &old);
        }
    }

    /// Unregister a detached session, folding its final numbers into
    /// the tenant's retired aggregate (so totals never regress).
    pub fn retire(&self, tenant: &str, session: &str) {
        let mut inner = self.inner.lock();
        if let Some(rec) = inner.live.remove(&(tenant.to_string(), session.to_string())) {
            fold(inner.retired.entry(tenant.to_string()).or_default(), &rec);
        }
    }

    /// Live registered sessions per tenant.
    pub fn live_sessions(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (tenant, _) in self.inner.lock().live.keys() {
            *out.entry(tenant.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Every counter summed across all live and retired sessions.
    pub fn counters_total(&self) -> BTreeMap<String, u64> {
        let inner = self.inner.lock();
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for rec in inner.live.values() {
            for (name, v) in rec.counters() {
                *out.entry(name).or_insert(0) += v;
            }
        }
        for retired in inner.retired.values() {
            for (name, v) in &retired.counters {
                *out.entry(name.clone()).or_insert(0) += v;
            }
        }
        out
    }

    /// Every histogram merged across all live and retired sessions.
    pub fn histograms_total(&self) -> BTreeMap<String, Histogram> {
        let inner = self.inner.lock();
        let mut out: BTreeMap<String, Histogram> = BTreeMap::new();
        for rec in inner.live.values() {
            for (name, h) in rec.histograms() {
                out.entry(name).or_default().merge(&h);
            }
        }
        for retired in inner.retired.values() {
            for (name, h) in &retired.histograms {
                out.entry(name.clone()).or_default().merge(h);
            }
        }
        out
    }

    /// Prometheus text exposition of the whole fleet: counters as
    /// `tioga2_fleet_<name>{tenant,session}` series, histograms as
    /// native `histogram` families, retired aggregates under the
    /// [`RETIRED_SESSION_LABEL`] session.  Family-major, with one
    /// `# TYPE` header per family; deterministic order (BTreeMap).
    pub fn prometheus_text(&self) -> String {
        let inner = self.inner.lock();
        // (rendered label body, counters, histograms) per series source.
        type SeriesSource = (String, BTreeMap<String, u64>, BTreeMap<String, Histogram>);
        let mut series: Vec<SeriesSource> = Vec::new();
        for ((tenant, session), rec) in &inner.live {
            series.push((labels(tenant, session), rec.counters(), rec.histograms()));
        }
        for (tenant, retired) in &inner.retired {
            if retired.sessions == 0 {
                continue;
            }
            series.push((
                labels(tenant, RETIRED_SESSION_LABEL),
                retired.counters.clone(),
                retired.histograms.clone(),
            ));
        }

        let mut out = String::new();
        let counter_families: std::collections::BTreeSet<&String> =
            series.iter().flat_map(|(_, c, _)| c.keys()).collect();
        for name in counter_families {
            let metric = format!("tioga2_fleet_{}", prom_name(name));
            out.push_str(&format!("# TYPE {metric} counter\n"));
            for (labels, counters, _) in &series {
                if let Some(v) = counters.get(name) {
                    out.push_str(&format!("{metric}{{{labels}}} {v}\n"));
                }
            }
        }
        let hist_families: std::collections::BTreeSet<&String> =
            series.iter().flat_map(|(_, _, h)| h.keys()).collect();
        for name in hist_families {
            let metric = format!("tioga2_fleet_{}", prom_name(name));
            out.push_str(&format!("# TYPE {metric} histogram\n"));
            for (labels, _, hists) in &series {
                if let Some(h) = hists.get(name) {
                    histogram_series(&mut out, &metric, labels, h);
                }
            }
        }
        out
    }
}

fn labels(tenant: &str, session: &str) -> String {
    format!("tenant=\"{}\",session=\"{}\"", escape_json(tenant), escape_json(session))
}

fn fold(retired: &mut Retired, rec: &InMemoryRecorder) {
    for (name, v) in rec.counters() {
        *retired.counters.entry(name).or_insert(0) += v;
    }
    for (name, h) in rec.histograms() {
        retired.histograms.entry(name).or_default().merge(&h);
    }
    retired.sessions += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn session_recorder(evals: u64, latencies: &[u64]) -> Arc<InMemoryRecorder> {
        let rec = Arc::new(InMemoryRecorder::new());
        rec.add("engine.box_evals", evals);
        for &ns in latencies {
            rec.observe_ns("demand.latency_ns", ns);
        }
        rec
    }

    #[test]
    fn totals_equal_per_session_recorder_sums() {
        let fleet = FleetRecorder::new();
        let a1 = session_recorder(3, &[100, 200]);
        let a2 = session_recorder(5, &[300]);
        let b1 = session_recorder(7, &[50, 60, 70]);
        fleet.register("acme", "s1", a1.clone());
        fleet.register("acme", "s2", a2.clone());
        fleet.register("beta", "s3", b1.clone());

        assert_eq!(fleet.counters_total()["engine.box_evals"], 15);
        let h = &fleet.histograms_total()["demand.latency_ns"];
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 100 + 200 + 300 + 50 + 60 + 70);
        assert_eq!(
            fleet.live_sessions(),
            BTreeMap::from([("acme".to_string(), 2), ("beta".to_string(), 1)])
        );

        // Retiring folds the session away without losing its numbers...
        fleet.retire("acme", "s2");
        assert_eq!(fleet.counters_total()["engine.box_evals"], 15);
        assert_eq!(fleet.histograms_total()["demand.latency_ns"].count(), 6);
        assert_eq!(fleet.live_sessions().get("acme"), Some(&1));
        // ...and the exposition moves it to the retired aggregate.
        let text = fleet.prometheus_text();
        assert!(
            text.contains("tioga2_fleet_engine_box_evals{tenant=\"acme\",session=\"(retired)\"} 5"),
            "{text}"
        );
        assert!(!text.contains("session=\"s2\""), "{text}");
    }

    #[test]
    fn exposition_is_labeled_and_spec_compliant() {
        let fleet = FleetRecorder::new();
        fleet.register("acme", "s1", session_recorder(2, &[100]));
        fleet.register("beta", "s2", session_recorder(4, &[1000, 1000]));
        let text = fleet.prometheus_text();
        assert!(text.contains("# TYPE tioga2_fleet_engine_box_evals counter"), "{text}");
        assert!(
            text.contains("tioga2_fleet_engine_box_evals{tenant=\"acme\",session=\"s1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("tioga2_fleet_engine_box_evals{tenant=\"beta\",session=\"s2\"} 4"),
            "{text}"
        );
        assert!(text.contains("# TYPE tioga2_fleet_demand_latency_ns histogram"), "{text}");
        // 100 lands in [64,128); both 1000s in [512,1024).
        assert!(
            text.contains(
                "tioga2_fleet_demand_latency_ns_bucket{tenant=\"acme\",session=\"s1\",le=\"128\"} 1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "tioga2_fleet_demand_latency_ns_bucket{tenant=\"beta\",session=\"s2\",le=\"+Inf\"} 2"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "tioga2_fleet_demand_latency_ns_sum{tenant=\"beta\",session=\"s2\"} 2000"
            ),
            "{text}"
        );
        // Each # TYPE header appears exactly once per family.
        assert_eq!(text.matches("# TYPE tioga2_fleet_demand_latency_ns histogram").count(), 1);
    }

    #[test]
    fn golden_exposition_format() {
        // Pins the exact exposition byte-for-byte: label order, family
        // grouping, cumulative buckets, +Inf, _sum/_count.  Change this
        // only when the format deliberately changes.
        let fleet = FleetRecorder::new();
        let rec = Arc::new(InMemoryRecorder::new());
        rec.add("engine.box_evals", 2);
        rec.observe_ns("demand.latency_ns", 3);
        rec.observe_ns("demand.latency_ns", 100);
        fleet.register("acme", "s1", rec);
        let expected = "\
# TYPE tioga2_fleet_engine_box_evals counter
tioga2_fleet_engine_box_evals{tenant=\"acme\",session=\"s1\"} 2
# TYPE tioga2_fleet_demand_latency_ns histogram
tioga2_fleet_demand_latency_ns_bucket{tenant=\"acme\",session=\"s1\",le=\"4\"} 1
tioga2_fleet_demand_latency_ns_bucket{tenant=\"acme\",session=\"s1\",le=\"128\"} 2
tioga2_fleet_demand_latency_ns_bucket{tenant=\"acme\",session=\"s1\",le=\"+Inf\"} 2
tioga2_fleet_demand_latency_ns_sum{tenant=\"acme\",session=\"s1\"} 103
tioga2_fleet_demand_latency_ns_count{tenant=\"acme\",session=\"s1\"} 2
";
        assert_eq!(fleet.prometheus_text(), expected);
    }

    #[test]
    fn reregistering_a_session_folds_the_old_recorder() {
        let fleet = FleetRecorder::new();
        fleet.register("t", "s", session_recorder(10, &[]));
        fleet.register("t", "s", session_recorder(1, &[]));
        assert_eq!(fleet.counters_total()["engine.box_evals"], 11);
        assert_eq!(fleet.live_sessions()["t"], 1);
    }
}
