//! Log₂-bucketed latency histograms.
//!
//! 64 buckets, where bucket `i` covers `[2^i, 2^(i+1))` nanoseconds
//! (bucket 0 also absorbs 0).  That spans 1ns to ~584 years with ≤2×
//! relative error before interpolation, which is plenty for latency
//! work; quantiles interpolate linearly inside the winning bucket and
//! are clamped to the observed min/max, so p50 of a constant stream is
//! exact.

/// One histogram: fixed 64-bucket log₂ layout plus exact count / sum /
/// min / max.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// Index of the bucket covering `v`: `floor(log2(v))`, with 0 mapped to
/// bucket 0.
pub fn bucket_index(v: u64) -> usize {
    63 - (v | 1).leading_zeros() as usize
}

/// Inclusive-exclusive bounds `[lo, hi)` of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

impl Histogram {
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated within
    /// the winning bucket and clamped to the observed min/max.  Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; skip interpolation.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        // Rank of the target observation, 1-based.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let (lo, hi) = bucket_bounds(i);
                // Midpoint convention: the k-th of n observations in a
                // bucket sits at fraction (k - 0.5)/n, so q=0 maps near
                // `lo` and q=1 near (not onto) the exclusive bound `hi`.
                let frac = ((target - cum) as f64 - 0.5) / n as f64;
                let est = lo as f64 + frac * (hi.saturating_sub(lo)) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            cum += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one.  Buckets, counts, and sums
    /// add; min/max take the extremes.  The fleet aggregator uses this to
    /// merge per-session histograms into per-tenant (and retired-session)
    /// totals without losing bucket resolution.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lo, hi, count)`, for exposition formats.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..63 {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo.max(1)), i);
            assert_eq!(bucket_index(hi - 1), i);
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn constant_stream_quantiles_are_exact() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.record(777);
        }
        assert_eq!(h.p50(), 777);
        assert_eq!(h.p95(), 777);
        assert_eq!(h.p99(), 777);
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
    }

    #[test]
    fn uniform_stream_quantile_ordering() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Log buckets give ≤2x relative error.
        assert!((2_500..=10_000).contains(&p50), "p50={p50}");
        assert!(p99 >= 5_000, "p99={p99}");
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.sum(), (1 + 10_000) * 10_000 / 2);
    }

    #[test]
    fn merge_is_equivalent_to_recording_both_streams() {
        let (mut a, mut b, mut both) =
            (Histogram::default(), Histogram::default(), Histogram::default());
        for v in [1u64, 7, 100, 5_000] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 3, 900_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
        // Merging an empty histogram is a no-op, including min tracking.
        let snapshot = a.nonzero_buckets();
        a.merge(&Histogram::default());
        assert_eq!(a.nonzero_buckets(), snapshot);
        assert_eq!(a.min(), both.min());
    }

    #[test]
    fn quantile_within_bucket_bounds() {
        let mut h = Histogram::default();
        for &v in &[3u64, 5, 100, 1000, 100_000] {
            h.record(v);
        }
        // p50 (3rd of 5) lands in the bucket holding 100: [64, 128).
        let p50 = h.p50();
        assert!((64..128).contains(&p50), "p50={p50}");
        assert_eq!(h.quantile(1.0), 100_000);
    }
}
