//! The session event journal: a typed, versioned, append-only log of
//! everything that changes a session.
//!
//! The paper's core move is that every direct-manipulation gesture *is* a
//! well-specified program edit — so a session is an event log.  This
//! module makes that log first-class:
//!
//! * [`SessionEvent`] — the typed event vocabulary: program edits (each
//!   carrying the full serialized program, so replay is exact), gestures,
//!   renders, §8 updates, configuration changes, demand lifecycle
//!   outcomes (status / budget / fault class), cache invalidations, and
//!   snapshot markers embedding a full [`SessionSnapshot`].
//! * [`EventLog`] — a thread-safe append-only log with a bounded
//!   in-memory ring, an optional JSONL file sink, and a cursor API
//!   (`events_since`) that backs the REPL's `:watch` live tail.
//! * A versioned JSONL wire format (`{"format":"tioga2-journal",
//!   "version":1}` header, one JSON object per line) written and parsed
//!   by hand — the workspace is dependency-free, so a ~150-line JSON
//!   value round-trip lives here too.
//!
//! Recovery = restore the last [`SessionEvent::Snapshot`] (program,
//! catalog, saved-program library, undo stacks, view state) and replay
//! the log tail.  The session layer owns that replay; this module only
//! guarantees the events round-trip byte-exactly.

use crate::export::escape_json;
use parking_lot::Mutex;
use std::sync::{Arc, OnceLock};

/// Wire-format version stamped into the JSONL header line.
pub const JOURNAL_VERSION: u64 = 1;

// ------------------------------------------------------ io fault hook

/// A process-global hook tripped before every journal fsync, so a chaos
/// harness can inject `journal.fsync` faults without this crate knowing
/// about any fault registry.  Arguments are the site name and the log's
/// monotonically increasing sync coordinate; `Err` makes the sync fail
/// with that message (counted in [`EventLog::sync_errors`]), and a
/// panicking hook simulates a crash mid-commit.
pub type IoFaultHook = Arc<dyn Fn(&str, u64) -> Result<(), String> + Send + Sync>;

fn io_fault_hook() -> &'static Mutex<Option<IoFaultHook>> {
    static HOOK: OnceLock<Mutex<Option<IoFaultHook>>> = OnceLock::new();
    HOOK.get_or_init(|| Mutex::new(None))
}

/// Install (or with `None`, remove) the journal IO fault hook.
pub fn set_io_fault_hook(hook: Option<IoFaultHook>) {
    *io_fault_hook().lock() = hook;
}

fn trip_io_fault(site: &str, coord: u64) -> Result<(), String> {
    let hook = io_fault_hook().lock().clone();
    match hook {
        Some(h) => h(site, coord),
        None => Ok(()),
    }
}

/// Default bound on the in-memory event ring (events beyond it are
/// dropped oldest-first and counted; a file sink keeps everything).
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

// ------------------------------------------------------------- events

/// One entry of the session journal.
///
/// Events fall into two classes: *replayable* state changes (edits,
/// undo/redo, gestures, renders, updates, config) that recovery re-applies,
/// and *observability* records (demand lifecycle, cache invalidations,
/// snapshot markers) that recovery skips but `sys.events` and `:watch`
/// expose.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// A successful program edit.  `program` is the full serialized
    /// program *after* the edit (`TIOGA2-PROGRAM v1` text), so replay
    /// needs no knowledge of the edit op itself.
    Edit { op: String, program: String },
    /// The undo button (replayed through the undo machinery).
    Undo,
    /// The redo button.
    Redo,
    /// A viewer gesture: pan, zoom, slider, slaving, traversal…
    /// `args` are the gesture's parameters printed exactly (`{:?}` for
    /// floats round-trips).
    Gesture { gesture: String, canvas: String, args: Vec<String> },
    /// A canvas render (fits the viewer on first render, so replay must
    /// re-render to reproduce view state).
    Render { canvas: String },
    /// A §8 base-table update: `changes` are `(field, encoded value)`
    /// pairs in the relational persistence encoding.
    Update { table: String, row_id: u64, changes: Vec<(String, String)> },
    /// A session configuration change (threads, canvas size, focus…).
    Config { key: String, value: String },
    /// Demand lifecycle outcome: `status` is `ok` or the abort class
    /// (`budget_exceeded`, `cancelled`, `fault_injected`, `panic`,
    /// `error`); `detail` carries the error text when aborted.
    Demand {
        demand_id: u64,
        /// Protocol request id of the frame that issued the demand (0
        /// outside a request context — REPL, tests, journals written
        /// before the field existed).
        request_id: u64,
        label: String,
        status: String,
        rows_out: u64,
        wall_ns: u64,
        threads: u64,
        detail: String,
    },
    /// A cache invalidation: `scope` is `"all"` for a full flush, or
    /// the comma-separated list of base tables whose demand cones were
    /// selectively evicted (or delta-patched); `entries` is how many
    /// memoized results were evicted.
    CacheInvalidation { scope: String, entries: u64 },
    /// A recovery point embedding the full session state.
    Snapshot(Box<SessionSnapshot>),
}

/// Everything recovery needs to rebuild a session at a cut point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionSnapshot {
    /// Serialized current program (`TIOGA2-PROGRAM v1` text).
    pub program: String,
    /// Catalog base tables as `(name, TIOGA2-RELATION v1 text)` pairs
    /// (self-hosted `sys.*` tables are rebuilt on demand, not stored).
    pub tables: Vec<(String, String)>,
    /// The environment's saved-program library.
    pub programs: Vec<(String, String)>,
    /// Undo stack (oldest first), as serialized programs.
    pub undo_past: Vec<String>,
    /// Redo stack (oldest first), as serialized programs.
    pub undo_future: Vec<String>,
    /// View state: canvases, viewer positions, slaving, travel stack.
    pub view: ViewState,
}

/// The session's view-layer state at a snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ViewState {
    pub focus: Option<String>,
    pub canvas_size: (u64, u64),
    pub canvases: Vec<CanvasView>,
    /// Slaved canvas pairs, in slaving order.
    pub slaves: Vec<(String, String)>,
    /// Wormhole travel stack (oldest first).
    pub travels: Vec<TravelView>,
}

/// One canvas's viewer state.
#[derive(Debug, Clone, PartialEq)]
pub struct CanvasView {
    pub name: String,
    pub fitted: bool,
    pub size: (u64, u64),
    pub center: (f64, f64),
    pub elevation: f64,
    /// Slider dimensions as `(dim, lo, hi)`.
    pub sliders: Vec<(String, f64, f64)>,
    /// Magnifying glasses attached to the canvas (they affect rendering,
    /// so byte-identical recovery must restore them).
    pub magnifiers: Vec<MagnifierView>,
}

/// One magnifying glass on a canvas.
#[derive(Debug, Clone, PartialEq)]
pub struct MagnifierView {
    /// Screen rectangle (x, y, w, h) in pixels.
    pub rect: (i64, i64, u64, u64),
    pub zoom: f64,
    pub slaved: bool,
    /// Fixed inner center when not slaved.
    pub center: (f64, f64),
    /// Optional alternative display attribute (Figure 9).
    pub display_attr: Option<String>,
}

/// One wormhole traversal on the travel stack.
#[derive(Debug, Clone, PartialEq)]
pub struct TravelView {
    pub canvas: String,
    pub center: (f64, f64),
    pub elevation: f64,
    pub entry_elevation: f64,
}

impl SessionEvent {
    /// Stable kind tag, used for `:watch` filtering and `sys.events`.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionEvent::Edit { .. } => "edit",
            SessionEvent::Undo => "undo",
            SessionEvent::Redo => "redo",
            SessionEvent::Gesture { .. } => "gesture",
            SessionEvent::Render { .. } => "render",
            SessionEvent::Update { .. } => "update",
            SessionEvent::Config { .. } => "config",
            SessionEvent::Demand { .. } => "demand",
            SessionEvent::CacheInvalidation { .. } => "cache",
            SessionEvent::Snapshot(_) => "snapshot",
        }
    }

    /// Does recovery re-apply this event when replaying the log tail?
    pub fn is_replayable(&self) -> bool {
        !matches!(
            self,
            SessionEvent::Demand { .. }
                | SessionEvent::CacheInvalidation { .. }
                | SessionEvent::Snapshot(_)
        )
    }

    /// One-line human summary for `:journal tail` / `:watch`.
    pub fn summary(&self) -> String {
        match self {
            SessionEvent::Edit { op, program } => {
                format!("edit {op} ({} bytes of program)", program.len())
            }
            SessionEvent::Undo => "undo".into(),
            SessionEvent::Redo => "redo".into(),
            SessionEvent::Gesture { gesture, canvas, args } => {
                format!("gesture {gesture} '{canvas}' [{}]", args.join(", "))
            }
            SessionEvent::Render { canvas } => format!("render '{canvas}'"),
            SessionEvent::Update { table, row_id, changes } => {
                format!("update '{table}' row {row_id} ({} fields)", changes.len())
            }
            SessionEvent::Config { key, value } => format!("config {key}={value}"),
            SessionEvent::Demand {
                demand_id,
                request_id,
                label,
                status,
                rows_out,
                wall_ns,
                ..
            } => {
                let req =
                    if *request_id != 0 { format!(" req={request_id}") } else { String::new() };
                format!("demand #{demand_id}{req} {label} {status} rows={rows_out} ns={wall_ns}")
            }
            SessionEvent::CacheInvalidation { scope, entries } => {
                format!("cache invalidate scope={scope} entries={entries}")
            }
            SessionEvent::Snapshot(s) => {
                format!("snapshot ({} tables, {} undo levels)", s.tables.len(), s.undo_past.len())
            }
        }
    }
}

// ----------------------------------------------------- minimal JSON

/// A JSON value — the dependency-free workspace hand-rolls the ~150
/// lines rather than pulling serde in.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x:?}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape_json(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape_json(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub(crate) fn to_text(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    pub(crate) fn parse(src: &str) -> Result<Json, String> {
        let mut p = JsonParser { chars: src.chars().peekable() };
        let v = p.value()?;
        p.skip_ws();
        if p.chars.peek().is_some() {
            return Err("trailing input after JSON value".into());
        }
        Ok(v)
    }

    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn str_field(&self, key: &str) -> Result<String, String> {
        match self.get(key) {
            Some(Json::Str(s)) => Ok(s.clone()),
            _ => Err(format!("missing string field '{key}'")),
        }
    }

    fn num_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(Json::Num(x)) => Ok(*x),
            _ => Err(format!("missing numeric field '{key}'")),
        }
    }

    fn u64_field(&self, key: &str) -> Result<u64, String> {
        Ok(self.num_field(key)? as u64)
    }

    fn bool_field(&self, key: &str) -> Result<bool, String> {
        match self.get(key) {
            Some(Json::Bool(b)) => Ok(*b),
            _ => Err(format!("missing boolean field '{key}'")),
        }
    }

    fn arr_field<'a>(&'a self, key: &str) -> Result<&'a [Json], String> {
        match self.get(key) {
            Some(Json::Arr(items)) => Ok(items),
            _ => Err(format!("missing array field '{key}'")),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {}", other.to_text())),
        }
    }

    fn as_num(&self) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(format!("expected number, got {}", other.to_text())),
        }
    }

    fn as_arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {}", other.to_text())),
        }
    }
}

struct JsonParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.next() {
            Some(got) if got == c => Ok(()),
            other => Err(format!("expected '{c}', got {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for expected in word.chars() {
            if self.chars.next() != Some(expected) {
                return Err(format!("bad literal (wanted '{word}')"));
            }
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.chars.peek() {
            None => Err("unexpected end of JSON input".into()),
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => {
                self.chars.next();
                let mut items = Vec::new();
                self.skip_ws();
                if self.chars.peek() == Some(&']') {
                    self.chars.next();
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some(']') => return Ok(Json::Arr(items)),
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            Some('{') => {
                self.chars.next();
                let mut fields = Vec::new();
                self.skip_ws();
                if self.chars.peek() == Some(&'}') {
                    self.chars.next();
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(':')?;
                    let v = self.value()?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.chars.next() {
                        Some(',') => continue,
                        Some('}') => return Ok(Json::Obj(fields)),
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            Some(_) => {
                // Number.
                let mut text = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() || "+-.eE".contains(c) {
                        text.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{text}'"))
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        match self.chars.next() {
            Some('"') => {}
            other => return Err(format!("expected '\"', got {other:?}")),
        }
        let mut s = String::new();
        loop {
            match self.chars.next() {
                None => return Err("unclosed JSON string".into()),
                Some('"') => return Ok(s),
                Some('\\') => match self.chars.next() {
                    Some('"') => s.push('"'),
                    Some('\\') => s.push('\\'),
                    Some('/') => s.push('/'),
                    Some('n') => s.push('\n'),
                    Some('r') => s.push('\r'),
                    Some('t') => s.push('\t'),
                    Some('b') => s.push('\u{8}'),
                    Some('f') => s.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .chars
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => s.push(c),
            }
        }
    }
}

// -------------------------------------------- event <-> JSON encoding

fn pairs_json(pairs: &[(String, String)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(a, b)| Json::Arr(vec![Json::Str(a.clone()), Json::Str(b.clone())]))
            .collect(),
    )
}

fn pairs_from(items: &[Json]) -> Result<Vec<(String, String)>, String> {
    items
        .iter()
        .map(|p| {
            let pair = p.as_arr()?;
            if pair.len() != 2 {
                return Err("expected a [a, b] pair".into());
            }
            Ok((pair[0].as_str()?.to_string(), pair[1].as_str()?.to_string()))
        })
        .collect()
}

fn strings_json(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn strings_from(items: &[Json]) -> Result<Vec<String>, String> {
    items.iter().map(|s| Ok(s.as_str()?.to_string())).collect()
}

fn view_json(v: &ViewState) -> Json {
    let canvases = v
        .canvases
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::Str(c.name.clone())),
                ("fitted".into(), Json::Bool(c.fitted)),
                ("w".into(), Json::Num(c.size.0 as f64)),
                ("h".into(), Json::Num(c.size.1 as f64)),
                ("cx".into(), Json::Num(c.center.0)),
                ("cy".into(), Json::Num(c.center.1)),
                ("elevation".into(), Json::Num(c.elevation)),
                (
                    "sliders".into(),
                    Json::Arr(
                        c.sliders
                            .iter()
                            .map(|(d, lo, hi)| {
                                Json::Arr(vec![
                                    Json::Str(d.clone()),
                                    Json::Num(*lo),
                                    Json::Num(*hi),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "magnifiers".into(),
                    Json::Arr(
                        c.magnifiers
                            .iter()
                            .map(|m| {
                                Json::Obj(vec![
                                    ("x".into(), Json::Num(m.rect.0 as f64)),
                                    ("y".into(), Json::Num(m.rect.1 as f64)),
                                    ("w".into(), Json::Num(m.rect.2 as f64)),
                                    ("h".into(), Json::Num(m.rect.3 as f64)),
                                    ("zoom".into(), Json::Num(m.zoom)),
                                    ("slaved".into(), Json::Bool(m.slaved)),
                                    ("cx".into(), Json::Num(m.center.0)),
                                    ("cy".into(), Json::Num(m.center.1)),
                                    (
                                        "display".into(),
                                        match &m.display_attr {
                                            Some(d) => Json::Str(d.clone()),
                                            None => Json::Null,
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let travels = v
        .travels
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("canvas".into(), Json::Str(t.canvas.clone())),
                ("cx".into(), Json::Num(t.center.0)),
                ("cy".into(), Json::Num(t.center.1)),
                ("elevation".into(), Json::Num(t.elevation)),
                ("entry".into(), Json::Num(t.entry_elevation)),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "focus".into(),
            match &v.focus {
                Some(f) => Json::Str(f.clone()),
                None => Json::Null,
            },
        ),
        ("cw".into(), Json::Num(v.canvas_size.0 as f64)),
        ("ch".into(), Json::Num(v.canvas_size.1 as f64)),
        ("canvases".into(), Json::Arr(canvases)),
        ("slaves".into(), pairs_json(&v.slaves)),
        ("travels".into(), Json::Arr(travels)),
    ])
}

fn view_from(j: &Json) -> Result<ViewState, String> {
    let focus = match j.get("focus") {
        Some(Json::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let mut canvases = Vec::new();
    for c in j.arr_field("canvases")? {
        let mut sliders = Vec::new();
        for s in c.arr_field("sliders")? {
            let t = s.as_arr()?;
            if t.len() != 3 {
                return Err("bad slider triple".into());
            }
            sliders.push((t[0].as_str()?.to_string(), t[1].as_num()?, t[2].as_num()?));
        }
        let mut magnifiers = Vec::new();
        for m in c.arr_field("magnifiers")? {
            magnifiers.push(MagnifierView {
                rect: (
                    m.num_field("x")? as i64,
                    m.num_field("y")? as i64,
                    m.u64_field("w")?,
                    m.u64_field("h")?,
                ),
                zoom: m.num_field("zoom")?,
                slaved: m.bool_field("slaved")?,
                center: (m.num_field("cx")?, m.num_field("cy")?),
                display_attr: match m.get("display") {
                    Some(Json::Str(s)) => Some(s.clone()),
                    _ => None,
                },
            });
        }
        canvases.push(CanvasView {
            name: c.str_field("name")?,
            fitted: c.bool_field("fitted")?,
            size: (c.u64_field("w")?, c.u64_field("h")?),
            center: (c.num_field("cx")?, c.num_field("cy")?),
            elevation: c.num_field("elevation")?,
            sliders,
            magnifiers,
        });
    }
    let mut travels = Vec::new();
    for t in j.arr_field("travels")? {
        travels.push(TravelView {
            canvas: t.str_field("canvas")?,
            center: (t.num_field("cx")?, t.num_field("cy")?),
            elevation: t.num_field("elevation")?,
            entry_elevation: t.num_field("entry")?,
        });
    }
    Ok(ViewState {
        focus,
        canvas_size: (j.u64_field("cw")?, j.u64_field("ch")?),
        canvases,
        slaves: pairs_from(j.arr_field("slaves")?)?,
        travels,
    })
}

fn event_json(seq: u64, ev: &SessionEvent) -> Json {
    let mut fields = vec![
        ("seq".to_string(), Json::Num(seq as f64)),
        ("kind".to_string(), Json::Str(ev.kind().to_string())),
    ];
    match ev {
        SessionEvent::Edit { op, program } => {
            fields.push(("op".into(), Json::Str(op.clone())));
            fields.push(("program".into(), Json::Str(program.clone())));
        }
        SessionEvent::Undo | SessionEvent::Redo => {}
        SessionEvent::Gesture { gesture, canvas, args } => {
            fields.push(("gesture".into(), Json::Str(gesture.clone())));
            fields.push(("canvas".into(), Json::Str(canvas.clone())));
            fields.push(("args".into(), strings_json(args)));
        }
        SessionEvent::Render { canvas } => {
            fields.push(("canvas".into(), Json::Str(canvas.clone())));
        }
        SessionEvent::Update { table, row_id, changes } => {
            fields.push(("table".into(), Json::Str(table.clone())));
            fields.push(("row".into(), Json::Num(*row_id as f64)));
            fields.push(("changes".into(), pairs_json(changes)));
        }
        SessionEvent::Config { key, value } => {
            fields.push(("key".into(), Json::Str(key.clone())));
            fields.push(("value".into(), Json::Str(value.clone())));
        }
        SessionEvent::Demand {
            demand_id,
            request_id,
            label,
            status,
            rows_out,
            wall_ns,
            threads,
            detail,
        } => {
            fields.push(("demand".into(), Json::Num(*demand_id as f64)));
            fields.push(("req".into(), Json::Num(*request_id as f64)));
            fields.push(("label".into(), Json::Str(label.clone())));
            fields.push(("status".into(), Json::Str(status.clone())));
            fields.push(("rows".into(), Json::Num(*rows_out as f64)));
            fields.push(("ns".into(), Json::Num(*wall_ns as f64)));
            fields.push(("threads".into(), Json::Num(*threads as f64)));
            fields.push(("detail".into(), Json::Str(detail.clone())));
        }
        SessionEvent::CacheInvalidation { scope, entries } => {
            fields.push(("scope".into(), Json::Str(scope.clone())));
            fields.push(("entries".into(), Json::Num(*entries as f64)));
        }
        SessionEvent::Snapshot(s) => {
            fields.push(("program".into(), Json::Str(s.program.clone())));
            fields.push(("tables".into(), pairs_json(&s.tables)));
            fields.push(("programs".into(), pairs_json(&s.programs)));
            fields.push(("undo_past".into(), strings_json(&s.undo_past)));
            fields.push(("undo_future".into(), strings_json(&s.undo_future)));
            fields.push(("view".into(), view_json(&s.view)));
        }
    }
    Json::Obj(fields)
}

fn event_from(j: &Json) -> Result<(u64, SessionEvent), String> {
    let seq = j.u64_field("seq")?;
    let kind = j.str_field("kind")?;
    let ev = match kind.as_str() {
        "edit" => SessionEvent::Edit { op: j.str_field("op")?, program: j.str_field("program")? },
        "undo" => SessionEvent::Undo,
        "redo" => SessionEvent::Redo,
        "gesture" => SessionEvent::Gesture {
            gesture: j.str_field("gesture")?,
            canvas: j.str_field("canvas")?,
            args: strings_from(j.arr_field("args")?)?,
        },
        "render" => SessionEvent::Render { canvas: j.str_field("canvas")? },
        "update" => SessionEvent::Update {
            table: j.str_field("table")?,
            row_id: j.u64_field("row")?,
            changes: pairs_from(j.arr_field("changes")?)?,
        },
        "config" => SessionEvent::Config { key: j.str_field("key")?, value: j.str_field("value")? },
        "demand" => SessionEvent::Demand {
            demand_id: j.u64_field("demand")?,
            // Absent in journals written before request correlation
            // existed — decode those as "no request context".
            request_id: j.u64_field("req").unwrap_or(0),
            label: j.str_field("label")?,
            status: j.str_field("status")?,
            rows_out: j.u64_field("rows")?,
            wall_ns: j.u64_field("ns")?,
            threads: j.u64_field("threads")?,
            detail: j.str_field("detail")?,
        },
        "cache" => SessionEvent::CacheInvalidation {
            scope: j.str_field("scope")?,
            entries: j.u64_field("entries")?,
        },
        "snapshot" => SessionEvent::Snapshot(Box::new(SessionSnapshot {
            program: j.str_field("program")?,
            tables: pairs_from(j.arr_field("tables")?)?,
            programs: pairs_from(j.arr_field("programs")?)?,
            undo_past: strings_from(j.arr_field("undo_past")?)?,
            undo_future: strings_from(j.arr_field("undo_future")?)?,
            view: view_from(j.get("view").ok_or("missing 'view'")?)?,
        })),
        other => return Err(format!("unknown event kind '{other}'")),
    };
    Ok((seq, ev))
}

/// Serialize one event as its JSONL line (no trailing newline).
pub fn event_line(seq: u64, ev: &SessionEvent) -> String {
    event_json(seq, ev).to_text()
}

/// The JSONL header line for a fresh journal.
pub fn header_line() -> String {
    Json::Obj(vec![
        ("format".into(), Json::Str("tioga2-journal".into())),
        ("version".into(), Json::Num(JOURNAL_VERSION as f64)),
    ])
    .to_text()
}

/// Parse a serialized journal: header line + one event per line.
/// Blank lines are tolerated; an unknown format or version is rejected.
pub fn parse_jsonl(text: &str) -> Result<Vec<(u64, SessionEvent)>, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty journal")?;
    let h = Json::parse(header).map_err(|e| format!("bad journal header: {e}"))?;
    if h.str_field("format").as_deref() != Ok("tioga2-journal") {
        return Err("not a tioga2 journal (bad format field)".into());
    }
    let version = h.u64_field("version").map_err(|e| format!("bad journal header: {e}"))?;
    if version != JOURNAL_VERSION {
        return Err(format!("unsupported journal version {version} (want {JOURNAL_VERSION})"));
    }
    let mut events = Vec::new();
    for (i, line) in lines.enumerate() {
        let j = Json::parse(line).map_err(|e| format!("journal line {}: {e}", i + 2))?;
        events.push(event_from(&j).map_err(|e| format!("journal line {}: {e}", i + 2))?);
    }
    Ok(events)
}

/// [`parse_jsonl`], but tolerant of a torn *final* record: a crash
/// (SIGKILL, power loss) mid-append leaves the last line truncated, and
/// recovery must not refuse the whole journal over it.  Returns the
/// parsed events plus whether a torn tail was dropped.  Corruption
/// anywhere before the final line is still a hard error — that is not a
/// crash signature, it is a damaged file.
pub fn parse_jsonl_recovering(text: &str) -> Result<(Vec<(u64, SessionEvent)>, bool), String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let header = lines.first().ok_or("empty journal")?;
    let h = Json::parse(header).map_err(|e| format!("bad journal header: {e}"))?;
    if h.str_field("format").as_deref() != Ok("tioga2-journal") {
        return Err("not a tioga2 journal (bad format field)".into());
    }
    let version = h.u64_field("version").map_err(|e| format!("bad journal header: {e}"))?;
    if version != JOURNAL_VERSION {
        return Err(format!("unsupported journal version {version} (want {JOURNAL_VERSION})"));
    }
    let body = &lines[1..];
    let mut events = Vec::new();
    for (i, line) in body.iter().enumerate() {
        let parsed = Json::parse(line).and_then(|j| event_from(&j));
        match parsed {
            Ok(ev) => events.push(ev),
            Err(_) if i + 1 == body.len() => return Ok((events, true)),
            Err(e) => return Err(format!("journal line {}: {e}", i + 2)),
        }
    }
    Ok((events, false))
}

// ----------------------------------------------------------- EventLog

struct LogInner {
    events: std::collections::VecDeque<(u64, SessionEvent)>,
    next_seq: u64,
    capacity: usize,
    dropped: u64,
    enabled: bool,
    last_snapshot: Option<u64>,
    sink: Option<std::fs::File>,
    sink_path: Option<String>,
    /// fsync the sink after every appended event (durability-on-commit).
    fsync: bool,
    /// Monotonic fsync coordinate (the `journal.fsync` fault site's).
    syncs: u64,
    /// fsyncs that failed (injected fault or real IO error).
    sync_errors: u64,
}

/// A shared, thread-safe, append-only session event log.
///
/// Clones share the same underlying log (the session and its engine each
/// hold one).  The in-memory ring is bounded; an optional file sink
/// receives every event as a JSONL line regardless of the ring.
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Mutex<LogInner>>,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EventLog {
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            inner: Arc::new(Mutex::new(LogInner {
                events: std::collections::VecDeque::new(),
                next_seq: 1,
                capacity: capacity.max(1),
                dropped: 0,
                enabled: true,
                last_snapshot: None,
                sink: None,
                sink_path: None,
                fsync: false,
                syncs: 0,
                sync_errors: 0,
            })),
        }
    }

    /// Rebuild a log from serialized JSONL (recovery path).  The loaded
    /// events keep their sequence numbers; appends continue after them.
    pub fn from_jsonl(text: &str) -> Result<EventLog, String> {
        Self::adopt(parse_jsonl(text)?)
    }

    /// [`EventLog::from_jsonl`] with crash tolerance: a torn final line
    /// (the signature of a kill mid-append) is dropped instead of
    /// refusing the journal.  Returns whether a tail was dropped.
    pub fn from_jsonl_recovering(text: &str) -> Result<(EventLog, bool), String> {
        let (events, truncated) = parse_jsonl_recovering(text)?;
        Ok((Self::adopt(events)?, truncated))
    }

    fn adopt(events: Vec<(u64, SessionEvent)>) -> Result<EventLog, String> {
        let log = EventLog::new();
        {
            let mut inner = log.inner.lock();
            for (seq, ev) in events {
                if matches!(ev, SessionEvent::Snapshot(_)) {
                    inner.last_snapshot = Some(seq);
                }
                inner.next_seq = inner.next_seq.max(seq + 1);
                inner.events.push_back((seq, ev));
            }
        }
        Ok(log)
    }

    /// Append an event; returns its sequence number.  Returns `None`
    /// without recording when the log is disabled.
    pub fn append(&self, ev: SessionEvent) -> Option<u64> {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return None;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if matches!(ev, SessionEvent::Snapshot(_)) {
            inner.last_snapshot = Some(seq);
        }
        if inner.sink.is_some() {
            use std::io::Write;
            let mut line = event_line(seq, &ev);
            line.push('\n');
            let fsync = inner.fsync;
            let coord = inner.syncs;
            let f = inner.sink.as_mut().unwrap();
            let _ = f.write_all(line.as_bytes());
            if fsync {
                // Durability-on-commit: the event is on stable storage
                // before the op that produced it reports success.  The
                // fault hook lets chaos runs fail (or die at) exactly
                // this point.
                inner.syncs += 1;
                match trip_io_fault("journal.fsync", coord) {
                    Ok(()) => {
                        if inner.sink.as_mut().unwrap().sync_data().is_err() {
                            inner.sync_errors += 1;
                        }
                    }
                    Err(_) => inner.sync_errors += 1,
                }
            }
        }
        inner.events.push_back((seq, ev));
        while inner.events.len() > inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        Some(seq)
    }

    /// Turn fsync-on-commit on or off for the file sink.
    pub fn set_fsync(&self, on: bool) {
        self.inner.lock().fsync = on;
    }

    pub fn fsync_enabled(&self) -> bool {
        self.inner.lock().fsync
    }

    /// Flush and fsync the file sink now (drain / eviction path).  A
    /// no-op without a sink.  Trips the `journal.fsync` fault site.
    pub fn sync(&self) -> Result<(), String> {
        let mut inner = self.inner.lock();
        if inner.sink.is_none() {
            return Ok(());
        }
        let coord = inner.syncs;
        inner.syncs += 1;
        if let Err(e) = trip_io_fault("journal.fsync", coord) {
            inner.sync_errors += 1;
            return Err(e);
        }
        let res = {
            use std::io::Write;
            let f = inner.sink.as_mut().unwrap();
            f.flush().and_then(|()| f.sync_data())
        };
        match res {
            Ok(()) => Ok(()),
            Err(e) => {
                inner.sync_errors += 1;
                Err(e.to_string())
            }
        }
    }

    /// fsyncs that failed (injected `journal.fsync` faults or IO errors).
    pub fn sync_errors(&self) -> u64 {
        self.inner.lock().sync_errors
    }

    /// Total fsyncs attempted (the `journal.fsync` fault coordinate).
    pub fn syncs(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Enable or disable appends (recovery replays with the log
    /// disabled so replayed ops are not re-journaled).
    pub fn set_enabled(&self, on: bool) {
        self.inner.lock().enabled = on;
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Attach an append-only file sink.  A fresh (empty) file gets the
    /// JSONL header plus every event currently in the ring, so the file
    /// is a complete journal from the first write.
    pub fn attach_file(&self, path: &str) -> std::io::Result<()> {
        use std::io::Write;
        let mut inner = self.inner.lock();
        let existing = std::fs::metadata(path).map(|m| m.len() > 0).unwrap_or(false);
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        if !existing {
            let mut text = header_line();
            text.push('\n');
            for (seq, ev) in &inner.events {
                text.push_str(&event_line(*seq, ev));
                text.push('\n');
            }
            f.write_all(text.as_bytes())?;
        }
        inner.sink = Some(f);
        inner.sink_path = Some(path.to_string());
        Ok(())
    }

    pub fn sink_path(&self) -> Option<String> {
        self.inner.lock().sink_path.clone()
    }

    /// Number of events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().events.is_empty()
    }

    /// Events evicted from the bounded ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Sequence number of the most recent event, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.inner.lock().events.back().map(|(s, _)| *s)
    }

    /// Sequence number of the most recent snapshot marker, if any.
    pub fn last_snapshot_seq(&self) -> Option<u64> {
        self.inner.lock().last_snapshot
    }

    /// All retained events (oldest first).
    pub fn events(&self) -> Vec<(u64, SessionEvent)> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Events with sequence number strictly greater than `seq` — the
    /// `:watch` cursor API.
    pub fn events_since(&self, seq: u64) -> Vec<(u64, SessionEvent)> {
        self.inner.lock().events.iter().filter(|(s, _)| *s > seq).cloned().collect()
    }

    /// Serialize the retained events as a versioned JSONL document.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = header_line();
        out.push('\n');
        for (seq, ev) in &inner.events {
            out.push_str(&event_line(*seq, ev));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<SessionEvent> {
        vec![
            SessionEvent::Edit {
                op: "restrict".into(),
                program: "TIOGA2-PROGRAM v1\n(graph (nodes) (edges))\n".into(),
            },
            SessionEvent::Undo,
            SessionEvent::Redo,
            SessionEvent::Gesture {
                gesture: "pan".into(),
                canvas: "main \"q\"".into(),
                args: vec!["3".into(), "-4".into()],
            },
            SessionEvent::Render { canvas: "main".into() },
            SessionEvent::Update {
                table: "Stations".into(),
                row_id: 7,
                changes: vec![("name".into(), "S:n\tx".into())],
            },
            SessionEvent::Config { key: "threads".into(), value: "2".into() },
            SessionEvent::Demand {
                demand_id: 3,
                request_id: 17,
                label: "Project.0".into(),
                status: "budget_exceeded".into(),
                rows_out: 0,
                wall_ns: 12_345,
                threads: 2,
                detail: "row budget exhausted".into(),
            },
            SessionEvent::CacheInvalidation { scope: "all".into(), entries: 12 },
            // Selective scopes carry the edited/refreshed table list so
            // replay can tell them from a full flush.
            SessionEvent::CacheInvalidation { scope: "Stations,sys.counters".into(), entries: 3 },
            SessionEvent::Snapshot(Box::new(SessionSnapshot {
                program: "TIOGA2-PROGRAM v1\n(graph (nodes) (edges))\n".into(),
                tables: vec![("Stations".into(), "TIOGA2-RELATION v1\n...".into())],
                programs: vec![("fav".into(), "TIOGA2-PROGRAM v1\n...".into())],
                undo_past: vec!["TIOGA2-PROGRAM v1\np0\n".into()],
                undo_future: vec![],
                view: ViewState {
                    focus: Some("main".into()),
                    canvas_size: (640, 480),
                    canvases: vec![CanvasView {
                        name: "main".into(),
                        fitted: true,
                        size: (640, 480),
                        center: (1.5, -2.25),
                        elevation: 97.125,
                        sliders: vec![("alt".into(), 0.5, 9.75)],
                        magnifiers: vec![MagnifierView {
                            rect: (-4, 12, 80, 60),
                            zoom: 2.5,
                            slaved: false,
                            center: (0.25, -1.75),
                            display_attr: Some("precip".into()),
                        }],
                    }],
                    slaves: vec![("main".into(), "map".into())],
                    travels: vec![TravelView {
                        canvas: "main".into(),
                        center: (0.0, 0.0),
                        elevation: 100.0,
                        entry_elevation: 20.0,
                    }],
                },
            })),
        ]
    }

    #[test]
    fn events_roundtrip_through_jsonl() {
        let log = EventLog::new();
        for ev in sample_events() {
            log.append(ev);
        }
        let text = log.to_jsonl();
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back.len(), sample_events().len());
        for ((seq, ev), (i, expected)) in back.iter().zip(sample_events().iter().enumerate()) {
            assert_eq!(*seq, i as u64 + 1);
            assert_eq!(ev, expected);
        }
    }

    #[test]
    fn demand_events_without_req_field_decode_as_request_zero() {
        // Journals written before request-ID correlation carry no "req"
        // field; they must still load, defaulting to "no request".
        let line = format!(
            "{}\n{{\"seq\":1,\"kind\":\"demand\",\"demand\":4,\"label\":\"#1.0\",\
             \"status\":\"ok\",\"rows\":10,\"ns\":99,\"threads\":1,\"detail\":\"\"}}",
            header_line()
        );
        let back = parse_jsonl(&line).unwrap();
        match &back[0].1 {
            SessionEvent::Demand { demand_id, request_id, .. } => {
                assert_eq!(*demand_id, 4);
                assert_eq!(*request_id, 0);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn from_jsonl_restores_cursor_state() {
        let log = EventLog::new();
        for ev in sample_events() {
            log.append(ev);
        }
        let restored = EventLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(restored.len(), log.len());
        assert_eq!(restored.last_seq(), log.last_seq());
        let snap_seq = sample_events().len() as u64; // snapshot is the last sample event
        assert_eq!(restored.last_snapshot_seq(), Some(snap_seq));
        // Appends continue after the loaded sequence numbers.
        let seq = restored.append(SessionEvent::Undo).unwrap();
        assert_eq!(Some(seq), restored.last_seq());
        assert!(seq > snap_seq);
    }

    #[test]
    fn recovering_parse_drops_torn_tail_only() {
        let log = EventLog::new();
        for ev in sample_events() {
            log.append(ev);
        }
        let text = log.to_jsonl();
        let n = sample_events().len();

        // Intact journal: everything parses, no truncation reported.
        let (events, torn) = parse_jsonl_recovering(&text).unwrap();
        assert_eq!(events.len(), n);
        assert!(!torn);

        // A crash mid-append tears the *final* line: drop it, recover
        // the rest, and report the truncation.
        let torn_tail = &text[..text.trim_end().len() - 10];
        let (events, torn) = parse_jsonl_recovering(torn_tail).unwrap();
        assert_eq!(events.len(), n - 1);
        assert!(torn);
        let (log2, torn) = EventLog::from_jsonl_recovering(torn_tail).unwrap();
        assert_eq!(log2.len(), n - 1);
        assert!(torn);

        // Corruption *before* the final line is not a crash signature —
        // still a hard error.
        let mut lines: Vec<&str> = text.trim_end().lines().collect();
        lines[2] = "{\"seq\":2,\"kind\":\"nope";
        let damaged = lines.join("\n");
        assert!(parse_jsonl_recovering(&damaged).is_err());
        // Strict parsing rejects the torn tail outright.
        assert!(parse_jsonl(torn_tail).is_err());
    }

    #[test]
    fn fsync_policy_counts_syncs_and_faults() {
        let path =
            std::env::temp_dir().join(format!("tioga2-fsync-test-{}.journal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = EventLog::new();
        log.attach_file(path.to_str().unwrap()).unwrap();
        assert!(!log.fsync_enabled());
        log.set_fsync(true);
        assert!(log.fsync_enabled());
        log.append(SessionEvent::Undo);
        log.append(SessionEvent::Redo);
        assert_eq!(log.syncs(), 2);
        assert_eq!(log.sync_errors(), 0);

        // An injected journal.fsync fault surfaces as a sync error on
        // the append path and a structured Err from explicit sync().
        set_io_fault_hook(Some(Arc::new(|site: &str, _coord: u64| {
            if site == "journal.fsync" {
                Err("injected fsync fault".to_string())
            } else {
                Ok(())
            }
        })));
        log.append(SessionEvent::Undo);
        assert_eq!(log.sync_errors(), 1);
        assert!(log.sync().unwrap_err().contains("injected"));
        assert_eq!(log.sync_errors(), 2);
        set_io_fault_hook(None);
        log.sync().unwrap();

        // The events all reached the file regardless of the fault.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(parse_jsonl(&text).unwrap().len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_journals_are_rejected() {
        assert!(parse_jsonl("").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"format\":\"other\",\"version\":1}").is_err());
        assert!(parse_jsonl("{\"format\":\"tioga2-journal\",\"version\":99}").is_err());
        let bad_line = format!("{}\n{{\"seq\":1,\"kind\":\"nope\"}}", header_line());
        assert!(parse_jsonl(&bad_line).is_err());
        let truncated = format!("{}\n{{\"seq\":1,\"kind\":\"edit\"}}", header_line());
        assert!(parse_jsonl(&truncated).is_err());
    }

    #[test]
    fn ring_bound_drops_oldest_and_counts() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.append(SessionEvent::Config { key: "k".into(), value: i.to_string() });
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let evs = log.events();
        assert_eq!(evs.first().map(|(s, _)| *s), Some(3));
    }

    #[test]
    fn disabled_log_drops_appends() {
        let log = EventLog::new();
        log.set_enabled(false);
        assert_eq!(log.append(SessionEvent::Undo), None);
        assert!(log.is_empty());
        log.set_enabled(true);
        assert!(log.append(SessionEvent::Undo).is_some());
    }

    #[test]
    fn events_since_is_a_cursor() {
        let log = EventLog::new();
        for ev in sample_events() {
            log.append(ev);
        }
        let cursor = 4;
        let tail = log.events_since(cursor);
        assert_eq!(tail.first().map(|(s, _)| *s), Some(5));
        assert_eq!(tail.len(), log.len() - cursor as usize);
        assert!(log.events_since(u64::MAX).is_empty());
    }

    #[test]
    fn json_escaping_survives_awkward_strings() {
        let ev = SessionEvent::Edit {
            op: "quote \" backslash \\ newline \n tab \t control \u{1}".into(),
            program: "TIOGA2-PROGRAM v1\n(graph (nodes (0 (table \"A \\\"B\\\"\"))) (edges))\n"
                .into(),
        };
        let line = event_line(1, &ev);
        let j = Json::parse(&line).unwrap();
        let (seq, back) = event_from(&j).unwrap();
        assert_eq!(seq, 1);
        assert_eq!(back, ev);
    }

    #[test]
    fn file_sink_writes_complete_journal() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tioga2_journal_test_{}.jsonl", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&path);
        let log = EventLog::new();
        log.append(SessionEvent::Undo);
        log.attach_file(&path_s).unwrap();
        assert_eq!(log.sink_path().as_deref(), Some(path_s.as_str()));
        log.append(SessionEvent::Redo);
        let text = std::fs::read_to_string(&path).unwrap();
        let events = parse_jsonl(&text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].1, SessionEvent::Undo);
        assert_eq!(events[1].1, SessionEvent::Redo);
        let _ = std::fs::remove_file(&path);
    }
}
