//! Observability for Tioga-2: spans, counters, latency histograms, and
//! perf-artifact exporters.
//!
//! Tioga-2's core claim is *interactive* performance of the demand-driven
//! memoizing dataflow engine (paper §2); this crate is how the workspace
//! measures it.  The design splits into:
//!
//! * [`Recorder`] — the dyn-safe instrumentation trait threaded through
//!   the engine, session, renderer, and viewer as `Arc<dyn Recorder>`.
//! * [`NoopRecorder`] — the default.  Every method is an empty body and
//!   [`Recorder::is_enabled`] returns `false`, so instrumented hot paths
//!   skip timestamping and string formatting entirely; the residual cost
//!   is one virtual call per site (budget: <2% wall time, enforced by
//!   the `obs_overhead` bench in `tioga2-bench`).
//! * [`InMemoryRecorder`] — a `parking_lot`-guarded collector holding a
//!   bounded ring-buffer event journal (nested spans + counter marks),
//!   monotonic counters, per-node cache hit/miss tallies, and
//!   log₂-bucketed latency histograms with p50/p95/p99 readouts.
//! * [`export`] — three artifact formats: Chrome trace-event JSON
//!   (loadable in Perfetto / `chrome://tracing`), a plaintext summary
//!   table, and Prometheus-style text exposition.
//!
//! Instrumented code records a span like so:
//!
//! ```
//! use tioga2_obs::{InMemoryRecorder, Recorder};
//! use std::sync::Arc;
//!
//! let rec: Arc<dyn Recorder> = Arc::new(InMemoryRecorder::new());
//! let span = rec.span_begin("fire:Restrict", "node 3");
//! // ... do the work ...
//! rec.span_end(span, &[("rows_in", 100), ("rows_out", 42)]);
//! rec.add("engine.box_evals", 1);
//! assert!(rec.summary_table().unwrap().contains("engine.box_evals"));
//! ```

pub mod export;
pub mod fleet;
pub mod hist;
pub mod journal;
pub mod manifest;
pub mod memory;
pub mod slow;
pub mod tree;

pub use fleet::FleetRecorder;
pub use hist::Histogram;
pub use journal::{
    CanvasView, EventLog, MagnifierView, SessionEvent, SessionSnapshot, TravelView, ViewState,
};
pub use manifest::{DirLock, FleetManifest, ManifestEntry};
pub use memory::{CompletedSpan, Event, InMemoryRecorder};
pub use slow::{SlowEntry, SlowLog};
pub use tree::{CacheStatus, DemandTrace, OpNode};

use std::sync::Arc;

/// Opaque handle returned by [`Recorder::span_begin`].  `SpanId(0)` is
/// the noop/invalid id; real recorders start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// The instrumentation sink.  Implementations must be cheap when
/// disabled: callers guard any formatting work behind [`is_enabled`],
/// but the methods themselves are also expected to early-out.
///
/// [`is_enabled`]: Recorder::is_enabled
pub trait Recorder: Send + Sync {
    /// Whether this recorder actually stores anything.  Hot paths use
    /// this to skip building `detail` strings and field slices.
    fn is_enabled(&self) -> bool;

    /// Open a nested span.  `detail` is free-form context (node name,
    /// canvas name, …) carried into the trace.
    fn span_begin(&self, name: &str, detail: &str) -> SpanId;

    /// Close a span.  The recorder stamps the duration, appends the
    /// `fields` (e.g. `rows_in`/`rows_out`) to the journal entry, and
    /// feeds the duration into the histogram keyed by the span name.
    fn span_end(&self, id: SpanId, fields: &[(&'static str, i64)]);

    /// Bump a monotonic counter and journal a counter mark.
    fn add(&self, counter: &str, delta: u64);

    /// Feed a latency histogram directly (for durations measured
    /// outside a span).
    fn observe_ns(&self, name: &str, nanos: u64);

    /// Record a memo-cache probe against a per-node tally.
    fn cache_access(&self, node: &str, hit: bool);

    /// Forget everything recorded so far (noop for noop).
    fn reset(&self) {}

    /// Current value of a counter, if this recorder keeps any.
    fn counter(&self, _name: &str) -> Option<u64> {
        None
    }

    /// Every counter as `(name, value)`, sorted by name; empty when the
    /// recorder keeps none.  [`counter`](Recorder::counter) can only
    /// answer point lookups — the `sys.counters` relation needs to
    /// enumerate through `Arc<dyn Recorder>` without downcasting.
    fn counters_snapshot(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Every latency histogram, sorted by name; empty when the recorder
    /// keeps none.  Feeds the `sys.histograms` relation.
    fn histograms_snapshot(&self) -> Vec<(String, Histogram)> {
        Vec::new()
    }

    /// Chrome trace-event JSON of the journal, if this recorder keeps
    /// one.  Exposed on the trait so callers holding `Arc<dyn Recorder>`
    /// (the REPL) can export without downcasting.
    fn chrome_trace_json(&self) -> Option<String> {
        None
    }

    /// Plaintext summary table (counters, cache hit rates, quantiles).
    fn summary_table(&self) -> Option<String> {
        None
    }

    /// Prometheus-style text exposition.
    fn prometheus_text(&self) -> Option<String> {
        None
    }
}

/// The zero-overhead default recorder.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_begin(&self, _name: &str, _detail: &str) -> SpanId {
        SpanId::NONE
    }

    #[inline(always)]
    fn span_end(&self, _id: SpanId, _fields: &[(&'static str, i64)]) {}

    #[inline(always)]
    fn add(&self, _counter: &str, _delta: u64) {}

    #[inline(always)]
    fn observe_ns(&self, _name: &str, _nanos: u64) {}

    #[inline(always)]
    fn cache_access(&self, _node: &str, _hit: bool) {}
}

/// A shared handle to the default (disabled) recorder.
pub fn noop() -> Arc<dyn Recorder> {
    Arc::new(NoopRecorder)
}

/// A static borrow of the disabled recorder — for call sites that take
/// `&dyn Recorder` and must not allocate.
pub fn noop_ref() -> &'static dyn Recorder {
    static NOOP: NoopRecorder = NoopRecorder;
    &NOOP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_inert() {
        let rec = noop();
        assert!(!rec.is_enabled());
        let id = rec.span_begin("x", "y");
        assert!(id.is_none());
        rec.span_end(id, &[("f", 1)]);
        rec.add("c", 5);
        rec.observe_ns("h", 10);
        rec.cache_access("n", true);
        assert!(rec.counter("c").is_none());
        assert!(rec.counters_snapshot().is_empty());
        assert!(rec.histograms_snapshot().is_empty());
        assert!(rec.chrome_trace_json().is_none());
        assert!(rec.summary_table().is_none());
        assert!(rec.prometheus_text().is_none());
    }
}
