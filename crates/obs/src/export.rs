//! Artifact exporters: Chrome trace-event JSON, plaintext summary
//! table, Prometheus-style text exposition, and folded stacks
//! (flamegraph collapsed format) from demand trace trees.
//!
//! All are hand-rolled (this crate is dependency-free by design); the
//! JSON writer escapes strings per RFC 8259.

use crate::hist::Histogram;
use crate::memory::{Event, InMemoryRecorder};
use crate::tree::DemandTrace;

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Chrome trace-event JSON for the recorder's journal, loadable in
/// Perfetto (ui.perfetto.dev) or `chrome://tracing`.
///
/// Completed spans are emitted as balanced `B`/`E` duration-event pairs
/// on a single pid/tid; counter marks become `i` instant events.  Spans
/// are reconstructed from self-contained `End` journal entries, so the
/// output is balanced even when the ring buffer has evicted `Begin`
/// entries: a span either appears with both its `B` and `E` or not at
/// all.  Timestamps are microseconds (fractional, from nanoseconds).
pub fn chrome_trace_json(rec: &InMemoryRecorder) -> String {
    // (ts_ns, kind_rank, depth_rank, json) — `E` sorts before `B` on
    // ties so back-to-back siblings stay balanced; deeper `E`s close
    // first and shallower `B`s open first, preserving nesting.
    let mut entries: Vec<(u64, u8, i64, String)> = Vec::new();

    for span in rec.completed_spans() {
        let args_b = format!("{{\"detail\":\"{}\"}}", escape_json(&span.detail));
        let mut args_e = String::from("{");
        for (i, (k, v)) in span.fields.iter().enumerate() {
            if i > 0 {
                args_e.push(',');
            }
            args_e.push_str(&format!("\"{}\":{}", escape_json(k), v));
        }
        args_e.push('}');
        let name = escape_json(&span.name);
        entries.push((
            span.begin_ns,
            1,
            span.depth as i64,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"tioga2\",\"ph\":\"B\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"args\":{}}}",
                name,
                span.begin_ns as f64 / 1000.0,
                args_b
            ),
        ));
        entries.push((
            span.begin_ns + span.dur_ns,
            0,
            -(span.depth as i64),
            format!(
                "{{\"name\":\"{}\",\"cat\":\"tioga2\",\"ph\":\"E\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"args\":{}}}",
                name,
                (span.begin_ns + span.dur_ns) as f64 / 1000.0,
                args_e
            ),
        ));
    }

    for ev in rec.events() {
        if let Event::Count { name, delta, ts_ns } = ev {
            entries.push((
                ts_ns,
                2,
                0,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"tioga2.counter\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{\"delta\":{}}}}}",
                    escape_json(&name),
                    ts_ns as f64 / 1000.0,
                    delta
                ),
            ));
        }
    }

    entries.sort_by(|a, b| (a.0, a.1, a.2).partial_cmp(&(b.0, b.1, b.2)).unwrap());

    let mut out = String::from("{\"traceEvents\":[");
    for (i, (_, _, _, json)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(json);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable summary: counters, per-node cache hit rates, and span
/// latency quantiles.
pub fn summary_table(rec: &InMemoryRecorder) -> String {
    let mut out = String::new();

    let counters = rec.counters();
    out.push_str("== counters ==\n");
    if counters.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, value) in &counters {
        out.push_str(&format!("  {name:<40} {value:>12}\n"));
    }

    let tallies = rec.node_cache_tallies();
    out.push_str("\n== cache (per node) ==\n");
    if tallies.is_empty() {
        out.push_str("  (none)\n");
    } else {
        out.push_str(&format!(
            "  {:<32} {:>8} {:>8} {:>9}\n",
            "node", "hits", "misses", "hit_rate"
        ));
        for (node, tally) in &tallies {
            out.push_str(&format!(
                "  {:<32} {:>8} {:>8} {:>8.1}%\n",
                node,
                tally.hits,
                tally.misses,
                tally.hit_rate() * 100.0
            ));
        }
    }

    let histograms = rec.histograms();
    out.push_str("\n== latency histograms ==\n");
    if histograms.is_empty() {
        out.push_str("  (none)\n");
    } else {
        out.push_str(&format!(
            "  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &histograms {
            out.push_str(&format!(
                "  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                h.count(),
                fmt_ns(h.p50()),
                fmt_ns(h.p95()),
                fmt_ns(h.p99()),
                fmt_ns(h.max())
            ));
        }
    }

    let dropped = rec.dropped_events();
    if dropped > 0 {
        out.push_str(&format!("\n(journal ring evicted {dropped} events)\n"));
    }
    let mismatched = rec.mismatched_span_ends();
    if mismatched > 0 {
        out.push_str(&format!("\n({mismatched} mismatched span ends dropped)\n"));
    }
    out
}

/// Folded-stacks (flamegraph collapsed) text for a set of demand
/// traces, one stack line per trace-tree node carrying its *self* time.
/// Feed the output to `flamegraph.pl` / `inferno-flamegraph`.  Within
/// one demand the counts sum exactly to
/// [`DemandTrace::total_effective_ns`].
pub fn folded_stacks(traces: &[DemandTrace]) -> String {
    traces.iter().map(DemandTrace::folded).collect()
}

/// Sanitize a name into a Prometheus metric/label token.
pub(crate) fn prom_name(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Append one spec-compliant Prometheus histogram series: cumulative
/// `_bucket{le=...}` lines over the log₂ buckets (upper bounds as `le`,
/// closing with `+Inf`), then `_sum` and `_count`.  `labels` is the
/// pre-rendered label body *without* braces (e.g. `span="render"` or
/// `tenant="acme",session="s3"`), empty for an unlabeled series; the
/// `le` label is spliced in after it.  The `# TYPE {family} histogram`
/// header is the caller's responsibility (one header per family, many
/// series).
pub fn histogram_series(out: &mut String, family: &str, labels: &str, h: &Histogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    for (_, hi, n) in h.nonzero_buckets() {
        cum += n;
        out.push_str(&format!("{family}_bucket{{{labels}{sep}le=\"{hi}\"}} {cum}\n"));
    }
    out.push_str(&format!("{family}_bucket{{{labels}{sep}le=\"+Inf\"}} {}\n", h.count()));
    let braces = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
    out.push_str(&format!("{family}_sum{braces} {}\n", h.sum()));
    out.push_str(&format!("{family}_count{braces} {}\n", h.count()));
}

/// Prometheus text exposition (format 0.0.4): counters, per-node cache
/// tallies, span-duration summaries with p50/p95/p99 quantiles, and —
/// alongside the summaries, under the separate `tioga2_span_latency_ns`
/// family so existing dashboards keep working — native histogram series
/// with cumulative `le` buckets.
pub fn prometheus_text(rec: &InMemoryRecorder) -> String {
    let mut out = String::new();

    for (name, value) in rec.counters() {
        let metric = format!("tioga2_{}", prom_name(&name));
        out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
    }

    let tallies = rec.node_cache_tallies();
    if !tallies.is_empty() {
        out.push_str("# TYPE tioga2_cache_probes counter\n");
        for (node, tally) in &tallies {
            let node = escape_json(node);
            out.push_str(&format!(
                "tioga2_cache_probes{{node=\"{}\",outcome=\"hit\"}} {}\n",
                node, tally.hits
            ));
            out.push_str(&format!(
                "tioga2_cache_probes{{node=\"{}\",outcome=\"miss\"}} {}\n",
                node, tally.misses
            ));
        }
    }

    let histograms = rec.histograms();
    if !histograms.is_empty() {
        out.push_str("# TYPE tioga2_span_duration_ns summary\n");
        for (name, h) in &histograms {
            let span = escape_json(name);
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                out.push_str(&format!(
                    "tioga2_span_duration_ns{{span=\"{span}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("tioga2_span_duration_ns_sum{{span=\"{span}\"}} {}\n", h.sum()));
            out.push_str(&format!(
                "tioga2_span_duration_ns_count{{span=\"{span}\"}} {}\n",
                h.count()
            ));
        }
        out.push_str("# TYPE tioga2_span_latency_ns histogram\n");
        for (name, h) in &histograms {
            let labels = format!("span=\"{}\"", escape_json(name));
            histogram_series(&mut out, "tioga2_span_latency_ns", &labels, h);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_recorder() -> InMemoryRecorder {
        let rec = InMemoryRecorder::new();
        let outer = rec.span_begin("render", "atlas");
        let inner = rec.span_begin("fire:Restrict", "node 3 \"quoted\"");
        rec.span_end(inner, &[("rows_in", 100), ("rows_out", 42)]);
        rec.span_end(outer, &[]);
        rec.add("engine.box_evals", 2);
        rec.cache_access("Restrict#3", false);
        rec.cache_access("Restrict#3", true);
        rec
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace_json(&sample_recorder());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("fire:Restrict"));
        assert!(json.contains("\"rows_out\":42"));
        // The quote in the detail string is escaped.
        assert!(json.contains("node 3 \\\"quoted\\\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
    }

    #[test]
    fn chrome_trace_orders_nested_spans() {
        let json = chrome_trace_json(&sample_recorder());
        let b_outer = json.find("\"name\":\"render\",\"cat\":\"tioga2\",\"ph\":\"B\"").unwrap();
        let b_inner =
            json.find("\"name\":\"fire:Restrict\",\"cat\":\"tioga2\",\"ph\":\"B\"").unwrap();
        let e_outer = json.find("\"name\":\"render\",\"cat\":\"tioga2\",\"ph\":\"E\"").unwrap();
        let e_inner =
            json.find("\"name\":\"fire:Restrict\",\"cat\":\"tioga2\",\"ph\":\"E\"").unwrap();
        assert!(b_outer < b_inner, "outer B must precede inner B");
        assert!(b_inner < e_inner, "inner B must precede inner E");
        assert!(e_inner < e_outer, "inner E must precede outer E");
    }

    #[test]
    fn summary_table_sections() {
        let table = summary_table(&sample_recorder());
        assert!(table.contains("== counters =="));
        assert!(table.contains("engine.box_evals"));
        assert!(table.contains("== cache (per node) =="));
        assert!(table.contains("Restrict#3"));
        assert!(table.contains("50.0%"));
        assert!(table.contains("== latency histograms =="));
        assert!(table.contains("fire:Restrict"));
    }

    #[test]
    fn prometheus_exposition() {
        let text = prometheus_text(&sample_recorder());
        assert!(text.contains("# TYPE tioga2_engine_box_evals counter"));
        assert!(text.contains("tioga2_engine_box_evals 2"));
        assert!(text.contains("tioga2_cache_probes{node=\"Restrict#3\",outcome=\"hit\"} 1"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("tioga2_span_duration_ns_count{span=\"render\"} 1"));
        // Metric names never contain dots.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let metric = line.split(&['{', ' '][..]).next().unwrap();
            assert!(!metric.contains('.'), "unsanitized metric: {metric}");
        }
    }

    #[test]
    fn native_histogram_family_has_cumulative_buckets() {
        let rec = InMemoryRecorder::new();
        for v in [3u64, 5, 100, 100] {
            rec.observe_ns("render", v);
        }
        let text = prometheus_text(&rec);
        assert!(text.contains("# TYPE tioga2_span_latency_ns histogram"), "{text}");
        // Values 3 and 5 land in buckets [2,4) and [4,8); both 100s in
        // [64,128).  Cumulative counts climb to the total and close +Inf.
        assert!(
            text.contains("tioga2_span_latency_ns_bucket{span=\"render\",le=\"4\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tioga2_span_latency_ns_bucket{span=\"render\",le=\"8\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("tioga2_span_latency_ns_bucket{span=\"render\",le=\"128\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("tioga2_span_latency_ns_bucket{span=\"render\",le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("tioga2_span_latency_ns_sum{span=\"render\"} 208"), "{text}");
        assert!(text.contains("tioga2_span_latency_ns_count{span=\"render\"} 4"), "{text}");
        // The old summary family survives for existing dashboards.
        assert!(text.contains("tioga2_span_duration_ns_count{span=\"render\"} 4"), "{text}");
        // An unlabeled series drops the label braces on _sum/_count.
        let mut plain = String::new();
        let mut h = Histogram::default();
        h.record(9);
        histogram_series(&mut plain, "x_ns", "", &h);
        assert_eq!(
            plain,
            "x_ns_bucket{le=\"16\"} 1\nx_ns_bucket{le=\"+Inf\"} 1\nx_ns_sum 9\nx_ns_count 1\n"
        );
    }

    #[test]
    fn empty_recorder_exports() {
        let rec = InMemoryRecorder::new();
        let json = chrome_trace_json(&rec);
        assert!(json.contains("traceEvents"));
        assert!(summary_table(&rec).contains("(none)"));
        assert_eq!(prometheus_text(&rec), "");
    }

    /// Minimal recursive-descent JSON validator (no dependencies): just
    /// enough to prove the exporter emits well-formed documents.
    fn json_parses(s: &str) -> bool {
        fn skip_ws(b: &[u8], mut i: usize) -> usize {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            i
        }
        fn value(b: &[u8], i: usize) -> Option<usize> {
            let i = skip_ws(b, i);
            match b.get(i)? {
                b'{' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b'}') {
                        return Some(i + 1);
                    }
                    loop {
                        i = string(b, skip_ws(b, i))?;
                        i = skip_ws(b, i);
                        if b.get(i) != Some(&b':') {
                            return None;
                        }
                        i = value(b, i + 1)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b'}' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'[' => {
                    let mut i = skip_ws(b, i + 1);
                    if b.get(i) == Some(&b']') {
                        return Some(i + 1);
                    }
                    loop {
                        i = value(b, i)?;
                        i = skip_ws(b, i);
                        match b.get(i)? {
                            b',' => i += 1,
                            b']' => return Some(i + 1),
                            _ => return None,
                        }
                    }
                }
                b'"' => string(b, i),
                b't' => b[i..].starts_with(b"true").then_some(i + 4),
                b'f' => b[i..].starts_with(b"false").then_some(i + 5),
                b'n' => b[i..].starts_with(b"null").then_some(i + 4),
                _ => {
                    let start = i;
                    let mut j = i;
                    while j < b.len()
                        && (b[j].is_ascii_digit()
                            || matches!(b[j], b'-' | b'+' | b'.' | b'e' | b'E'))
                    {
                        j += 1;
                    }
                    (j > start).then_some(j)
                }
            }
        }
        fn string(b: &[u8], i: usize) -> Option<usize> {
            if b.get(i) != Some(&b'"') {
                return None;
            }
            let mut i = i + 1;
            while let Some(&c) = b.get(i) {
                match c {
                    b'"' => return Some(i + 1),
                    b'\\' => i += 2,
                    c if c < 0x20 => return None,
                    _ => i += 1,
                }
            }
            None
        }
        let b = s.as_bytes();
        value(b, 0).map(|end| skip_ws(b, end) == b.len()).unwrap_or(false)
    }

    #[test]
    fn chrome_trace_parses_and_events_nest() {
        let rec = sample_recorder();
        // Add awkward names/details the escaper must neutralize.
        let s = rec.span_begin("weird \"name\"\n", "back\\slash\ttab");
        rec.span_end(s, &[]);
        let json = chrome_trace_json(&rec);
        assert!(json_parses(&json), "chrome trace is not valid JSON:\n{json}");

        // B/E events observe stack (LIFO) discipline in emitted order.
        let mut stack: Vec<&str> = Vec::new();
        for line in json.lines() {
            let name = line.split("\"name\":\"").nth(1).and_then(|r| r.split('"').next());
            let (Some(name), Some(ph)) =
                (name, line.split("\"ph\":\"").nth(1).and_then(|r| r.split('"').next()))
            else {
                continue;
            };
            match ph {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop(), Some(name), "unbalanced E in:\n{json}"),
                _ => {}
            }
        }
        assert!(stack.is_empty(), "unclosed B events: {stack:?}");
    }

    #[test]
    fn prometheus_names_and_labels_escape() {
        let rec = InMemoryRecorder::new();
        rec.add("9starts.with-digit", 1);
        rec.cache_access("node \"q\" \\ back", true);
        let h = rec.span_begin("span \"x\"", "");
        rec.span_end(h, &[]);
        let text = prometheus_text(&rec);
        // Leading digit gets a sanitizing prefix; dots/dashes become _.
        assert!(text.contains("tioga2__9starts_with_digit 1"), "{text}");
        // Label values carry escaped quotes and backslashes.
        assert!(text.contains("node=\"node \\\"q\\\" \\\\ back\""), "{text}");
        assert!(text.contains("span=\"span \\\"x\\\"\""), "{text}");
        // Every metric token is a legal Prometheus name.
        for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let metric = line.split(&['{', ' '][..]).next().unwrap();
            assert!(
                metric.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name: {metric}"
            );
            assert!(!metric.chars().next().unwrap().is_ascii_digit(), "{metric}");
        }
    }

    #[test]
    fn histogram_buckets_and_quantiles_are_monotone() {
        let mut h = crate::Histogram::default();
        for v in [0u64, 1, 3, 17, 17, 900, 4096, 70_000, 70_001, 1 << 40] {
            h.record(v);
        }
        let buckets = h.nonzero_buckets();
        assert!(!buckets.is_empty());
        for w in buckets.windows(2) {
            assert!(w[0].1 <= w[1].0, "bucket ranges overlap: {w:?}");
            assert!(w[0].0 < w[1].0, "bucket bounds not increasing: {w:?}");
        }
        assert_eq!(buckets.iter().map(|b| b.2).sum::<u64>(), h.count());
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(h.min() <= h.p50() && h.p99() <= h.max());
    }

    #[test]
    fn folded_stacks_concatenates_per_demand_sums() {
        use crate::tree::{CacheStatus, DemandTrace, OpNode};
        let node = |op: &str, ns: u64, children: Vec<OpNode>| OpNode {
            op: op.to_string(),
            rows_in: 10,
            rows_out: 10,
            ns,
            cache: CacheStatus::NotCached,
            provenance: String::new(),
            par_workers: 0,
            children,
        };
        let mk = |id: u64, total: u64| DemandTrace {
            demand_id: id,
            request_id: 0,
            label: format!("#{id}.0"),
            total_ns: total,
            threads: 1,
            par_segments: 0,
            plan_cache: CacheStatus::Miss,
            rewrites: vec![],
            status: "ok".to_string(),
            root: node("Project [a]", 800, vec![node("Source #0.0", 500, vec![])]),
        };
        let traces = vec![mk(1, 1000), mk(2, 900)];
        let folded = folded_stacks(&traces);
        let sum_for = |id: u64| -> u64 {
            folded
                .lines()
                .filter(|l| l.starts_with(&format!("demand#{id}_")))
                .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
                .sum()
        };
        assert_eq!(sum_for(1), traces[0].total_effective_ns());
        assert_eq!(sum_for(2), traces[1].total_effective_ns());
        assert!(folded.contains(";Project_[a];Source_#0.0 "), "{folded}");
    }
}
