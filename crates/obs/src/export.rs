//! Artifact exporters: Chrome trace-event JSON, plaintext summary
//! table, Prometheus-style text exposition.
//!
//! All three are hand-rolled (this crate is dependency-free by design);
//! the JSON writer escapes strings per RFC 8259.

use crate::memory::{Event, InMemoryRecorder};

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Chrome trace-event JSON for the recorder's journal, loadable in
/// Perfetto (ui.perfetto.dev) or `chrome://tracing`.
///
/// Completed spans are emitted as balanced `B`/`E` duration-event pairs
/// on a single pid/tid; counter marks become `i` instant events.  Spans
/// are reconstructed from self-contained `End` journal entries, so the
/// output is balanced even when the ring buffer has evicted `Begin`
/// entries: a span either appears with both its `B` and `E` or not at
/// all.  Timestamps are microseconds (fractional, from nanoseconds).
pub fn chrome_trace_json(rec: &InMemoryRecorder) -> String {
    // (ts_ns, kind_rank, depth_rank, json) — `E` sorts before `B` on
    // ties so back-to-back siblings stay balanced; deeper `E`s close
    // first and shallower `B`s open first, preserving nesting.
    let mut entries: Vec<(u64, u8, i64, String)> = Vec::new();

    for span in rec.completed_spans() {
        let args_b = format!("{{\"detail\":\"{}\"}}", escape_json(&span.detail));
        let mut args_e = String::from("{");
        for (i, (k, v)) in span.fields.iter().enumerate() {
            if i > 0 {
                args_e.push(',');
            }
            args_e.push_str(&format!("\"{}\":{}", escape_json(k), v));
        }
        args_e.push('}');
        let name = escape_json(&span.name);
        entries.push((
            span.begin_ns,
            1,
            span.depth as i64,
            format!(
                "{{\"name\":\"{}\",\"cat\":\"tioga2\",\"ph\":\"B\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"args\":{}}}",
                name,
                span.begin_ns as f64 / 1000.0,
                args_b
            ),
        ));
        entries.push((
            span.begin_ns + span.dur_ns,
            0,
            -(span.depth as i64),
            format!(
                "{{\"name\":\"{}\",\"cat\":\"tioga2\",\"ph\":\"E\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"args\":{}}}",
                name,
                (span.begin_ns + span.dur_ns) as f64 / 1000.0,
                args_e
            ),
        ));
    }

    for ev in rec.events() {
        if let Event::Count { name, delta, ts_ns } = ev {
            entries.push((
                ts_ns,
                2,
                0,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"tioga2.counter\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{\"delta\":{}}}}}",
                    escape_json(&name),
                    ts_ns as f64 / 1000.0,
                    delta
                ),
            ));
        }
    }

    entries.sort_by(|a, b| (a.0, a.1, a.2).partial_cmp(&(b.0, b.1, b.2)).unwrap());

    let mut out = String::from("{\"traceEvents\":[");
    for (i, (_, _, _, json)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(json);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Human-readable summary: counters, per-node cache hit rates, and span
/// latency quantiles.
pub fn summary_table(rec: &InMemoryRecorder) -> String {
    let mut out = String::new();

    let counters = rec.counters();
    out.push_str("== counters ==\n");
    if counters.is_empty() {
        out.push_str("  (none)\n");
    }
    for (name, value) in &counters {
        out.push_str(&format!("  {name:<40} {value:>12}\n"));
    }

    let tallies = rec.node_cache_tallies();
    out.push_str("\n== cache (per node) ==\n");
    if tallies.is_empty() {
        out.push_str("  (none)\n");
    } else {
        out.push_str(&format!(
            "  {:<32} {:>8} {:>8} {:>9}\n",
            "node", "hits", "misses", "hit_rate"
        ));
        for (node, tally) in &tallies {
            out.push_str(&format!(
                "  {:<32} {:>8} {:>8} {:>8.1}%\n",
                node,
                tally.hits,
                tally.misses,
                tally.hit_rate() * 100.0
            ));
        }
    }

    let histograms = rec.histograms();
    out.push_str("\n== latency histograms ==\n");
    if histograms.is_empty() {
        out.push_str("  (none)\n");
    } else {
        out.push_str(&format!(
            "  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "span", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &histograms {
            out.push_str(&format!(
                "  {:<32} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                h.count(),
                fmt_ns(h.p50()),
                fmt_ns(h.p95()),
                fmt_ns(h.p99()),
                fmt_ns(h.max())
            ));
        }
    }

    let dropped = rec.dropped_events();
    if dropped > 0 {
        out.push_str(&format!("\n(journal ring evicted {dropped} events)\n"));
    }
    out
}

/// Sanitize a name into a Prometheus metric/label token.
fn prom_name(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Prometheus text exposition (format 0.0.4): counters, per-node cache
/// tallies, and span-duration summaries with p50/p95/p99 quantiles.
pub fn prometheus_text(rec: &InMemoryRecorder) -> String {
    let mut out = String::new();

    for (name, value) in rec.counters() {
        let metric = format!("tioga2_{}", prom_name(&name));
        out.push_str(&format!("# TYPE {metric} counter\n{metric} {value}\n"));
    }

    let tallies = rec.node_cache_tallies();
    if !tallies.is_empty() {
        out.push_str("# TYPE tioga2_cache_probes counter\n");
        for (node, tally) in &tallies {
            let node = escape_json(node);
            out.push_str(&format!(
                "tioga2_cache_probes{{node=\"{}\",outcome=\"hit\"}} {}\n",
                node, tally.hits
            ));
            out.push_str(&format!(
                "tioga2_cache_probes{{node=\"{}\",outcome=\"miss\"}} {}\n",
                node, tally.misses
            ));
        }
    }

    let histograms = rec.histograms();
    if !histograms.is_empty() {
        out.push_str("# TYPE tioga2_span_duration_ns summary\n");
        for (name, h) in &histograms {
            let span = escape_json(name);
            for (q, v) in [(0.5, h.p50()), (0.95, h.p95()), (0.99, h.p99())] {
                out.push_str(&format!(
                    "tioga2_span_duration_ns{{span=\"{span}\",quantile=\"{q}\"}} {v}\n"
                ));
            }
            out.push_str(&format!("tioga2_span_duration_ns_sum{{span=\"{span}\"}} {}\n", h.sum()));
            out.push_str(&format!(
                "tioga2_span_duration_ns_count{{span=\"{span}\"}} {}\n",
                h.count()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample_recorder() -> InMemoryRecorder {
        let rec = InMemoryRecorder::new();
        let outer = rec.span_begin("render", "atlas");
        let inner = rec.span_begin("fire:Restrict", "node 3 \"quoted\"");
        rec.span_end(inner, &[("rows_in", 100), ("rows_out", 42)]);
        rec.span_end(outer, &[]);
        rec.add("engine.box_evals", 2);
        rec.cache_access("Restrict#3", false);
        rec.cache_access("Restrict#3", true);
        rec
    }

    #[test]
    fn chrome_trace_shape() {
        let json = chrome_trace_json(&sample_recorder());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("fire:Restrict"));
        assert!(json.contains("\"rows_out\":42"));
        // The quote in the detail string is escaped.
        assert!(json.contains("node 3 \\\"quoted\\\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), json.matches("\"ph\":\"E\"").count());
    }

    #[test]
    fn chrome_trace_orders_nested_spans() {
        let json = chrome_trace_json(&sample_recorder());
        let b_outer = json.find("\"name\":\"render\",\"cat\":\"tioga2\",\"ph\":\"B\"").unwrap();
        let b_inner =
            json.find("\"name\":\"fire:Restrict\",\"cat\":\"tioga2\",\"ph\":\"B\"").unwrap();
        let e_outer = json.find("\"name\":\"render\",\"cat\":\"tioga2\",\"ph\":\"E\"").unwrap();
        let e_inner =
            json.find("\"name\":\"fire:Restrict\",\"cat\":\"tioga2\",\"ph\":\"E\"").unwrap();
        assert!(b_outer < b_inner, "outer B must precede inner B");
        assert!(b_inner < e_inner, "inner B must precede inner E");
        assert!(e_inner < e_outer, "inner E must precede outer E");
    }

    #[test]
    fn summary_table_sections() {
        let table = summary_table(&sample_recorder());
        assert!(table.contains("== counters =="));
        assert!(table.contains("engine.box_evals"));
        assert!(table.contains("== cache (per node) =="));
        assert!(table.contains("Restrict#3"));
        assert!(table.contains("50.0%"));
        assert!(table.contains("== latency histograms =="));
        assert!(table.contains("fire:Restrict"));
    }

    #[test]
    fn prometheus_exposition() {
        let text = prometheus_text(&sample_recorder());
        assert!(text.contains("# TYPE tioga2_engine_box_evals counter"));
        assert!(text.contains("tioga2_engine_box_evals 2"));
        assert!(text.contains("tioga2_cache_probes{node=\"Restrict#3\",outcome=\"hit\"} 1"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains("tioga2_span_duration_ns_count{span=\"render\"} 1"));
        // Metric names never contain dots.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let metric = line.split(&['{', ' '][..]).next().unwrap();
            assert!(!metric.contains('.'), "unsanitized metric: {metric}");
        }
    }

    #[test]
    fn empty_recorder_exports() {
        let rec = InMemoryRecorder::new();
        let json = chrome_trace_json(&rec);
        assert!(json.contains("traceEvents"));
        assert!(summary_table(&rec).contains("(none)"));
        assert_eq!(prometheus_text(&rec), "");
    }
}
