//! Property tests for the Chrome trace exporter: under arbitrary
//! interleavings of span activity, counter bumps, and ring-buffer
//! pressure, the exported JSON must be well-formed and its `B`/`E`
//! duration events must balance like matched parentheses.

use proptest::prelude::*;
use tioga2_obs::{InMemoryRecorder, Recorder, SpanId};

// ---------------------------------------------------------------------
// A minimal recursive-descent JSON parser (the workspace is
// dependency-free; this validates well-formedness, nothing more).
// ---------------------------------------------------------------------

struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn new(s: &'a str) -> Self {
        Json { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse(mut self) -> Result<(), String> {
        self.skip_ws();
        self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(())
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.bump()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected byte {:?} at {}", other as char, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        for &b in lit.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(()),
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(()),
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump()? {
                b'"' => return Ok(()),
                b'\\' => match self.bump()? {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                    b'u' => {
                        for _ in 0..4 {
                            let h = self.bump()?;
                            if !h.is_ascii_hexdigit() {
                                return Err("bad \\u escape".into());
                            }
                        }
                    }
                    other => return Err(format!("bad escape {:?}", other as char)),
                },
                b if b < 0x20 => return Err("raw control character in string".into()),
                _ => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err("number with no digits".into());
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// Extract the `"ph"` value of every trace event, in array order.
fn phases(json: &str) -> Vec<char> {
    json.match_indices("\"ph\":\"")
        .map(|(i, m)| json[i + m.len()..].chars().next().unwrap())
        .collect()
}

/// One scripted recorder action.  Span ops address a stack of open
/// spans, so scripts always describe well-nested (if possibly
/// unfinished) activity — matching how the instrumented code uses the
/// API.
#[derive(Debug, Clone)]
enum Action {
    Begin(String, String),
    /// End the innermost open span with this many fields.
    End(u8),
    Count(String, u64),
    Observe(u64),
    Cache(bool),
}

fn arb_action() -> impl Strategy<Value = Action> {
    let name = "[a-z:._]{1,12}";
    prop_oneof![
        (name, ".*").prop_map(|(n, d)| Action::Begin(n, d)),
        (0u8..4).prop_map(Action::End),
        (name, 0u64..1000).prop_map(|(n, v)| Action::Count(n, v)),
        (0u64..10_000_000).prop_map(Action::Observe),
        any::<bool>().prop_map(Action::Cache),
    ]
}

fn run_script(rec: &InMemoryRecorder, script: &[Action], close_all: bool) {
    const FIELDS: [(&str, i64); 4] = [("rows_in", 10), ("rows_out", 7), ("hits", 1), ("neg", -3)];
    let mut stack: Vec<SpanId> = Vec::new();
    for action in script {
        match action {
            Action::Begin(name, detail) => stack.push(rec.span_begin(name, detail)),
            Action::End(nfields) => {
                if let Some(id) = stack.pop() {
                    rec.span_end(id, &FIELDS[..*nfields as usize]);
                }
            }
            Action::Count(name, delta) => rec.add(name, *delta),
            Action::Observe(ns) => rec.observe_ns("external", *ns),
            Action::Cache(hit) => rec.cache_access("node", *hit),
        }
    }
    if close_all {
        while let Some(id) = stack.pop() {
            rec.span_end(id, &[]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any activity, large journal: the export is valid JSON and B/E
    /// events balance like matched parentheses.
    #[test]
    fn chrome_trace_is_well_formed_and_balanced(
        script in proptest::collection::vec(arb_action(), 0..80),
        close_all in any::<bool>(),
    ) {
        let rec = InMemoryRecorder::new();
        run_script(&rec, &script, close_all);
        let json = rec.chrome_trace_json().unwrap();

        Json::new(&json).parse().unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));

        let mut depth = 0i64;
        let mut pairs = 0u64;
        for ph in phases(&json) {
            match ph {
                'B' => depth += 1,
                'E' => {
                    depth -= 1;
                    pairs += 1;
                    prop_assert!(depth >= 0, "E before matching B");
                }
                'i' => {}
                other => prop_assert!(false, "unexpected phase {}", other),
            }
        }
        prop_assert_eq!(depth, 0);
        // Every completed span appears as exactly one B/E pair.
        prop_assert_eq!(pairs, rec.completed_spans().len() as u64);
    }

    /// Same, under heavy ring pressure: evicting Begin entries must not
    /// unbalance the export (spans are reconstructed from self-contained
    /// End entries).
    #[test]
    fn chrome_trace_balanced_under_eviction(
        script in proptest::collection::vec(arb_action(), 20..120),
        capacity in 1usize..16,
    ) {
        let rec = InMemoryRecorder::with_capacity(capacity);
        run_script(&rec, &script, true);
        let json = rec.chrome_trace_json().unwrap();
        Json::new(&json).parse().unwrap_or_else(|e| panic!("invalid JSON: {e}\n{json}"));
        let mut depth = 0i64;
        for ph in phases(&json) {
            match ph {
                'B' => depth += 1,
                'E' => { depth -= 1; prop_assert!(depth >= 0); }
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0);
    }
}

#[test]
fn json_validator_rejects_garbage() {
    assert!(Json::new("{\"a\":1}").parse().is_ok());
    assert!(Json::new("[1,2,{\"x\":[true,null,\"s\\n\"]}]").parse().is_ok());
    assert!(Json::new("{\"a\":1,}").parse().is_err());
    assert!(Json::new("{'a':1}").parse().is_err());
    assert!(Json::new("[1,2").parse().is_err());
    assert!(Json::new("\"\u{1}\"").parse().is_err());
    assert!(Json::new("01x").parse().is_err());
}
