//! # tioga2 — facade crate
//!
//! Re-exports the full Tioga-2 workspace under one roof so that examples,
//! integration tests and downstream users can `use tioga2::...` without
//! naming the individual subsystem crates.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub mod repl;

pub use tioga2_core as core;
pub use tioga2_dataflow as dataflow;
pub use tioga2_datagen as datagen;
pub use tioga2_display as display;
pub use tioga2_expr as expr;
pub use tioga2_obs as obs;
pub use tioga2_relational as relational;
pub use tioga2_render as render;
pub use tioga2_viewer as viewer;

/// Commonly used items, importable as `use tioga2::prelude::*`.
pub mod prelude {
    pub use tioga2_core::{Environment, Session};
    pub use tioga2_dataflow::{Graph, NodeId, PortType};
    pub use tioga2_display::{Composite, DisplayRelation, Displayable, Group, Layout};
    pub use tioga2_expr::{parse, Color, Drawable, Expr, ScalarType, Value};
    pub use tioga2_relational::{Catalog, Relation, Schema, Tuple};
    pub use tioga2_render::Framebuffer;
    pub use tioga2_viewer::{Viewer, ViewerPosition};
}
