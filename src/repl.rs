//! A command-line driver for the Tioga-2 environment.
//!
//! The original Tioga-2 front end was an X11 direct-manipulation UI; the
//! headless reproduction exposes the same operations through a small
//! command language so the environment can be driven interactively
//! (`cargo run --bin tioga2-repl`) or by scripts (each command is one
//! line; `#` starts a comment).  Every command maps 1:1 onto a
//! `Session` method, i.e. onto a paper operation.
//!
//! The grammar and the dispatch bodies live in `core::command` — one
//! typed [`Command`](crate::core::command::Command) per operation, shared
//! with `tiogad`'s wire protocol — so this module is just the
//! line-oriented client: it forwards each line and maps the response
//! back onto the historical `ReplOutcome` type.
//!
//! Type `help` inside the REPL for the command list.

use crate::core::command::{self, Response};
use crate::core::Session;

/// Outcome of one REPL line.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplOutcome {
    /// Text to print.
    Message(String),
    /// The user asked to leave.
    Quit,
}

/// Errors surface as strings; the session itself is never poisoned (all
/// session edits roll back on failure).
pub type ReplResult = Result<ReplOutcome, String>;

/// Execute one line against the session.
pub fn run_line(session: &mut Session, line: &str) -> ReplResult {
    match command::run_line(session, line)? {
        Response::Message(m) => Ok(ReplOutcome::Message(m)),
        Response::Quit => Ok(ReplOutcome::Quit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Environment;
    use crate::relational::Catalog;

    fn session() -> Session {
        let catalog = Catalog::new();
        tioga2_datagen::register_standard_catalog(&catalog, 60, 4, 5);
        Session::new(Environment::new(catalog))
    }

    fn ok(s: &mut Session, line: &str) -> String {
        match run_line(s, line) {
            Ok(ReplOutcome::Message(m)) => m,
            other => panic!("'{line}' -> {other:?}"),
        }
    }

    #[test]
    fn figure1_script() {
        let mut s = session();
        assert!(ok(&mut s, "tables").contains("Stations"));
        let m = ok(&mut s, "table Stations");
        assert!(m.starts_with("#0"));
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "project 1 name,longitude,latitude");
        ok(&mut s, "viewer 2 main");
        let shown = ok(&mut s, "show 1 5");
        assert!(shown.contains("tuples"));
        let rendered = ok(&mut s, "render main fig1_repl");
        assert!(rendered.contains("out/fig1_repl.ppm"));
        assert!(ok(&mut s, "program").contains("Viewer[main]"));
    }

    #[test]
    fn explain_shows_plan_and_rewrites() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "project 1 name,altitude");
        ok(&mut s, "restrict 2 altitude > 10");
        let m = ok(&mut s, ":explain 3");
        assert!(m.contains("plan for #3.0:"), "{m}");
        assert!(m.contains("rewrites:"), "{m}");
        assert!(m.contains("fuse_restricts") || m.contains("push_restrict_below_project"), "{m}");
        assert!(m.contains("optimized:"), "{m}");
        // A lone table has nothing to plan.
        let m = ok(&mut s, "explain 0");
        assert!(m.contains("no relational chain"), "{m}");
        assert!(run_line(&mut s, ":explain zebra").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut s = session();
        assert_eq!(
            run_line(&mut s, "   # just a comment").unwrap(),
            ReplOutcome::Message(String::new())
        );
        assert_eq!(run_line(&mut s, "").unwrap(), ReplOutcome::Message(String::new()));
        assert_eq!(run_line(&mut s, "quit").unwrap(), ReplOutcome::Quit);
    }

    #[test]
    fn errors_do_not_poison_session() {
        let mut s = session();
        ok(&mut s, "table Stations");
        assert!(run_line(&mut s, "restrict 0 no_such_col = 1").is_err());
        assert!(run_line(&mut s, "restrict zebra TRUE").is_err());
        assert!(run_line(&mut s, "frobnicate").is_err());
        assert!(run_line(&mut s, "table NoSuchTable").is_err());
        // The session still works.
        ok(&mut s, "restrict 0 state = 'LA'");
        assert_eq!(s.graph.len(), 2);
    }

    #[test]
    fn aggregate_and_update_via_repl() {
        let mut s = session();
        ok(&mut s, "table Observations");
        let m = ok(&mut s, "aggregate 0 station_id count:-:n,avg:temperature:mean");
        assert!(m.contains("Aggregate"));
        ok(&mut s, "limit 1 0 5");
        ok(&mut s, "viewer 2 stats");
        let shown = ok(&mut s, "show 2");
        assert!(shown.contains("mean"));

        ok(&mut s, "table Employees");
        ok(&mut s, "viewer 3 emps");
        let click = ok(&mut s, "click emps 100 20");
        if click.contains("row") {
            let updated = ok(&mut s, "update emps 100 20 salary=1234");
            assert!(updated.contains("salary"));
        }
    }

    #[test]
    fn runtime_parameters_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        let c = ok(&mut s, "const float 100.0");
        assert!(c.starts_with("#1"));
        ok(&mut s, "restrictp 0 cutoff=1 altitude > cutoff");
        ok(&mut s, "viewer 2 main");
        let before = s.displayable("main").unwrap().tuple_count();
        ok(&mut s, "setconst 1 float 0.0");
        let after = s.displayable("main").unwrap().tuple_count();
        assert!(after >= before);
        assert!(run_line(&mut s, "setconst 1 text oops").is_err());
        assert!(run_line(&mut s, "const puppy 3").is_err());
    }

    #[test]
    fn help_and_menus() {
        let mut s = session();
        assert!(ok(&mut s, "help").contains("Tioga-2 REPL"));
        assert!(ok(&mut s, "help Overlay").contains("dimension mismatch"));
        assert!(run_line(&mut s, "help Zorp").is_err());
        assert!(ok(&mut s, "ops").contains("Encapsulate"));
        assert!(ok(&mut s, "boxes").contains("Restrict"));
    }

    #[test]
    fn encapsulate_and_usebox_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "sort 1 altitude:desc");
        let m = ok(&mut s, "encapsulate 1,2 LaSorted");
        assert!(m.contains("registered 'LaSorted'"));
        ok(&mut s, "table Stations");
        let u = ok(&mut s, "usebox LaSorted 3");
        assert!(u.contains("LaSorted"));
        let shown = ok(&mut s, "show 4 3");
        assert!(shown.contains("tuples"));
        assert!(run_line(&mut s, "usebox NoSuchBox 0").is_err());
        // A parameterized primitive template cannot be used directly.
        assert!(run_line(&mut s, "usebox Restrict 0").is_err());
    }

    #[test]
    fn stats_and_trace_via_repl() {
        let mut s = session();
        assert!(ok(&mut s, ":stats").contains("tracing off"));
        ok(&mut s, ":trace on");
        ok(&mut s, "table Stations");
        ok(&mut s, "viewer 0 main");
        ok(&mut s, "render main trace_smoke");
        let stats = ok(&mut s, ":stats");
        assert!(stats.contains("box_evals"), "{stats}");
        assert!(stats.contains("session.render"), "{stats}");
        let m = ok(&mut s, ":trace export out/trace_smoke.json");
        assert!(m.contains("Perfetto"));
        let json = std::fs::read_to_string("out/trace_smoke.json").unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("session.render"));
        ok(&mut s, ":trace prom out/trace_smoke.prom");
        assert!(std::fs::read_to_string("out/trace_smoke.prom")
            .unwrap()
            .contains("tioga2_engine_box_evals"));
        ok(&mut s, ":trace off");
        assert!(run_line(&mut s, ":trace export out/x.json").is_err());
        assert!(run_line(&mut s, ":trace sideways").is_err());
    }

    #[test]
    fn slowlog_via_repl() {
        let mut s = session();
        assert!(ok(&mut s, ":slowlog").contains("slowlog off"));
        ok(&mut s, ":slowlog 0"); // every demand counts as slow
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "show 1 5");
        let report = ok(&mut s, ":slowlog");
        assert!(report.contains("slowlog armed at 0 ms"), "{report}");
        assert!(report.contains("slow demand(s) captured"), "{report}");
        ok(&mut s, ":sys");
        ok(&mut s, "table sys.slow");
        let rows = ok(&mut s, "show 2 50");
        assert!(rows.contains("request"), "{rows}");
        assert!(ok(&mut s, ":slowlog off").contains("slowlog off"));
        assert!(ok(&mut s, ":slowlog clear").contains("cleared"));
        assert!(ok(&mut s, ":slowlog").contains("no slow demands captured"));
        assert!(run_line(&mut s, ":slowlog sideways").is_err());
    }

    #[test]
    fn explain_analyze_and_sys_tables_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "project 1 name,altitude");
        let m = ok(&mut s, ":explain analyze 2");
        assert!(m.contains("demand #"), "{m}");
        assert!(m.contains("rows"), "{m}");
        assert!(m.contains('%'), "{m}");
        assert!(m.contains("plan cache"), "{m}");
        assert!(run_line(&mut s, ":explain analyze").is_err());
        assert!(run_line(&mut s, ":explain analyze zebra").is_err());

        // Folded stacks from the ring the analyze filled.
        let f = ok(&mut s, ":trace folded out/repl_folded.txt");
        assert!(f.contains("demand trace(s)"), "{f}");
        let folded = std::fs::read_to_string("out/repl_folded.txt").unwrap();
        assert!(folded.contains("demand#"), "{folded}");

        // sys.* tables refresh and are demandable through the REPL.
        let m = ok(&mut s, ":sys");
        assert!(m.contains("sys.counters"), "{m}");
        assert!(m.contains("sys.demands"), "{m}");
        let t = ok(&mut s, "table sys.demands");
        assert!(t.contains("sys.demands"));
        let shown = ok(&mut s, "show 3 50");
        assert!(shown.contains("tuples"), "{shown}");
        assert!(shown.contains("rows_out"), "{shown}");
    }

    #[test]
    fn trace_folded_requires_traces() {
        let mut s = session();
        assert!(run_line(&mut s, ":trace folded out/none.txt").is_err());
    }

    #[test]
    fn threads_knob_via_repl() {
        let mut s = session();
        ok(&mut s, ":threads 3");
        assert_eq!(s.threads(), 3);
        assert_eq!(ok(&mut s, ":threads"), "threads=3");
        assert!(run_line(&mut s, ":threads 0").is_err());
        assert!(run_line(&mut s, ":threads many").is_err());
        // Results are identical at any worker count.
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 altitude > 1.0");
        let at3 = ok(&mut s, "show 1 50");
        ok(&mut s, ":threads 1");
        assert_eq!(ok(&mut s, "show 1 50"), at3);
    }

    #[test]
    fn budget_knob_via_repl() {
        let mut s = session();
        assert_eq!(ok(&mut s, ":budget"), "budget off");
        ok(&mut s, ":budget rows=3 ms=5000");
        assert_eq!(ok(&mut s, ":budget"), "budget: rows=3 ms=5000");
        assert!(run_line(&mut s, ":budget zebras=9").is_err());
        assert!(run_line(&mut s, ":budget rows=many").is_err());
        ok(&mut s, ":budget off");
        assert_eq!(ok(&mut s, ":budget"), "budget off");
    }

    #[test]
    fn budget_exceeded_keeps_session_and_canvas_alive() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 altitude > 1.0");
        ok(&mut s, "viewer 1 main");
        let good = ok(&mut s, "render main govern_keep");

        // A 3-row budget cannot cover the 60-row Stations scan that
        // validating a fresh restrict performs: the demand aborts with a
        // structured error and the edit rolls back...
        ok(&mut s, ":budget rows=3");
        let e = run_line(&mut s, "restrict 0 longitude < 500.0").unwrap_err();
        assert!(e.contains("budget exceeded"), "{e}");
        assert_eq!(s.graph.len(), 3, "failed edit rolled back");

        // ...but the session and canvas survive: lifting the budget lets
        // the same edit through and renders the identical frame.
        ok(&mut s, ":budget off");
        ok(&mut s, "restrict 0 longitude < 500.0");
        assert_eq!(s.graph.len(), 4);
        assert_eq!(ok(&mut s, "render main govern_keep"), good);
    }

    #[test]
    fn faults_knob_via_repl() {
        let mut s = session();
        assert_eq!(ok(&mut s, ":faults"), "faults off");
        // Arm a site no operator ever reaches: the command plumbing is
        // exercised without perturbing concurrently running tests (the
        // registry is process-global); real injection is covered by the
        // chaos suite.
        let m = ok(&mut s, ":faults no_such_site:7=err");
        assert!(m.contains("1 spec(s)"), "{m}");
        assert!(ok(&mut s, ":faults").contains("armed"));
        ok(&mut s, "table Stations");
        ok(&mut s, "show 0 3");
        assert!(run_line(&mut s, ":faults restrict:pull:=bogus").is_err());
        assert_eq!(ok(&mut s, ":faults off"), "faults off");
        assert_eq!(ok(&mut s, ":faults"), "faults off");
    }

    #[test]
    fn undo_save_load_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "save mine");
        ok(&mut s, "new");
        assert_eq!(s.graph.len(), 0);
        ok(&mut s, "load mine");
        assert_eq!(s.graph.len(), 2);
        assert_eq!(ok(&mut s, "undo"), "undone");
        assert_eq!(ok(&mut s, "redo"), "redone");
    }

    #[test]
    fn journal_status_tail_and_save() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        let status = ok(&mut s, ":journal");
        assert!(status.contains("event(s)"), "{status}");
        assert!(status.contains("last snapshot none"), "{status}");
        let tail = ok(&mut s, ":journal tail 1");
        assert!(tail.contains("Restrict"), "{tail}");
        let snap = ok(&mut s, ":journal snapshot");
        assert!(snap.contains("snapshot #"), "{snap}");
        assert!(ok(&mut s, ":journal").contains("last snapshot #"));
        assert!(run_line(&mut s, ":journal frob").is_err());
    }

    #[test]
    fn journal_recover_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("tioga2_repl_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");
        let path = path.to_str().unwrap();

        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "viewer 1 main");
        ok(&mut s, "render main");
        ok(&mut s, ":journal snapshot");
        ok(&mut s, "pan main 3 -2");
        ok(&mut s, &format!(":journal save {path}"));
        let m = ok(&mut s, &format!(":journal recover {path}"));
        assert!(m.contains("3 box(es)"), "{m}");
        assert!(m.contains("1 canvas(es)"), "{m}");
        // The recovered session renders the same canvas.
        let a = s.render("main").unwrap();
        let mut orig = session();
        for line in ["table Stations", "restrict 0 state = 'LA'", "viewer 1 main", "pan main 3 -2"]
        {
            ok(&mut orig, line);
        }
        let b = orig.render("main").unwrap();
        assert_eq!(a.fb.pixels(), b.fb.pixels());
    }

    #[test]
    fn rewind_and_replay_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        assert_eq!(s.graph.len(), 2);
        let m = ok(&mut s, ":rewind");
        assert!(m.contains("rewound 1"), "{m}");
        assert_eq!(s.graph.len(), 1);
        let m = ok(&mut s, ":rewind 5");
        assert!(m.contains("rewound 1"), "stops at the beginning: {m}");
        let m = ok(&mut s, ":replay 2");
        assert!(m.contains("replayed 2"), "{m}");
        assert_eq!(s.graph.len(), 2);
    }

    #[test]
    fn watch_tails_a_live_demand_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        assert_eq!(ok(&mut s, ":watch demand"), "watching 'demand' events");
        // `show` demands the node; the demand outcome is tailed inline.
        let m = ok(&mut s, "show 1 3");
        assert!(m.contains("[watch #"), "no tail in: {m}");
        assert!(m.contains("demand"), "{m}");
        // Filter hides non-demand events.
        let m = ok(&mut s, "table Observations");
        assert!(!m.contains("[watch"), "edit leaked through the demand filter: {m}");
        assert_eq!(ok(&mut s, ":watch off"), "watch off");
    }
}
