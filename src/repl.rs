//! A command-line driver for the Tioga-2 environment.
//!
//! The original Tioga-2 front end was an X11 direct-manipulation UI; the
//! headless reproduction exposes the same operations through a small
//! command language so the environment can be driven interactively
//! (`cargo run --bin tioga2-repl`) or by scripts (each command is one
//! line; `#` starts a comment).  Every command maps 1:1 onto a
//! `Session` method, i.e. onto a paper operation.
//!
//! Type `help` inside the REPL for the command list.

use crate::core::{CoreError, Session};
use crate::dataflow::NodeId;
use crate::display::compose::PartitionSpec;
use crate::display::{Layout, Selection};
use crate::expr::ScalarType;
use crate::relational::{AggFunc, AggSpec};

/// Outcome of one REPL line.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplOutcome {
    /// Text to print.
    Message(String),
    /// The user asked to leave.
    Quit,
}

/// Errors surface as strings; the session itself is never poisoned (all
/// session edits roll back on failure).
pub type ReplResult = Result<ReplOutcome, String>;

fn node(tok: &str) -> Result<NodeId, String> {
    let t = tok.trim_start_matches('#');
    t.parse::<u32>().map(NodeId).map_err(|_| format!("'{tok}' is not a node id"))
}

fn describe_budget(b: &crate::relational::Budget) -> String {
    let mut parts = Vec::new();
    if let Some(r) = b.row_cap {
        parts.push(format!("rows={r}"));
    }
    if let Some(ms) = b.wall_ms {
        parts.push(format!("ms={ms}"));
    }
    if parts.is_empty() {
        "unlimited".to_string()
    } else {
        parts.join(" ")
    }
}

fn err(e: CoreError) -> String {
    e.to_string()
}

fn scalar_type(tok: &str) -> Result<ScalarType, String> {
    ScalarType::parse(tok).ok_or_else(|| format!("'{tok}' is not a type"))
}

fn layout(tok: &str) -> Result<Layout, String> {
    match tok {
        "h" | "horizontal" => Ok(Layout::Horizontal),
        "v" | "vertical" => Ok(Layout::Vertical),
        other => match other.strip_prefix("tab:") {
            Some(k) => k
                .parse()
                .map(|cols| Layout::Tabular { cols })
                .map_err(|_| format!("bad tabular column count in '{other}'")),
            None => Err(format!("'{other}' is not a layout (h, v, tab:<cols>)")),
        },
    }
}

fn parse_const(ty: &str, text: &str) -> Result<crate::expr::Value, String> {
    use crate::expr::Value;
    match ty {
        "int" => text.trim().parse().map(Value::Int).map_err(|_| format!("'{text}' is not an int")),
        "float" => {
            text.trim().parse().map(Value::Float).map_err(|_| format!("'{text}' is not a float"))
        }
        "text" => Ok(Value::Text(text.trim_matches('\'').to_string())),
        other => Err(format!("'{other}' is not a const type (int, float, text)")),
    }
}

const HELP: &str = "\
Tioga-2 REPL — every command is one paper operation.
  tables | boxes | ops | help [op] | programs
  table <name>                          Add Table
  restrict <node> <predicate>          Restrict
  project <node> <f1,f2,...>           Project
  sample <node> <p> [seed]             Sample
  sort <node> <attr[:desc],...>        Sort
  join <left> <right> <predicate>      Join
  switch <node> <predicate>            Switch (2 outputs)
  aggregate <node> <k1,k2|-> <fn:attr:out,...>
  distinct <node> [a1,a2,...]          Distinct
  limit <node> <offset> <count>        Limit
  setattr <node> <name> <type> <def>   Set Attribute
  addattr <node> <name> <type> <plain|location|display> <def>
  rmattr <node> <name>                 Remove Attribute
  swap <node> <a> <b>                  Swap Attributes
  scale <node> <attr> <k>              Scale Attribute
  translate <node> <attr> <c>          Translate Attribute
  combine <node> <a> <b> <dx> <dy> <new>
  range <node> <min> <max>             Set Range
  layername <node> <name>              Set Layer Name
  overlay <bottom> <top>               Overlay (invariant mode)
  shuffle <node> <layer>               Shuffle
  stitch <n1,n2,...> <h|v|tab:k>       Stitch
  replicate <node> enum:<attr>         Replicate by enumerated type
  const <int|float|text> <value>       scalar parameter box
  setconst <node> <int|float|text> <v> twiddle a parameter in place
  restrictp <node> <name=node,...> <predicate>
  viewer <node> <canvas>               attach a canvas
  clone <canvas> <new>                 clone a canvas
  tee <node> <in_port>                 T on the edge into a port
  encapsulate <n1,n2,...> <name> [hole:<n1,n2>]...
  usebox <name> <in1,in2,...>          instantiate a registry box
  delete <node>                        Delete Box
  candidates <node>                    Apply Box menu for an edge
  show <node> [rows]                   ASCII table of a node's output
  program                              the program window (ASCII)
  diagram <file>                       program window as out/<file>.svg
  render <canvas> [file]               render; writes out/<file>.ppm
  elevmap <canvas>                     the elevation map
  cyclemap <canvas>                    cycle a group's elevation map
  pan <canvas> <dx> <dy> | zoom <canvas> <factor>
  slider <canvas> <dim> <lo> <hi>
  slave <a> <b> | unslave <a> <b>
  click <canvas> <x> <y>
  update <canvas> <x> <y> <field>=<text> ...
  back                                 rear-view 'go home'
  undo | redo
  save <name> | load <name> | new
  :explain <node>                      the streaming plan + rewrites for a box
  :explain analyze <node>              execute + per-operator rows/time/cache tree
  :sys                                 refresh sys.* introspection tables
  :stats                               engine counters + trace summary
  :threads [n]                         show/set parallel plan workers
  :budget [rows=<n>] [ms=<n>] | off    cap rows/wall-clock per demand
  :faults <site[:at][=err|panic],...> | off   arm deterministic fault injection
  :trace on|off                        collect spans/histograms
  :trace export <path>                 Chrome trace JSON (Perfetto)
  :trace prom <path>                   Prometheus text exposition
  :trace folded <path>                 folded stacks from the demand-trace ring
  :journal                             event-journal status
  :journal tail [n]                    last n journal events
  :journal save <path>                 write the journal as JSONL
  :journal snapshot                    force a recovery snapshot marker
  :journal recover <path>              rebuild the session from a journal
  :rewind [n] | :replay [n]            time-travel over journaled edits
  :watch [all|<kind>|off]              live-tail journal events by kind
  quit";

/// Execute one line against the session.
pub fn run_line(session: &mut Session, line: &str) -> ReplResult {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(ReplOutcome::Message(String::new()));
    }
    let mut parts = line.split_whitespace();
    let cmd = parts.next().unwrap_or("");
    let args: Vec<&str> = parts.collect();
    let rest = |from: usize| args[from..].join(" ");
    let need = |n: usize| -> Result<(), String> {
        if args.len() < n {
            Err(format!("'{cmd}' needs at least {n} argument(s); try 'help'"))
        } else {
            Ok(())
        }
    };

    let msg = |s: String| Ok(ReplOutcome::Message(s));
    let result = match cmd {
        "quit" | "exit" => Ok(ReplOutcome::Quit),
        "help" => {
            if let Some(op) = args.first() {
                match crate::core::menus::help(op) {
                    Some(h) => msg(format!("{} ({}): {}", h.name, h.reference, h.help)),
                    None => Err(format!("no operation named '{op}'")),
                }
            } else {
                msg(HELP.to_string())
            }
        }
        "ops" => msg(crate::core::menus::OPERATIONS
            .iter()
            .map(|o| format!("{:22} {}", o.name, o.reference))
            .collect::<Vec<_>>()
            .join("\n")),
        "tables" => msg(crate::core::menus::tables_menu(session).join("\n")),
        "boxes" => msg(crate::core::menus::boxes_menu(session).join("\n")),
        "programs" => msg(session.env.program_names().join("\n")),
        "table" => {
            need(1)?;
            let id = session.add_table(args[0]).map_err(err)?;
            msg(format!("{id} = {}", args[0]))
        }
        "restrict" => {
            need(2)?;
            let id = session.restrict(node(args[0])?, &rest(1)).map_err(err)?;
            msg(format!("{id} = Restrict"))
        }
        "project" => {
            need(2)?;
            let fields: Vec<&str> = args[1].split(',').collect();
            let id = session.project(node(args[0])?, &fields).map_err(err)?;
            msg(format!("{id} = Project"))
        }
        "sample" => {
            need(2)?;
            let p: f64 = args[1].parse().map_err(|_| "bad probability".to_string())?;
            let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
            let id = session.sample(node(args[0])?, p, seed).map_err(err)?;
            msg(format!("{id} = Sample({p})"))
        }
        "sort" => {
            need(2)?;
            let keys: Vec<(&str, bool)> = args[1]
                .split(',')
                .map(|k| match k.strip_suffix(":desc") {
                    Some(a) => (a, false),
                    None => (k.strip_suffix(":asc").unwrap_or(k), true),
                })
                .collect();
            let id = session.sort(node(args[0])?, &keys).map_err(err)?;
            msg(format!("{id} = Sort"))
        }
        "join" => {
            need(3)?;
            let id = session.join(node(args[0])?, node(args[1])?, &rest(2)).map_err(err)?;
            msg(format!("{id} = Join"))
        }
        "switch" => {
            need(2)?;
            let id = session.switch(node(args[0])?, &rest(1)).map_err(err)?;
            msg(format!("{id} = Switch (outputs 0 = match, 1 = rest)"))
        }
        "aggregate" => {
            need(3)?;
            let keys: Vec<&str> =
                if args[1] == "-" { vec![] } else { args[1].split(',').collect() };
            let mut aggs = Vec::new();
            for spec in args[2].split(',') {
                let mut it = spec.split(':');
                let func = it
                    .next()
                    .and_then(AggFunc::parse)
                    .ok_or_else(|| format!("bad aggregate in '{spec}'"))?;
                let attr = it.next().ok_or_else(|| format!("bad aggregate in '{spec}'"))?;
                let out = it.next().ok_or_else(|| format!("bad aggregate in '{spec}'"))?;
                aggs.push(AggSpec {
                    func,
                    attr: if attr == "-" { None } else { Some(attr.to_string()) },
                    output: out.to_string(),
                });
            }
            let id = session.aggregate(node(args[0])?, &keys, aggs).map_err(err)?;
            msg(format!("{id} = Aggregate"))
        }
        "distinct" => {
            need(1)?;
            let attrs: Vec<&str> = args.get(1).map(|a| a.split(',').collect()).unwrap_or_default();
            let id = session.distinct(node(args[0])?, &attrs).map_err(err)?;
            msg(format!("{id} = Distinct"))
        }
        "limit" => {
            need(3)?;
            let off: usize = args[1].parse().map_err(|_| "bad offset".to_string())?;
            let cnt: usize = args[2].parse().map_err(|_| "bad count".to_string())?;
            let id = session.limit(node(args[0])?, off, cnt).map_err(err)?;
            msg(format!("{id} = Limit"))
        }
        "setattr" => {
            need(4)?;
            let id = session
                .set_attribute(node(args[0])?, args[1], scalar_type(args[2])?, &rest(3))
                .map_err(err)?;
            msg(format!("{id} = Set Attribute {}", args[1]))
        }
        "addattr" => {
            need(5)?;
            let role = match args[3] {
                "plain" => crate::display::attr_ops::AttrRole::Plain,
                "location" => crate::display::attr_ops::AttrRole::Location,
                "display" => crate::display::attr_ops::AttrRole::Display,
                other => return Err(format!("'{other}' is not an attribute role")),
            };
            let id = session
                .add_attribute(node(args[0])?, args[1], scalar_type(args[2])?, &rest(4), role)
                .map_err(err)?;
            msg(format!("{id} = Add Attribute {}", args[1]))
        }
        "rmattr" => {
            need(2)?;
            let id = session.remove_attribute(node(args[0])?, args[1]).map_err(err)?;
            msg(format!("{id} = Remove Attribute"))
        }
        "swap" => {
            need(3)?;
            let id = session.swap_attributes(node(args[0])?, args[1], args[2]).map_err(err)?;
            msg(format!("{id} = Swap Attributes"))
        }
        "scale" => {
            need(3)?;
            let k: f64 = args[2].parse().map_err(|_| "bad factor".to_string())?;
            let id = session.scale_attribute(node(args[0])?, args[1], k).map_err(err)?;
            msg(format!("{id} = Scale Attribute"))
        }
        "translate" => {
            need(3)?;
            let c: f64 = args[2].parse().map_err(|_| "bad offset".to_string())?;
            let id = session.translate_attribute(node(args[0])?, args[1], c).map_err(err)?;
            msg(format!("{id} = Translate Attribute"))
        }
        "combine" => {
            need(6)?;
            let dx: f64 = args[3].parse().map_err(|_| "bad dx".to_string())?;
            let dy: f64 = args[4].parse().map_err(|_| "bad dy".to_string())?;
            let id = session
                .combine_displays(node(args[0])?, args[1], args[2], (dx, dy), args[5])
                .map_err(err)?;
            msg(format!("{id} = Combine Displays -> {}", args[5]))
        }
        "range" => {
            need(3)?;
            let lo: f64 = args[1].parse().map_err(|_| "bad min".to_string())?;
            let hi: f64 = args[2].parse().map_err(|_| "bad max".to_string())?;
            let id =
                session.set_range(node(args[0])?, lo, hi, Selection::default()).map_err(err)?;
            msg(format!("{id} = Set Range [{lo}, {hi}]"))
        }
        "layername" => {
            need(2)?;
            let id = session.set_layer_name(node(args[0])?, &rest(1)).map_err(err)?;
            msg(format!("{id} = Set Layer Name"))
        }
        "overlay" => {
            need(2)?;
            let id = session.overlay(node(args[0])?, node(args[1])?, vec![], true).map_err(err)?;
            msg(format!("{id} = Overlay"))
        }
        "shuffle" => {
            need(2)?;
            let layer: usize = args[1].parse().map_err(|_| "bad layer index".to_string())?;
            let id = session.shuffle(node(args[0])?, layer, Selection::default()).map_err(err)?;
            msg(format!("{id} = Shuffle"))
        }
        "stitch" => {
            need(2)?;
            let members = args[0].split(',').map(node).collect::<Result<Vec<_>, _>>()?;
            let id = session.stitch(&members, layout(args[1])?).map_err(err)?;
            msg(format!("{id} = Stitch"))
        }
        "replicate" => {
            need(2)?;
            let spec = match args[1].strip_prefix("enum:") {
                Some(attr) => PartitionSpec::Enumerate(attr.to_string()),
                None => return Err("replicate currently takes enum:<attr>".to_string()),
            };
            let id =
                session.replicate(node(args[0])?, spec, None, Selection::default()).map_err(err)?;
            msg(format!("{id} = Replicate"))
        }
        "const" => {
            need(2)?;
            let v = parse_const(args[0], &rest(1))?;
            let id = session.add_const(v).map_err(err)?;
            msg(format!("{id} = Const"))
        }
        "setconst" => {
            need(3)?;
            let v = parse_const(args[1], &rest(2))?;
            session.set_const(node(args[0])?, v).map_err(err)?;
            msg("parameter updated".to_string())
        }
        "restrictp" => {
            need(3)?;
            let mut params = Vec::new();
            for pair in args[1].split(',') {
                let (name, src) =
                    pair.split_once('=').ok_or_else(|| format!("'{pair}' is not name=node"))?;
                params.push((name, node(src)?));
            }
            let params: Vec<(&str, NodeId)> = params;
            let id =
                session.restrict_with_params(node(args[0])?, &rest(2), &params).map_err(err)?;
            msg(format!("{id} = Restrict(params)"))
        }
        "viewer" => {
            need(2)?;
            let id = session.add_viewer(node(args[0])?, args[1]).map_err(err)?;
            msg(format!("{id} = Viewer[{}]", args[1]))
        }
        "clone" => {
            need(2)?;
            let id = session.clone_canvas(args[0], args[1]).map_err(err)?;
            msg(format!("{id} = Viewer[{}] (clone of {})", args[1], args[0]))
        }
        "encapsulate" => {
            need(2)?;
            let region = args[0].split(',').map(node).collect::<Result<Vec<_>, _>>()?;
            let name = args[1];
            let mut holes = Vec::new();
            for h in &args[2..] {
                let ids =
                    h.strip_prefix("hole:").ok_or_else(|| format!("'{h}' is not hole:<nodes>"))?;
                holes.push(ids.split(',').map(node).collect::<Result<Vec<_>, _>>()?);
            }
            let def = session.encapsulate(&region, &holes, name).map_err(err)?;
            msg(format!(
                "registered '{}' ({} input(s), {} output(s), {} hole(s))",
                def.name,
                def.in_types.len(),
                def.out_types.len(),
                def.holes.len()
            ))
        }
        "usebox" => {
            need(1)?;
            let template = session
                .env
                .registry
                .get(args[0])
                .ok_or_else(|| format!("no box named '{}' in the registry", args[0]))?;
            let kind = template.kind.clone().ok_or_else(|| {
                format!(
                    "'{}' needs parameters (or hole plugs); it cannot be instantiated directly",
                    args[0]
                )
            })?;
            let inputs: Vec<NodeId> = match args.get(1) {
                Some(list) => list.split(',').map(node).collect::<Result<Vec<_>, _>>()?,
                None => vec![],
            };
            let id = session.add_box(kind).map_err(err)?;
            for (i, src) in inputs.iter().enumerate() {
                session.connect(*src, 0, id, i).map_err(err)?;
            }
            msg(format!("{id} = {}", args[0]))
        }
        "tee" => {
            need(2)?;
            let port: usize = args[1].parse().map_err(|_| "bad port".to_string())?;
            let id = session.add_tee(node(args[0])?, port).map_err(err)?;
            msg(format!("{id} = T"))
        }
        "delete" => {
            need(1)?;
            session.delete_box(node(args[0])?).map_err(err)?;
            msg("deleted".to_string())
        }
        "candidates" => {
            need(1)?;
            let cands = session.apply_box_candidates(&[(node(args[0])?, 0)]).map_err(err)?;
            msg(cands.iter().map(|c| c.name.clone()).collect::<Vec<_>>().join("\n"))
        }
        "show" => {
            need(1)?;
            let rows: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
            let d = session.demand(node(args[0])?, 0).map_err(err)?;
            match d {
                crate::display::Displayable::R(dr) => {
                    msg(format!("{} tuples\n{}", dr.rel.len(), dr.rel.to_ascii_table(rows)))
                }
                other => msg(format!(
                    "{} displayable with {} tuples",
                    other.type_tag(),
                    other.tuple_count()
                )),
            }
        }
        "program" => msg(session.graph.to_ascii()),
        "diagram" => {
            need(1)?;
            std::fs::create_dir_all("out").map_err(|e| e.to_string())?;
            let path = format!("out/{}.svg", args[0]);
            std::fs::write(&path, crate::dataflow::diagram::to_svg(&session.graph))
                .map_err(|e| e.to_string())?;
            msg(format!("{path} written"))
        }
        "render" => {
            need(1)?;
            let frame = session.render(args[0]).map_err(err)?;
            let file = args.get(1).copied().unwrap_or(args[0]);
            std::fs::create_dir_all("out").map_err(|e| e.to_string())?;
            let path = format!("out/{file}.ppm");
            crate::render::ppm::write_ppm(&frame.fb, &path).map_err(|e| e.to_string())?;
            msg(format!(
                "{path}: {}x{} px, {} screen objects",
                frame.fb.width(),
                frame.fb.height(),
                frame.hits.len().max(frame.member_hits.iter().map(|h| h.len()).sum())
            ))
        }
        "elevmap" => {
            need(1)?;
            let bars = session.elevation_map(args[0]).map_err(err)?;
            msg(bars
                .iter()
                .map(|b| {
                    format!(
                        "[{}] {:20} {:>10.2}..{:<10.2} {}",
                        b.order,
                        b.layer_name,
                        b.range.min,
                        b.range.max,
                        if b.active { "ACTIVE" } else { "" }
                    )
                })
                .collect::<Vec<_>>()
                .join("\n"))
        }
        "cyclemap" => {
            need(1)?;
            let i = session.cycle_elevation_map(args[0]).map_err(err)?;
            msg(format!("elevation map now shows member {i}"))
        }
        "pan" => {
            need(3)?;
            let dx: i32 = args[1].parse().map_err(|_| "bad dx".to_string())?;
            let dy: i32 = args[2].parse().map_err(|_| "bad dy".to_string())?;
            session.pan(args[0], dx, dy).map_err(err)?;
            msg("ok".to_string())
        }
        "zoom" => {
            need(2)?;
            let f: f64 = args[1].parse().map_err(|_| "bad factor".to_string())?;
            match session.zoom(args[0], f).map_err(err)? {
                Some(dest) => msg(format!("passed through a wormhole to '{dest}'")),
                None => msg(format!(
                    "elevation {:.4}",
                    session.viewers.get(args[0]).map_err(|e| e.to_string())?.position.elevation
                )),
            }
        }
        "slider" => {
            need(4)?;
            let lo: f64 = args[2].parse().map_err(|_| "bad lo".to_string())?;
            let hi: f64 = args[3].parse().map_err(|_| "bad hi".to_string())?;
            session.set_slider(args[0], args[1], lo, hi).map_err(err)?;
            msg("ok".to_string())
        }
        "slave" => {
            need(2)?;
            session.slave(args[0], args[1]).map_err(err)?;
            msg("slaved".to_string())
        }
        "unslave" => {
            need(2)?;
            session.unslave(args[0], args[1]).map_err(err)?;
            msg("unslaved".to_string())
        }
        "click" => {
            need(3)?;
            let x: i32 = args[1].parse().map_err(|_| "bad x".to_string())?;
            let y: i32 = args[2].parse().map_err(|_| "bad y".to_string())?;
            match session.click(args[0], x, y).map_err(err)? {
                Some(hit) => msg(format!(
                    "{} from layer '{}' (row {}, table {:?})",
                    hit.kind, hit.provenance.layer, hit.provenance.row_id, hit.provenance.source
                )),
                None => msg("nothing there".to_string()),
            }
        }
        "update" => {
            need(4)?;
            let x: i32 = args[1].parse().map_err(|_| "bad x".to_string())?;
            let y: i32 = args[2].parse().map_err(|_| "bad y".to_string())?;
            let mut dialog = session.begin_update(args[0], x, y).map_err(err)?;
            let mut changed = Vec::new();
            for assign in &args[3..] {
                let (field, text) = assign
                    .split_once('=')
                    .ok_or_else(|| format!("'{assign}' is not field=text"))?;
                dialog.set_field(field, text).map_err(err)?;
                changed.push(field.to_string());
            }
            let table = dialog.table.clone();
            let row = dialog.row_id;
            dialog.commit(session).map_err(err)?;
            msg(format!("updated {} of {table} row {row}", changed.join(", ")))
        }
        "back" => {
            let home = session.go_back().map_err(err)?;
            msg(format!("back on '{home}'"))
        }
        "undo" => msg(if session.undo() { "undone" } else { "nothing to undo" }.to_string()),
        "redo" => msg(if session.redo() { "redone" } else { "nothing to redo" }.to_string()),
        "save" => {
            need(1)?;
            session.save_program(args[0]);
            msg(format!("saved '{}'", args[0]))
        }
        "load" => {
            need(1)?;
            session.load_program(args[0]).map_err(err)?;
            msg(format!("loaded '{}' ({} boxes)", args[0], session.graph.len()))
        }
        "new" => {
            session.new_program();
            msg("new program".to_string())
        }
        ":explain" | "explain" => {
            need(1)?;
            if args[0] == "analyze" {
                need(2)?;
                let id = node(args[1])?;
                return msg(session.explain_analyze(id, 0).map_err(err)?.trim_end().to_string());
            }
            let id = node(args[0])?;
            msg(session.explain(id, 0).map_err(err)?.trim_end().to_string())
        }
        ":sys" | "sys" => {
            let names = session.refresh_sys_tables().map_err(err)?;
            let mut out = Vec::new();
            for name in names {
                let rows = session.env.catalog.snapshot(&name).map(|r| r.len()).unwrap_or(0);
                out.push(format!("{name:16} {rows} tuple(s)"));
            }
            out.push("refreshed — demand them like any table ('table sys.demands')".to_string());
            msg(out.join("\n"))
        }
        ":stats" | "stats" => {
            let st = session.engine_stats();
            let mut out = format!(
                "engine: box_evals={} cache_hits={} rows_in={} rows_out={}",
                st.box_evals, st.cache_hits, st.rows_in, st.rows_out
            );
            match session.recorder().summary_table() {
                Some(table) => {
                    out.push('\n');
                    out.push_str(table.trim_end());
                }
                None => out.push_str("\ntracing off — ':trace on' collects spans and histograms"),
            }
            msg(out)
        }
        ":threads" | "threads" => {
            if args.is_empty() {
                msg(format!("threads={}", session.threads()))
            } else {
                let n: usize = args[0]
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("'{}' is not a thread count (>= 1)", args[0]))?;
                session.set_threads(n);
                msg(format!("threads={n}"))
            }
        }
        ":budget" | "budget" => {
            if args.is_empty() {
                return match session.budget() {
                    Some(b) => msg(format!("budget: {}", describe_budget(b))),
                    None => msg("budget off".to_string()),
                };
            }
            if args[0] == "off" {
                session.set_budget(None);
                return msg("budget off".to_string());
            }
            let spec = rest(0);
            let budget = crate::relational::govern::parse_budget_spec(&spec)
                .filter(|b| !b.is_empty())
                .ok_or_else(|| {
                    format!(
                        "'{spec}' is not a budget; try ':budget rows=<n> ms=<n>' or ':budget off'"
                    )
                })?;
            session.set_budget(Some(budget.clone()));
            msg(format!("budget: {}", describe_budget(&budget)))
        }
        ":faults" | "faults" => {
            if args.is_empty() {
                return match crate::relational::fault::current() {
                    Some(p) => msg(format!(
                        "faults armed: {} spec(s), {} injected",
                        p.specs().len(),
                        p.injected_count()
                    )),
                    None => msg("faults off".to_string()),
                };
            }
            if args[0] == "off" {
                crate::relational::fault::install(None);
                return msg("faults off".to_string());
            }
            let spec = rest(0);
            let plan = crate::relational::FaultPlan::parse(&spec)?;
            let n = plan.specs().len();
            crate::relational::fault::install(Some(plan));
            msg(format!("faults armed: {n} spec(s)"))
        }
        ":trace" | "trace" => {
            need(1)?;
            match args[0] {
                "on" => {
                    session.set_recorder(std::sync::Arc::new(crate::obs::InMemoryRecorder::new()));
                    msg("tracing on".to_string())
                }
                "off" => {
                    session.set_recorder(crate::obs::noop());
                    msg("tracing off".to_string())
                }
                "export" => {
                    need(2)?;
                    let json = session
                        .recorder()
                        .chrome_trace_json()
                        .ok_or_else(|| "tracing is off; ':trace on' first".to_string())?;
                    std::fs::write(args[1], json).map_err(|e| e.to_string())?;
                    msg(format!("{} written — open in Perfetto (ui.perfetto.dev)", args[1]))
                }
                "prom" => {
                    need(2)?;
                    let text = session
                        .recorder()
                        .prometheus_text()
                        .ok_or_else(|| "tracing is off; ':trace on' first".to_string())?;
                    std::fs::write(args[1], text).map_err(|e| e.to_string())?;
                    msg(format!("{} written", args[1]))
                }
                "folded" => {
                    need(2)?;
                    let traces: Vec<crate::obs::DemandTrace> =
                        session.demand_traces().iter().cloned().collect();
                    if traces.is_empty() {
                        return Err(
                            "no demand traces; ':explain analyze <node>' or ':trace on' first"
                                .to_string(),
                        );
                    }
                    let text = crate::obs::export::folded_stacks(&traces);
                    std::fs::write(args[1], text).map_err(|e| e.to_string())?;
                    msg(format!("{} written ({} demand trace(s))", args[1], traces.len()))
                }
                other => Err(format!(
                    "':trace {other}' is not a trace command \
                     (on, off, export <path>, prom <path>, folded <path>)"
                )),
            }
        }
        ":journal" | "journal" => {
            if args.is_empty() {
                let ev = session.events();
                let snap = ev
                    .last_snapshot_seq()
                    .map(|s| format!("#{s}"))
                    .unwrap_or_else(|| "none".to_string());
                let sink = ev.sink_path().unwrap_or_else(|| "none".to_string());
                return msg(format!(
                    "journal: {} event(s), {} dropped, last snapshot {snap}, file sink {sink}",
                    ev.len(),
                    ev.dropped()
                ));
            }
            match args[0] {
                "tail" => {
                    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(10);
                    let evs = session.events().events();
                    let start = evs.len().saturating_sub(n);
                    let lines: Vec<String> = evs[start..]
                        .iter()
                        .map(|(seq, e)| format!("#{seq:<5} {}", e.summary()))
                        .collect();
                    msg(if lines.is_empty() {
                        "journal empty".to_string()
                    } else {
                        lines.join("\n")
                    })
                }
                "save" => {
                    need(2)?;
                    std::fs::write(args[1], session.journal_text()).map_err(|e| e.to_string())?;
                    msg(format!("{} written ({} event(s))", args[1], session.events().len()))
                }
                "snapshot" => {
                    let seq = session.snapshot_now().map_err(err)?;
                    msg(format!("snapshot #{seq} (canvas + catalog + undo stacks)"))
                }
                "recover" => {
                    need(2)?;
                    let text = std::fs::read_to_string(args[1]).map_err(|e| e.to_string())?;
                    *session = Session::recover(&text).map_err(err)?;
                    msg(format!(
                        "recovered: {} box(es), {} canvas(es), {} journal event(s)",
                        session.graph.len(),
                        session.canvas_names().len(),
                        session.events().len()
                    ))
                }
                other => Err(format!(
                    "':journal {other}' is not a journal command \
                     (tail [n], save <path>, snapshot, recover <path>)"
                )),
            }
        }
        ":rewind" | "rewind" => {
            let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
            let done = session.rewind(n);
            msg(format!("rewound {done} step(s) ({} box(es) now)", session.graph.len()))
        }
        ":replay" | "replay" => {
            let n: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(1);
            let done = session.replay_forward(n);
            msg(format!("replayed {done} step(s) ({} box(es) now)", session.graph.len()))
        }
        ":watch" | "watch" => {
            if args.is_empty() {
                return match session.watch_filter() {
                    Some("") => msg("watching all events".to_string()),
                    Some(k) => msg(format!("watching '{k}' events")),
                    None => {
                        msg("watch off — ':watch all' or ':watch <kind>' tails the journal"
                            .to_string())
                    }
                };
            }
            match args[0] {
                "off" => {
                    session.clear_watch();
                    msg("watch off".to_string())
                }
                "all" => {
                    session.set_watch(Some(""));
                    msg("watching all events".to_string())
                }
                kind => {
                    session.set_watch(Some(kind));
                    msg(format!("watching '{kind}' events"))
                }
            }
        }
        other => Err(format!("unknown command '{other}'; try 'help'")),
    };
    // `:watch` live tail: new journal events matching the filter are
    // appended to whatever the command printed, so the tail interleaves
    // with normal use of the session.
    match result {
        Ok(ReplOutcome::Message(m)) if session.watch_filter().is_some() => {
            let tail: Vec<String> = session
                .drain_watch()
                .into_iter()
                .map(|(seq, e)| format!("[watch #{seq}] {}", e.summary()))
                .collect();
            if tail.is_empty() {
                Ok(ReplOutcome::Message(m))
            } else if m.is_empty() {
                Ok(ReplOutcome::Message(tail.join("\n")))
            } else {
                Ok(ReplOutcome::Message(format!("{m}\n{}", tail.join("\n"))))
            }
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::Environment;
    use crate::relational::Catalog;

    fn session() -> Session {
        let catalog = Catalog::new();
        tioga2_datagen::register_standard_catalog(&catalog, 60, 4, 5);
        Session::new(Environment::new(catalog))
    }

    fn ok(s: &mut Session, line: &str) -> String {
        match run_line(s, line) {
            Ok(ReplOutcome::Message(m)) => m,
            other => panic!("'{line}' -> {other:?}"),
        }
    }

    #[test]
    fn figure1_script() {
        let mut s = session();
        assert!(ok(&mut s, "tables").contains("Stations"));
        let m = ok(&mut s, "table Stations");
        assert!(m.starts_with("#0"));
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "project 1 name,longitude,latitude");
        ok(&mut s, "viewer 2 main");
        let shown = ok(&mut s, "show 1 5");
        assert!(shown.contains("tuples"));
        let rendered = ok(&mut s, "render main fig1_repl");
        assert!(rendered.contains("out/fig1_repl.ppm"));
        assert!(ok(&mut s, "program").contains("Viewer[main]"));
    }

    #[test]
    fn explain_shows_plan_and_rewrites() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "project 1 name,altitude");
        ok(&mut s, "restrict 2 altitude > 10");
        let m = ok(&mut s, ":explain 3");
        assert!(m.contains("plan for #3.0:"), "{m}");
        assert!(m.contains("rewrites:"), "{m}");
        assert!(m.contains("fuse_restricts") || m.contains("push_restrict_below_project"), "{m}");
        assert!(m.contains("optimized:"), "{m}");
        // A lone table has nothing to plan.
        let m = ok(&mut s, "explain 0");
        assert!(m.contains("no relational chain"), "{m}");
        assert!(run_line(&mut s, ":explain zebra").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut s = session();
        assert_eq!(
            run_line(&mut s, "   # just a comment").unwrap(),
            ReplOutcome::Message(String::new())
        );
        assert_eq!(run_line(&mut s, "").unwrap(), ReplOutcome::Message(String::new()));
        assert_eq!(run_line(&mut s, "quit").unwrap(), ReplOutcome::Quit);
    }

    #[test]
    fn errors_do_not_poison_session() {
        let mut s = session();
        ok(&mut s, "table Stations");
        assert!(run_line(&mut s, "restrict 0 no_such_col = 1").is_err());
        assert!(run_line(&mut s, "restrict zebra TRUE").is_err());
        assert!(run_line(&mut s, "frobnicate").is_err());
        assert!(run_line(&mut s, "table NoSuchTable").is_err());
        // The session still works.
        ok(&mut s, "restrict 0 state = 'LA'");
        assert_eq!(s.graph.len(), 2);
    }

    #[test]
    fn aggregate_and_update_via_repl() {
        let mut s = session();
        ok(&mut s, "table Observations");
        let m = ok(&mut s, "aggregate 0 station_id count:-:n,avg:temperature:mean");
        assert!(m.contains("Aggregate"));
        ok(&mut s, "limit 1 0 5");
        ok(&mut s, "viewer 2 stats");
        let shown = ok(&mut s, "show 2");
        assert!(shown.contains("mean"));

        ok(&mut s, "table Employees");
        ok(&mut s, "viewer 3 emps");
        let click = ok(&mut s, "click emps 100 20");
        if click.contains("row") {
            let updated = ok(&mut s, "update emps 100 20 salary=1234");
            assert!(updated.contains("salary"));
        }
    }

    #[test]
    fn runtime_parameters_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        let c = ok(&mut s, "const float 100.0");
        assert!(c.starts_with("#1"));
        ok(&mut s, "restrictp 0 cutoff=1 altitude > cutoff");
        ok(&mut s, "viewer 2 main");
        let before = s.displayable("main").unwrap().tuple_count();
        ok(&mut s, "setconst 1 float 0.0");
        let after = s.displayable("main").unwrap().tuple_count();
        assert!(after >= before);
        assert!(run_line(&mut s, "setconst 1 text oops").is_err());
        assert!(run_line(&mut s, "const puppy 3").is_err());
    }

    #[test]
    fn help_and_menus() {
        let mut s = session();
        assert!(ok(&mut s, "help").contains("Tioga-2 REPL"));
        assert!(ok(&mut s, "help Overlay").contains("dimension mismatch"));
        assert!(run_line(&mut s, "help Zorp").is_err());
        assert!(ok(&mut s, "ops").contains("Encapsulate"));
        assert!(ok(&mut s, "boxes").contains("Restrict"));
    }

    #[test]
    fn encapsulate_and_usebox_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "sort 1 altitude:desc");
        let m = ok(&mut s, "encapsulate 1,2 LaSorted");
        assert!(m.contains("registered 'LaSorted'"));
        ok(&mut s, "table Stations");
        let u = ok(&mut s, "usebox LaSorted 3");
        assert!(u.contains("LaSorted"));
        let shown = ok(&mut s, "show 4 3");
        assert!(shown.contains("tuples"));
        assert!(run_line(&mut s, "usebox NoSuchBox 0").is_err());
        // A parameterized primitive template cannot be used directly.
        assert!(run_line(&mut s, "usebox Restrict 0").is_err());
    }

    #[test]
    fn stats_and_trace_via_repl() {
        let mut s = session();
        assert!(ok(&mut s, ":stats").contains("tracing off"));
        ok(&mut s, ":trace on");
        ok(&mut s, "table Stations");
        ok(&mut s, "viewer 0 main");
        ok(&mut s, "render main trace_smoke");
        let stats = ok(&mut s, ":stats");
        assert!(stats.contains("box_evals"), "{stats}");
        assert!(stats.contains("session.render"), "{stats}");
        let m = ok(&mut s, ":trace export out/trace_smoke.json");
        assert!(m.contains("Perfetto"));
        let json = std::fs::read_to_string("out/trace_smoke.json").unwrap();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("session.render"));
        ok(&mut s, ":trace prom out/trace_smoke.prom");
        assert!(std::fs::read_to_string("out/trace_smoke.prom")
            .unwrap()
            .contains("tioga2_engine_box_evals"));
        ok(&mut s, ":trace off");
        assert!(run_line(&mut s, ":trace export out/x.json").is_err());
        assert!(run_line(&mut s, ":trace sideways").is_err());
    }

    #[test]
    fn explain_analyze_and_sys_tables_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "project 1 name,altitude");
        let m = ok(&mut s, ":explain analyze 2");
        assert!(m.contains("demand #"), "{m}");
        assert!(m.contains("rows"), "{m}");
        assert!(m.contains('%'), "{m}");
        assert!(m.contains("plan cache"), "{m}");
        assert!(run_line(&mut s, ":explain analyze").is_err());
        assert!(run_line(&mut s, ":explain analyze zebra").is_err());

        // Folded stacks from the ring the analyze filled.
        let f = ok(&mut s, ":trace folded out/repl_folded.txt");
        assert!(f.contains("demand trace(s)"), "{f}");
        let folded = std::fs::read_to_string("out/repl_folded.txt").unwrap();
        assert!(folded.contains("demand#"), "{folded}");

        // sys.* tables refresh and are demandable through the REPL.
        let m = ok(&mut s, ":sys");
        assert!(m.contains("sys.counters"), "{m}");
        assert!(m.contains("sys.demands"), "{m}");
        let t = ok(&mut s, "table sys.demands");
        assert!(t.contains("sys.demands"));
        let shown = ok(&mut s, "show 3 50");
        assert!(shown.contains("tuples"), "{shown}");
        assert!(shown.contains("rows_out"), "{shown}");
    }

    #[test]
    fn trace_folded_requires_traces() {
        let mut s = session();
        assert!(run_line(&mut s, ":trace folded out/none.txt").is_err());
    }

    #[test]
    fn threads_knob_via_repl() {
        let mut s = session();
        ok(&mut s, ":threads 3");
        assert_eq!(s.threads(), 3);
        assert_eq!(ok(&mut s, ":threads"), "threads=3");
        assert!(run_line(&mut s, ":threads 0").is_err());
        assert!(run_line(&mut s, ":threads many").is_err());
        // Results are identical at any worker count.
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 altitude > 1.0");
        let at3 = ok(&mut s, "show 1 50");
        ok(&mut s, ":threads 1");
        assert_eq!(ok(&mut s, "show 1 50"), at3);
    }

    #[test]
    fn budget_knob_via_repl() {
        let mut s = session();
        assert_eq!(ok(&mut s, ":budget"), "budget off");
        ok(&mut s, ":budget rows=3 ms=5000");
        assert_eq!(ok(&mut s, ":budget"), "budget: rows=3 ms=5000");
        assert!(run_line(&mut s, ":budget zebras=9").is_err());
        assert!(run_line(&mut s, ":budget rows=many").is_err());
        ok(&mut s, ":budget off");
        assert_eq!(ok(&mut s, ":budget"), "budget off");
    }

    #[test]
    fn budget_exceeded_keeps_session_and_canvas_alive() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 altitude > 1.0");
        ok(&mut s, "viewer 1 main");
        let good = ok(&mut s, "render main govern_keep");

        // A 3-row budget cannot cover the 60-row Stations scan that
        // validating a fresh restrict performs: the demand aborts with a
        // structured error and the edit rolls back...
        ok(&mut s, ":budget rows=3");
        let e = run_line(&mut s, "restrict 0 longitude < 500.0").unwrap_err();
        assert!(e.contains("budget exceeded"), "{e}");
        assert_eq!(s.graph.len(), 3, "failed edit rolled back");

        // ...but the session and canvas survive: lifting the budget lets
        // the same edit through and renders the identical frame.
        ok(&mut s, ":budget off");
        ok(&mut s, "restrict 0 longitude < 500.0");
        assert_eq!(s.graph.len(), 4);
        assert_eq!(ok(&mut s, "render main govern_keep"), good);
    }

    #[test]
    fn faults_knob_via_repl() {
        let mut s = session();
        assert_eq!(ok(&mut s, ":faults"), "faults off");
        // Arm a site no operator ever reaches: the command plumbing is
        // exercised without perturbing concurrently running tests (the
        // registry is process-global); real injection is covered by the
        // chaos suite.
        let m = ok(&mut s, ":faults no_such_site:7=err");
        assert!(m.contains("1 spec(s)"), "{m}");
        assert!(ok(&mut s, ":faults").contains("armed"));
        ok(&mut s, "table Stations");
        ok(&mut s, "show 0 3");
        assert!(run_line(&mut s, ":faults restrict:pull:=bogus").is_err());
        assert_eq!(ok(&mut s, ":faults off"), "faults off");
        assert_eq!(ok(&mut s, ":faults"), "faults off");
    }

    #[test]
    fn undo_save_load_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "save mine");
        ok(&mut s, "new");
        assert_eq!(s.graph.len(), 0);
        ok(&mut s, "load mine");
        assert_eq!(s.graph.len(), 2);
        assert_eq!(ok(&mut s, "undo"), "undone");
        assert_eq!(ok(&mut s, "redo"), "redone");
    }

    #[test]
    fn journal_status_tail_and_save() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        let status = ok(&mut s, ":journal");
        assert!(status.contains("event(s)"), "{status}");
        assert!(status.contains("last snapshot none"), "{status}");
        let tail = ok(&mut s, ":journal tail 1");
        assert!(tail.contains("Restrict"), "{tail}");
        let snap = ok(&mut s, ":journal snapshot");
        assert!(snap.contains("snapshot #"), "{snap}");
        assert!(ok(&mut s, ":journal").contains("last snapshot #"));
        assert!(run_line(&mut s, ":journal frob").is_err());
    }

    #[test]
    fn journal_recover_round_trips_through_a_file() {
        let dir = std::env::temp_dir().join("tioga2_repl_journal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("session.jsonl");
        let path = path.to_str().unwrap();

        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        ok(&mut s, "viewer 1 main");
        ok(&mut s, "render main");
        ok(&mut s, ":journal snapshot");
        ok(&mut s, "pan main 3 -2");
        ok(&mut s, &format!(":journal save {path}"));
        let m = ok(&mut s, &format!(":journal recover {path}"));
        assert!(m.contains("3 box(es)"), "{m}");
        assert!(m.contains("1 canvas(es)"), "{m}");
        // The recovered session renders the same canvas.
        let a = s.render("main").unwrap();
        let mut orig = session();
        for line in ["table Stations", "restrict 0 state = 'LA'", "viewer 1 main", "pan main 3 -2"]
        {
            ok(&mut orig, line);
        }
        let b = orig.render("main").unwrap();
        assert_eq!(a.fb.pixels(), b.fb.pixels());
    }

    #[test]
    fn rewind_and_replay_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        assert_eq!(s.graph.len(), 2);
        let m = ok(&mut s, ":rewind");
        assert!(m.contains("rewound 1"), "{m}");
        assert_eq!(s.graph.len(), 1);
        let m = ok(&mut s, ":rewind 5");
        assert!(m.contains("rewound 1"), "stops at the beginning: {m}");
        let m = ok(&mut s, ":replay 2");
        assert!(m.contains("replayed 2"), "{m}");
        assert_eq!(s.graph.len(), 2);
    }

    #[test]
    fn watch_tails_a_live_demand_via_repl() {
        let mut s = session();
        ok(&mut s, "table Stations");
        ok(&mut s, "restrict 0 state = 'LA'");
        assert_eq!(ok(&mut s, ":watch demand"), "watching 'demand' events");
        // `show` demands the node; the demand outcome is tailed inline.
        let m = ok(&mut s, "show 1 3");
        assert!(m.contains("[watch #"), "no tail in: {m}");
        assert!(m.contains("demand"), "{m}");
        // Filter hides non-demand events.
        let m = ok(&mut s, "table Observations");
        assert!(!m.contains("[watch"), "edit leaked through the demand filter: {m}");
        assert_eq!(ok(&mut s, ":watch off"), "watch off");
    }
}
