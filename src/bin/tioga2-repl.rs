//! The interactive Tioga-2 shell.
//!
//! ```sh
//! cargo run --bin tioga2-repl                 # interactive
//! cargo run --bin tioga2-repl -- script.t2    # run a command script
//! ```
//!
//! Starts with the standard synthetic catalog loaded (Stations,
//! Observations, LaBorder, LaCounties, Employees).  Type `help`.

use std::io::{BufRead, Write};
use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::relational::Catalog;
use tioga2::repl::{run_line, ReplOutcome};

fn main() -> std::io::Result<()> {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 300, 24, 42);
    let mut session = Session::new(Environment::new(catalog));

    let script = std::env::args().nth(1);
    match script {
        Some(path) => {
            let text = std::fs::read_to_string(&path)?;
            for (lineno, line) in text.lines().enumerate() {
                match run_line(&mut session, line) {
                    Ok(ReplOutcome::Quit) => break,
                    Ok(ReplOutcome::Message(m)) => {
                        if !m.is_empty() {
                            println!("{m}");
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}:{}: {e}", lineno + 1);
                        std::process::exit(1);
                    }
                }
            }
        }
        None => {
            println!("Tioga-2 — type 'help' for the operation list, 'quit' to leave.");
            let stdin = std::io::stdin();
            let mut out = std::io::stdout();
            loop {
                print!("tioga2> ");
                out.flush()?;
                let mut line = String::new();
                if stdin.lock().read_line(&mut line)? == 0 {
                    break;
                }
                match run_line(&mut session, &line) {
                    Ok(ReplOutcome::Quit) => break,
                    Ok(ReplOutcome::Message(m)) => {
                        if !m.is_empty() {
                            println!("{m}");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
    Ok(())
}
