//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no network access and no vendored registry, so
//! this workspace ships a minimal API-compatible replacement backed by
//! `std::sync`.  Semantics match the subset of parking_lot this workspace
//! uses: `Mutex::lock`, `RwLock::read`/`write` (guards returned directly,
//! no poisoning — a poisoned std lock is recovered transparently, which is
//! exactly parking_lot's behaviour of not poisoning at all).

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_variants() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());

        let l = RwLock::new(0);
        let r = l.read();
        assert!(l.try_write().is_none());
        assert!(l.try_read().is_some());
        drop(r);
        assert!(l.try_write().is_some());
    }
}
