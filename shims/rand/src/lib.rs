//! Offline stand-in for the `rand` crate (0.8-flavoured API).
//!
//! The build container has no network access, so this workspace ships a
//! small deterministic replacement.  It implements the subset the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and ranges over the common integer
//! and float types.  The generator is SplitMix64 — statistically fine for
//! data generation and property tests, not cryptographic.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction, matching the rand 0.8 entry points we use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // No OS entropy plumbing in the shim: derive a seed from the
        // address of a stack local, which varies across processes but is
        // stable enough for non-cryptographic use.
        let marker = 0u8;
        Self::seed_from_u64(&marker as *const u8 as u64 ^ 0x9e37_79b9_7f4a_7c15)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Marker distribution for `Rng::gen`.
pub struct Standard;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    /// Uniform in `[0, 1)` with full 53-bit mantissa resolution, so
    /// `gen::<f64>() < p` keeps everything at p = 1.0 and nothing at 0.0.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded integer draw via 128-bit widening multiply.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = end.wrapping_sub(start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = Standard.sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u: f64 = Standard.sample(rng);
        start + u * (end - start)
    }
}

// Note: no `SampleRange<f32>` impls on purpose — with both f32 and f64
// candidates, unannotated `{float}` range literals fail to infer.  The
// workspace only draws f64 ranges.

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64.  Deterministic for a
    /// given seed, passes the statistical bar for data generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// A non-deterministically seeded RNG, for callers that just want noise.
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.gen_bool(1.0));
            assert!(!r.gen_bool(0.0));
        }
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let y = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }
}
