//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so this workspace ships a
//! minimal wall-clock bench harness exposing the criterion 0.5 API the
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.  Each benchmark
//! runs `sample_size` timed samples after a short warm-up and prints
//! mean / min / max per-iteration time.  No statistics, plots, or saved
//! baselines — numbers are indicative, not criterion-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    /// Substring filter from the CLI (`cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        run_one(name, filter.as_deref(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.filter.as_deref(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.filter.as_deref(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run once, then pick an iteration count aiming for
        // ~20ms per sample so fast routines aren't all timer noise.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Mean per-iteration time over all samples.
    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.samples.iter().sum();
        total / (self.samples.len() as u32) / (self.iters_per_sample.max(1) as u32)
    }

    fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or(Duration::ZERO)
            / (self.iters_per_sample.max(1) as u32)
    }

    fn max(&self) -> Duration {
        self.samples.iter().max().copied().unwrap_or(Duration::ZERO)
            / (self.iters_per_sample.max(1) as u32)
    }
}

fn run_one<F>(name: &str, filter: Option<&str>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = filter {
        if !name.contains(filter) {
            return;
        }
    }
    let mut b = Bencher { samples: Vec::new(), iters_per_sample: 1, sample_size };
    f(&mut b);
    println!(
        "{:<56} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples x {} iters)",
        name,
        b.mean(),
        b.min(),
        b.max(),
        b.samples.len(),
        b.iters_per_sample,
    );
}

/// Build a `Criterion` configured from `cargo bench` CLI arguments.
/// Flags criterion would consume (`--bench`, `--save-baseline x`, …) are
/// tolerated and ignored; the first bare word becomes a name filter.
pub fn criterion_from_args() -> Criterion {
    let mut filter = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--save-baseline" || a == "--baseline" || a == "--measurement-time" {
            let _ = args.next();
        } else if !a.starts_with('-') && filter.is_none() {
            filter = Some(a);
        }
    }
    Criterion { filter }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::criterion_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0usize;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
            ran += 1;
            b.iter(|| x * 2);
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("zzz".into()) };
        let mut ran = false;
        c.bench_function("abc", |_b| {
            ran = true;
        });
        assert!(!ran);
    }
}
