//! The `Strategy` trait and the built-in strategies: primitives via
//! `any`, ranges, tuples, `Just`, unions, mapping/filtering, bounded
//! recursion, and a regex-subset string generator.

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), f }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// shallower levels and returns one that may nest it.  `depth`
    /// bounds nesting; `_desired_size` / `_expected_branch` are accepted
    /// for API compatibility but unused (generation cost is already
    /// bounded by `depth`).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            cur = Union::new(vec![cur, deeper]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates in a row", self.reason);
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                // Full-width random bits, biased occasionally toward the
                // boundary values that break naive arithmetic.
                match rng.gen_range(0u32..16) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0,
                    3 => 1,
                    _ => rng.gen::<u64>() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Mix special values, moderate-range uniforms, and raw bit
        // patterns (which skew to extreme exponents, NaN, infinities).
        match rng.gen_range(0u32..8) {
            0 => {
                const SPECIAL: [f64; 8] = [
                    0.0,
                    -0.0,
                    1.0,
                    -1.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    f64::NAN,
                    f64::MIN_POSITIVE,
                ];
                SPECIAL[rng.gen_range(0..SPECIAL.len())]
            }
            1..=3 => rng.gen_range(-1e9..1e9),
            _ => f64::from_bits(rng.gen()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        random_char(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// ---------------------------------------------------------------------
// Regex-subset string strategies: `"[a-z][a-z0-9_]{0,6}"` etc.
// ---------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    /// `.` — any character.
    Dot,
    /// `[a-z0-9_]` — inclusive ranges (singles are `(c, c)`).
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the supported regex subset: literals, `.`, `[...]` classes with
/// ranges, and the quantifiers `*`, `+`, `?`, `{n}`, `{m,n}`.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '.' => Atom::Dot,
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let item = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in pattern `{pattern}`")
                    });
                    if item == ']' {
                        break;
                    }
                    let lo = if item == '\\' { chars.next().unwrap_or(item) } else { item };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') | None => {
                                // Trailing `-` is a literal.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(hi) => ranges.push((lo, hi)),
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in pattern `{pattern}`");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => {
                        let m: usize = m.trim().parse().unwrap_or(0);
                        let n: usize = n.trim().parse().unwrap_or(m + 8);
                        (m, n.max(m))
                    }
                    None => {
                        let n: usize = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// A character for `.`: mostly printable ASCII, with quotes, backslashes,
/// whitespace, and the odd multibyte character to exercise escaping.
fn random_char(rng: &mut StdRng) -> char {
    match rng.gen_range(0u32..16) {
        0 => ['"', '\'', '\\', '\n', '\t', ' '][rng.gen_range(0usize..6)],
        1 => ['é', 'λ', '→', '☃', '中', '\u{7f}'][rng.gen_range(0usize..6)],
        _ => char::from(rng.gen_range(0x20u8..0x7f)),
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let pieces = parse_pattern(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Dot => out.push(random_char(rng)),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    let (lo, hi) = (lo as u32, (hi as u32).max(lo as u32));
                    out.push(char::from_u32(rng.gen_range(lo..=hi)).unwrap_or(lo as u8 as char));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn ident_pattern_shape() {
        let r = &mut rng();
        for _ in 0..500 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(r);
            assert!((1..=7).contains(&s.len()), "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn star_and_bounded_repeats() {
        let r = &mut rng();
        for _ in 0..200 {
            let s = "[a-z]{0,4}".generate(r);
            assert!(s.len() <= 4);
            let t = "x*".generate(r);
            assert!(t.chars().all(|c| c == 'x') && t.len() <= 8);
            let u = "ab{2}c?".generate(r);
            assert!(u == "abbc" || u == "abb");
        }
    }

    #[test]
    fn dot_star_varies() {
        let r = &mut rng();
        let distinct: std::collections::HashSet<String> =
            (0..100).map(|_| ".*".generate(r)).collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn map_filter_union() {
        let r = &mut rng();
        let s = (0i64..10).prop_map(|x| x * 2).prop_filter("nonzero", |x| *x != 0);
        for _ in 0..100 {
            let v = s.generate(r);
            assert!(v % 2 == 0 && v != 0 && v < 20);
        }
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let seen: std::collections::HashSet<u8> = (0..100).map(|_| u.generate(r)).collect();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_is_bounded_and_varied() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..100).prop_map(Tree::Leaf).prop_recursive(4, 24, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        });
        let r = &mut rng();
        let mut max_depth = 0;
        for _ in 0..300 {
            let t = strat.generate(r);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth > 1, "recursion never fired");
        assert!(max_depth <= 5, "depth bound violated: {max_depth}");
    }
}
