//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_bounds() {
        let s = vec(0i64..5, 0..40);
        let r = &mut StdRng::seed_from_u64(1);
        let mut seen_empty = false;
        let mut seen_long = false;
        for _ in 0..500 {
            let v = s.generate(r);
            assert!(v.len() < 40);
            assert!(v.iter().all(|x| (0..5).contains(x)));
            seen_empty |= v.is_empty();
            seen_long |= v.len() > 30;
        }
        assert!(seen_empty && seen_long, "length distribution too narrow");
    }
}
