//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this workspace ships a
//! generate-only property-testing harness exposing the proptest 1.x API
//! surface its tests use: `Strategy` with `prop_map` / `prop_filter` /
//! `prop_recursive`, `BoxedStrategy`, `Just`, `any::<T>()`, regex-subset
//! string strategies, ranges and tuples as strategies,
//! `proptest::collection::vec`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: no shrinking (failures report the
//! original case), no persistence of regression seeds (the
//! `*.proptest-regressions` files are ignored), and case seeds are
//! derived deterministically from the test name and case index so runs
//! are reproducible.

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` block configuration.  Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-case RNG: FNV-1a over the test name, mixed with the
/// case index.  Same binary, same failures.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// `proptest! { ... }`: run each contained test function over many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                for __case in 0..__config.cases {
                    let __rng = &mut $crate::case_rng(stringify!($name), __case);
                    $crate::__proptest_bindings!(__rng; $($args)*);
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(payload) = __outcome {
                        eprintln!(
                            "proptest `{}`: failing case {}/{}",
                            stringify!($name),
                            __case,
                            __config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&$strat, $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&$strat, $rng);
        $crate::__proptest_bindings!($rng; $($rest)*);
    };
}

/// Uniform choice between strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "prop_assert_ne failed: `{}` == `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}
