#!/usr/bin/env bash
# Tier-1 gate plus lint: what every PR must keep green.
#
#   cargo fmt --all -- --check      — formatting is canonical
#   cargo build --release           — workspace builds clean
#   cargo test -q (threads 1 and 4) — root-package tests (tier-1
#       contract), exercised serial and with the partition-parallel
#       executor enabled so both code paths stay equivalent
#   cargo clippy -D warnings        — workspace-wide lint, warnings are
#       errors
#   cargo bench obs_overhead        — observability + governance budgets:
#       disabled recorder path < 2% of a warm render, recording +
#       per-operator attribution < 5% and armed budget checks < 2% of a
#       cold Figure 1 demand (asserts inside)
#   chaos leg                       — deterministic fault injection
#       (tests/chaos.rs), once unarmed and once with TIOGA2_FAULTS set so
#       the env-resolved global fault plan path is exercised too
#   governed leg                    — the whole root test suite under a
#       generous TIOGA2_BUDGET: governance checkpoints run everywhere and
#       must never trip on healthy workloads
#   example self_monitor            — the self-hosted sys.* pipeline
#       headless; exits non-zero if the latency canvas renders empty
#
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
TIOGA2_THREADS=1 cargo test -q
TIOGA2_THREADS=4 cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench -p tioga2-bench --bench obs_overhead
cargo test -q --test chaos
TIOGA2_FAULTS='scan:0=err' cargo test -q --test chaos env_fault_plan
TIOGA2_BUDGET='rows=50000000,ms=600000' cargo test -q
cargo run --release --example self_monitor

echo "ci: fmt + build + tests (1 and 4 workers) + clippy + budgets + chaos + governed suite + self-monitor all green"
