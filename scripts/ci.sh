#!/usr/bin/env bash
# Tier-1 gate plus lint: what every PR must keep green.
#
#   cargo fmt --check       — formatting is canonical
#   cargo fmt --all -- --check
cargo build --release   — workspace builds clean
#   cargo test -q           — root-package tests (tier-1 contract)
#   cargo clippy -D warnings — workspace-wide lint, warnings are errors
#
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings

echo "ci: fmt + build + tests + clippy all green"
