#!/usr/bin/env bash
# Tier-1 gate plus lint: what every PR must keep green.
#
#   cargo fmt --all -- --check      — formatting is canonical
#   cargo build --release           — workspace builds clean
#   cargo test -q (threads 1 and 4) — root-package tests (tier-1
#       contract), exercised serial and with the partition-parallel
#       executor enabled so both code paths stay equivalent
#   cargo clippy -D warnings        — workspace-wide lint, warnings are
#       errors
#   cargo bench obs_overhead        — observability + governance budgets:
#       disabled recorder path < 2% of a warm render, recording +
#       per-operator attribution < 5% and armed budget checks < 2% of a
#       cold Figure 1 demand (asserts inside)
#   chaos leg                       — deterministic fault injection
#       (tests/chaos.rs), once unarmed and once with TIOGA2_FAULTS set so
#       the env-resolved global fault plan path is exercised too
#   kill-and-recover leg            — crash sessions at random fault
#       sites and rebuild them from the event journal alone
#       (tests/kill_recover.rs): byte-identical canvases, demand
#       results, and catalog at 1, 2, and 8 recovery workers
#   delta-equivalence leg           — property tests that a committed
#       tuple edit propagated as a delta (tests/delta_equivalence.rs)
#       leaves every cache byte-identical to recompute-from-scratch,
#       run serial and with the parallel executor, with chaos faults
#       injected mid-delta
#   governed leg                    — the whole root test suite under a
#       generous TIOGA2_BUDGET: governance checkpoints run everywhere and
#       must never trip on healthy workloads
#   example self_monitor            — the self-hosted sys.* pipeline
#       headless; exits non-zero if the latency canvas renders empty
#   fleet chaos leg                 — network-fault injection against a
#       live tiogad (tests/fleet_chaos.rs): torn frames, dropped
#       connections, stalled replies, and fsync faults, each followed by
#       a kill + restart that must recover byte-identically with
#       exactly-once retry semantics; run serial and with the parallel
#       executor
#   tiogad smoke leg                — start the multi-session daemon on
#       an ephemeral port with fleet telemetry, a journal, and an armed
#       slowlog; drive a scripted client session end-to-end over the
#       wire protocol (build + demand + save), scrape GET /metrics over
#       a raw TCP socket (no curl in the image) and assert the daemon
#       and per-tenant fleet metric families are present, assert the
#       session journal carries non-zero request IDs on its demand
#       events, then stop the daemon with the shutdown verb and assert
#       a clean exit
#   kill-and-restart smoke leg      — start tiogad with a journal and
#       fsync-on-commit, build a session over the wire, SIGKILL the
#       daemon mid-flight, restart it on the same journal directory
#       (the dead pid's lockfile must be reclaimed), and assert the
#       recovered session replays byte-identical demand output; then
#       SIGTERM the successor and assert it drains and exits 0
#   figures + BENCH_figures.json    — regenerate every paper figure
#       (includes the A8 crash/recover/diff of journal recovery, which
#       arms its own fault plan and fails on any differing pixel, the
#       A9 tiogad scaling ablation with its shared-snapshot memory
#       proof, the A11 fleet-telemetry overhead gate, and the A12
#       fleet-recovery scaling + fsync-on-commit <5% overhead gate) and
#       check the emitted JSON is non-empty and carries every A-section
#       measurement key
#
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
TIOGA2_THREADS=1 cargo test -q
TIOGA2_THREADS=4 cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench -p tioga2-bench --bench obs_overhead
cargo test -q --test chaos
TIOGA2_FAULTS='scan:0=err' cargo test -q --test chaos env_fault_plan
cargo test -q --test kill_recover
TIOGA2_THREADS=1 cargo test -q --test fleet_chaos
TIOGA2_THREADS=4 cargo test -q --test fleet_chaos
TIOGA2_THREADS=1 cargo test -q --test delta_equivalence
TIOGA2_THREADS=4 cargo test -q --test delta_equivalence
TIOGA2_BUDGET='rows=50000000,ms=600000' cargo test -q
cargo run --release --example self_monitor

# tiogad smoke: daemon on an ephemeral port with telemetry + journal +
# armed slowlog, one scripted session, a /metrics scrape, clean shutdown.
rm -f /tmp/tiogad_ci_port /tmp/tiogad_ci_mport
rm -rf /tmp/tiogad_ci_journal
cargo run --release -p tioga2-server --bin tiogad -- \
    --addr 127.0.0.1:0 --port-file /tmp/tiogad_ci_port \
    --metrics-addr 127.0.0.1:0 --metrics-port-file /tmp/tiogad_ci_mport \
    --journal-dir /tmp/tiogad_ci_journal --slowlog 0 \
    --stations 60 --obs-per-station 4 > /tmp/tiogad_ci_log 2>&1 &
TIOGAD_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/tiogad_ci_port ] && break; sleep 0.1; done
[ -s /tmp/tiogad_ci_port ] || { echo "ci: tiogad never wrote its port file" >&2; cat /tmp/tiogad_ci_log >&2; exit 1; }
PORT=$(cat /tmp/tiogad_ci_port)
[ -s /tmp/tiogad_ci_mport ] || { echo "ci: tiogad never wrote its metrics port file" >&2; cat /tmp/tiogad_ci_log >&2; exit 1; }
MPORT=$(cat /tmp/tiogad_ci_mport)
# Capture the whole scripted session before grepping: `grep -q` on the
# live pipe would close it at the first match and cut the session short.
printf "table Stations\nrestrict 0 state = 'LA'\nshow 1 3\nsave smoke\nprograms\nstats\nquit\n" \
    | cargo run --release -q -p tioga2-server --bin tioga2-client -- \
        --addr "127.0.0.1:$PORT" --session ci-smoke > /tmp/tiogad_ci_out
grep -q "tuples" /tmp/tiogad_ci_out || { echo "ci: tiogad smoke session produced no demand output" >&2; kill $TIOGAD_PID; exit 1; }
grep -q "saved 'smoke'" /tmp/tiogad_ci_out || { echo "ci: tiogad smoke session did not save its program" >&2; kill $TIOGAD_PID; exit 1; }
# Scrape GET /metrics over a raw TCP socket (the image has no curl) and
# assert both the daemon gauges and the per-tenant fleet families.
exec 3<>"/dev/tcp/127.0.0.1/$MPORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
cat <&3 > /tmp/tiogad_ci_metrics
exec 3<&- 3>&-
grep -q "HTTP/1.0 200 OK" /tmp/tiogad_ci_metrics || { echo "ci: /metrics scrape did not return 200" >&2; kill $TIOGAD_PID; exit 1; }
for fam in tioga2_daemon_uptime_seconds tioga2_daemon_attaches_total \
           tioga2_fleet_demand_latency_ns_bucket tioga2_fleet_demand_latency_ns_count; do
    grep -q "$fam" /tmp/tiogad_ci_metrics \
        || { echo "ci: /metrics scrape is missing the '$fam' family" >&2; kill $TIOGAD_PID; exit 1; }
done
grep -q 'tenant="' /tmp/tiogad_ci_metrics || { echo "ci: /metrics fleet series carry no tenant label" >&2; kill $TIOGAD_PID; exit 1; }
# Request-ID round-trip: the session journal's demand events must carry
# the client frames' non-zero request IDs.
grep -rq '"req":[1-9]' /tmp/tiogad_ci_journal || { echo "ci: session journal has no non-zero request IDs on demand events" >&2; kill $TIOGAD_PID; exit 1; }
echo shutdown | cargo run --release -q -p tioga2-server --bin tioga2-client -- --addr "127.0.0.1:$PORT"
wait $TIOGAD_PID || { echo "ci: tiogad exited non-zero" >&2; exit 1; }
grep -q "clean shutdown" /tmp/tiogad_ci_log || { echo "ci: tiogad did not shut down cleanly" >&2; cat /tmp/tiogad_ci_log >&2; exit 1; }

# Kill-and-restart smoke: SIGKILL a journaled fsync-on-commit daemon
# mid-flight, restart it on the same journal dir, and demand the
# recovered session byte-for-byte; then drain the successor via SIGTERM.
rm -f /tmp/tiogad_ci_kr_port
rm -rf /tmp/tiogad_ci_kr_journal
# The daemon is exec'd directly (not via `cargo run`, whose wrapper
# process would absorb the SIGKILL and leave the real daemon running —
# and holding the journal lock).
./target/release/tiogad \
    --addr 127.0.0.1:0 --port-file /tmp/tiogad_ci_kr_port \
    --journal-dir /tmp/tiogad_ci_kr_journal --fsync \
    --stations 60 --obs-per-station 4 > /tmp/tiogad_ci_kr_log 2>&1 &
KR_PID=$!
for _ in $(seq 1 100); do [ -s /tmp/tiogad_ci_kr_port ] && break; sleep 0.1; done
[ -s /tmp/tiogad_ci_kr_port ] || { echo "ci: kill-restart tiogad never wrote its port file" >&2; cat /tmp/tiogad_ci_kr_log >&2; exit 1; }
KR_PORT=$(cat /tmp/tiogad_ci_kr_port)
printf "table Stations\nrestrict 0 state = 'LA'\nquit\n" \
    | ./target/release/tioga2-client \
        --addr "127.0.0.1:$KR_PORT" --session kr-smoke > /dev/null
printf "show 1 3\nquit\n" \
    | ./target/release/tioga2-client \
        --addr "127.0.0.1:$KR_PORT" --session kr-smoke > /tmp/tiogad_ci_kr_before
grep -q "tuples" /tmp/tiogad_ci_kr_before || { echo "ci: kill-restart session produced no demand output" >&2; kill $KR_PID; exit 1; }
kill -9 $KR_PID
wait $KR_PID 2>/dev/null || true   # reap: the lockfile's pid must be dead before restart
./target/release/tiogad \
    --addr "127.0.0.1:$KR_PORT" \
    --journal-dir /tmp/tiogad_ci_kr_journal --fsync \
    --stations 60 --obs-per-station 4 > /tmp/tiogad_ci_kr_log2 2>&1 &
KR2_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening" /tmp/tiogad_ci_kr_log2 2>/dev/null && break; sleep 0.1
done
printf "show 1 3\nquit\n" \
    | ./target/release/tioga2-client \
        --addr "127.0.0.1:$KR_PORT" --session kr-smoke > /tmp/tiogad_ci_kr_after
diff /tmp/tiogad_ci_kr_before /tmp/tiogad_ci_kr_after \
    || { echo "ci: session 'kr-smoke' did not recover byte-identically after SIGKILL + restart" >&2; kill $KR2_PID; exit 1; }
kill -TERM $KR2_PID
wait $KR2_PID || { echo "ci: tiogad exited non-zero after SIGTERM drain" >&2; cat /tmp/tiogad_ci_kr_log2 >&2; exit 1; }
grep -q "SIGTERM, draining" /tmp/tiogad_ci_kr_log2 || { echo "ci: tiogad never reported the SIGTERM drain" >&2; cat /tmp/tiogad_ci_kr_log2 >&2; exit 1; }
grep -q "clean shutdown" /tmp/tiogad_ci_kr_log2 || { echo "ci: drained tiogad did not shut down cleanly" >&2; cat /tmp/tiogad_ci_kr_log2 >&2; exit 1; }

cargo run --release -p tioga2-bench --bin figures
test -s BENCH_figures.json || { echo "ci: BENCH_figures.json is missing or empty" >&2; exit 1; }
for key in a5_plan_pushdown a6_parallel_scaling_t1 a6_parallel_scaling_t2 \
           a6_parallel_scaling_t4 a7_self_monitoring a8_journal_recovery \
           a9_server_scaling_s1 a9_server_scaling_s4 a9_server_scaling_s16 \
           a9_server_scaling_s64 \
           a10_edit_delta_1k a10_edit_invalidate_1k \
           a10_edit_delta_10k a10_edit_invalidate_10k \
           a10_edit_delta_100k a10_edit_invalidate_100k \
           a11_telemetry_on a11_telemetry_off \
           a12_recovery_1sessions a12_recovery_4sessions \
           a12_recovery_16sessions a12_recovery_64sessions \
           a12_fsync_off a12_fsync_on; do
    grep -q "\"$key\"" BENCH_figures.json \
        || { echo "ci: BENCH_figures.json is missing '$key'" >&2; exit 1; }
done

echo "ci: fmt + build + tests (1 and 4 workers) + clippy + budgets + chaos + kill-recover + fleet-chaos + governed suite + self-monitor + tiogad smoke + kill-restart smoke + figures all green"
