#!/usr/bin/env bash
# Tier-1 gate plus lint: what every PR must keep green.
#
#   cargo fmt --all -- --check      — formatting is canonical
#   cargo build --release           — workspace builds clean
#   cargo test -q (threads 1 and 4) — root-package tests (tier-1
#       contract), exercised serial and with the partition-parallel
#       executor enabled so both code paths stay equivalent
#   cargo clippy -D warnings        — workspace-wide lint, warnings are
#       errors
#
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
TIOGA2_THREADS=1 cargo test -q
TIOGA2_THREADS=4 cargo test -q
cargo clippy --workspace -- -D warnings

echo "ci: build + tests (1 and 4 workers) + clippy all green"
