#!/usr/bin/env bash
# Tier-1 gate plus lint: what every PR must keep green.
#
#   cargo fmt --all -- --check      — formatting is canonical
#   cargo build --release           — workspace builds clean
#   cargo test -q (threads 1 and 4) — root-package tests (tier-1
#       contract), exercised serial and with the partition-parallel
#       executor enabled so both code paths stay equivalent
#   cargo clippy -D warnings        — workspace-wide lint, warnings are
#       errors
#   cargo bench obs_overhead        — observability budgets: disabled
#       recorder path < 2% of a warm render, recording + per-operator
#       attribution < 5% of a cold Figure 1 demand (asserts inside)
#   example self_monitor            — the self-hosted sys.* pipeline
#       headless; exits non-zero if the latency canvas renders empty
#
# Run from the repository root:  ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
TIOGA2_THREADS=1 cargo test -q
TIOGA2_THREADS=4 cargo test -q
cargo clippy --workspace -- -D warnings
cargo bench -p tioga2-bench --bench obs_overhead
cargo run --release --example self_monitor

echo "ci: fmt + build + tests (1 and 4 workers) + clippy + obs budgets + self-monitor all green"
