//! Fleet-level network-fault chaos: arm the `net.*` and `journal.fsync`
//! chaos sites on a live tiogad, drive sessions through [`RetryClient`],
//! kill the daemon, restart it, and require
//!
//! * **byte-identical recovery** — every session's demand output after
//!   the restart equals its pre-crash output;
//! * **exactly-once retries** — lost replies, torn frames, and dropped
//!   connections make the client resend, but request-id duplicate
//!   suppression means no command ever applies twice (the program has
//!   exactly as many boxes as commands issued).
//!
//! The fault registry is process-global, so every test here serializes
//! on one mutex and disarms the plan before releasing it.

use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use tioga2::datagen::register_standard_catalog;
use tioga2::relational::{fault, Catalog, FaultPlan};
use tioga2_server::{Client, RetryClient, RetryPolicy, ServerConfig, ServerHandle};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm a global plan for the duration of a scope; disarm on drop even if
/// the test panics (the next test must start from a clean registry).
struct Armed;
impl Armed {
    fn new(spec: &str) -> Armed {
        fault::install(Some(FaultPlan::parse(spec).expect("valid fault spec")));
        Armed
    }
}
impl Drop for Armed {
    fn drop(&mut self) {
        fault::install(None);
    }
}

fn catalog() -> Catalog {
    let c = Catalog::new();
    register_standard_catalog(&c, 60, 3, 7);
    c
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tioga2_fleet_chaos_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &std::path::Path) -> ServerHandle {
    let cfg = ServerConfig { journal_dir: Some(dir.to_path_buf()), ..ServerConfig::default() };
    ServerHandle::start(catalog(), cfg, "127.0.0.1:0").expect("bind")
}

fn retry_client(addr: std::net::SocketAddr) -> RetryClient {
    let policy = RetryPolicy {
        attempts: 8,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        timeout: Duration::from_secs(5),
    };
    RetryClient::connect_with(addr.to_string(), policy)
}

/// The fixed per-session workload: three program-building commands, so
/// exactly-once execution is observable as exactly three program lines.
const WORKLOAD: [&str; 3] = ["table Stations", "restrict 0 state = 'LA'", "restrict 0 id >= 0"];

fn drive(addr: std::net::SocketAddr, sid: &str) -> (RetryClient, String) {
    let mut c = retry_client(addr);
    c.attach(Some(sid), Some("chaos")).expect("attach despite faults");
    for cmd in WORKLOAD {
        c.run(cmd).expect("retry budget").expect(cmd);
    }
    let show = c.run("show 2 5").expect("retry budget").expect("show");
    (c, show)
}

fn assert_exactly_once(c: &mut RetryClient) {
    let program = c.run("program").unwrap().unwrap();
    assert_eq!(
        program.lines().count(),
        WORKLOAD.len(),
        "retries must never double-apply:\n{program}"
    );
}

/// The matrix heart: run the workload under an armed fault spec, kill
/// the daemon (SIGKILL semantics: no retire, manifest says live, lock
/// left), restart on the same journal dir, and compare bytes.
fn kill_restart_under(spec: &str, name: &str) {
    let _guard = serial();
    let dir = scratch(name);
    let shows: Vec<(String, String)>;
    {
        let _armed = Armed::new(spec);
        let mut h = start(&dir);
        let mut fleet = Vec::new();
        for i in 0..3 {
            let sid = format!("chaos{i}");
            let (mut c, show) = drive(h.addr(), &sid);
            assert_exactly_once(&mut c);
            fleet.push((sid, show, c));
        }
        shows = fleet.iter().map(|(sid, show, _)| (sid.clone(), show.clone())).collect();
        h.server().crash();
        h.stop();
    } // faults disarmed: the restart itself runs clean

    let mut h2 = start(&dir);
    assert_eq!(
        h2.server().session_ids(),
        vec!["chaos0", "chaos1", "chaos2"],
        "restart must rebuild the whole fleet ({spec})"
    );
    for (sid, before) in &shows {
        let mut c = retry_client(h2.addr());
        c.attach(Some(sid), Some("chaos")).unwrap();
        let after = c.run("show 2 5").unwrap().unwrap();
        assert_eq!(before, &after, "session '{sid}' must recover byte-identically ({spec})");
        assert_exactly_once(&mut c);
    }
    h2.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill_restart_with_dropped_connections() {
    // Every connection's second frame (the first command after attach)
    // is dropped before its reply — the client must reconnect, reattach,
    // and resend without double-applying.
    kill_restart_under("net.disconnect:1=err", "disconnect");
}

#[test]
fn kill_restart_with_torn_reply_frames() {
    // Frame 2's reply is cut mid-frame: the client sees a torn frame
    // (unexpected EOF mid-payload), not a hang, and retries.
    kill_restart_under("net.torn_frame:2=err", "torn");
}

#[test]
fn kill_restart_with_stalled_replies() {
    // Frame 1's reply stalls (100ms); the client deadline is generous
    // here, so this exercises the socket deadlines *not* firing early.
    kill_restart_under("net.stall:1=err", "stall");
}

#[test]
fn kill_restart_with_fsync_faults() {
    // The journal fsync site fires on one coordinate; that command is
    // refused (durability could not be acknowledged), later ones
    // proceed, and restart recovery still converges.
    let _guard = serial();
    let dir = scratch("fsync");
    let cfg =
        ServerConfig { journal_dir: Some(dir.clone()), fsync: true, ..ServerConfig::default() };
    let before;
    {
        let _armed = Armed::new("journal.fsync:2=err");
        let mut h = ServerHandle::start(catalog(), cfg.clone(), "127.0.0.1:0").unwrap();
        let mut c = retry_client(h.addr());
        c.attach(Some("f"), Some("chaos")).unwrap();
        let mut outcomes = Vec::new();
        for cmd in WORKLOAD {
            outcomes.push(c.run(cmd).expect("io"));
        }
        // At least one command tripped the fsync fault and was refused
        // with a structured error naming the journal.
        let failed: Vec<&String> = outcomes.iter().filter_map(|o| o.as_ref().err()).collect();
        assert!(
            failed.iter().all(|e| e.contains("journal fsync failed")),
            "fsync faults must surface structurally: {failed:?}"
        );
        before = c.run("show 0 3").expect("io").expect("session stays usable");
        h.server().crash();
        h.stop();
    }

    let mut h2 = ServerHandle::start(catalog(), cfg, "127.0.0.1:0").unwrap();
    let mut c = retry_client(h2.addr());
    c.attach(Some("f"), Some("chaos")).unwrap();
    assert_eq!(before, c.run("show 0 3").unwrap().unwrap());
    h2.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn retry_counters_record_the_fight() {
    let _guard = serial();
    let dir = scratch("counters");
    // Frame 0 is the attach; frame 2 is a stamped workload command —
    // dropping its reply forces a stamped resend, which must be answered
    // from the worker's dedup cache.
    let _armed = Armed::new("net.disconnect:2=err");
    let mut h = start(&dir);
    let (c, _show) = drive(h.addr(), "counted");
    let stats = c.stats();
    assert!(stats.retries >= 1, "disconnects must force retries: {stats:?}");
    assert!(stats.reconnects >= 2, "each drop must reconnect: {stats:?}");
    // Server side: the dedup cache answered at least one replay.
    let mut raw = Client::connect(h.addr()).unwrap();
    let text = raw.run("stats").unwrap().unwrap();
    let dedup: u64 = text
        .split("dedup_hits=")
        .nth(1)
        .and_then(|t| t.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    assert!(dedup >= 1, "replays must hit the dedup cache:\n{text}");
    h.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn env_spec_accepts_net_sites() {
    // `TIOGA2_FAULTS=net.disconnect:3=err,journal.fsync=err` must parse:
    // the chaos sites ride the same registry grammar as engine sites.
    let plan =
        FaultPlan::parse("net.disconnect:3=err,net.torn_frame=panic,journal.fsync:7=err").unwrap();
    assert_eq!(plan.specs().len(), 3);
    assert!(plan.check("net.disconnect", 3).is_some());
    assert!(plan.check("net.disconnect", 2).is_none());
    assert!(plan.check("net.torn_frame", 99).is_some());
    assert!(plan.check("journal.fsync", 7).is_some());
}
