//! End-to-end integration: the complete Louisiana atlas built through the
//! facade crate, persisted, reloaded, and re-rendered bit-identically.

use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::display::Selection;
use tioga2::expr::ScalarType as T;
use tioga2::relational::Catalog;

fn catalog() -> Catalog {
    let c = Catalog::new();
    register_standard_catalog(&c, 150, 10, 20260706);
    c
}

fn build_atlas(s: &mut Session) {
    let stations = s.add_table("Stations").unwrap();
    let la = s.restrict(stations, "state = 'LA'").unwrap();
    let sx = s.set_attribute(la, "x", T::Float, "longitude").unwrap();
    let sy = s.set_attribute(sx, "y", T::Float, "latitude").unwrap();
    let styled = s
        .set_attribute(
            sy,
            "display",
            T::DrawList,
            "circle(0.04,'red') ++ offset(text(name,'black'), 0.0, -0.07)",
        )
        .unwrap();
    let ranged = s.set_range(styled, 0.0, 1e9, Selection::default()).unwrap();

    let border = s.add_table("LaBorder").unwrap();
    let bx = s.set_attribute(border, "x", T::Float, "x1").unwrap();
    let by = s.set_attribute(bx, "y", T::Float, "y1").unwrap();
    let map = s
        .set_attribute(by, "display", T::DrawList, "line(x2 - x1, y2 - y1, 'gray') ++ nodraw()")
        .unwrap();

    let atlas = s.overlay(map, ranged, vec![], true).unwrap();
    s.add_viewer(atlas, "atlas").unwrap();
}

#[test]
fn atlas_renders_and_roundtrips_bit_identically() {
    let env = Environment::new(catalog());
    let mut s = Session::new(env);
    s.set_canvas_size(400, 300);
    build_atlas(&mut s);

    let first = s.render("atlas").unwrap();
    assert!(first.fb.ink_fraction() > 0.001);
    assert!(!first.hits.is_empty());

    // Save, wipe, reload, re-render: the canvas must be bit-identical
    // (deterministic data, deterministic program, deterministic raster).
    s.save_program("atlas-program");
    s.new_program();
    assert!(s.render("atlas").is_err(), "canvas gone with the program");
    s.load_program("atlas-program").unwrap();
    let second = s.render("atlas").unwrap();
    assert_eq!(first.fb.pixels(), second.fb.pixels());
    assert_eq!(first.hits.len(), second.hits.len());
}

#[test]
fn svg_and_ppm_outputs_are_consistent() {
    let mut s = Session::new(Environment::new(catalog()));
    s.set_canvas_size(320, 240);
    build_atlas(&mut s);
    let frame = s.render("atlas").unwrap();
    let ppm = tioga2::render::ppm::encode(&frame.fb);
    assert!(ppm.starts_with(b"P6\n320 240\n255\n"));
    let vp = s.viewers.get("atlas").unwrap().viewport();
    let svg = tioga2::render::svg::scene_to_svg(&frame.scene, &vp);
    // Every circle in the scene appears in the SVG.
    let circles = frame.scene.items.iter().filter(|i| i.drawable.kind() == "circle").count();
    assert_eq!(svg.matches("<circle").count(), circles);
    assert!(svg.contains("<line"), "map lines serialized");
}

#[test]
fn update_through_full_stack_changes_pixels() {
    let mut s = Session::new(Environment::new(catalog()));
    s.set_canvas_size(400, 300);
    build_atlas(&mut s);
    let before = s.render("atlas").unwrap();

    // Click the first station circle and move it north by editing its
    // latitude (a §8 update through the rendered canvas).
    let circle = before
        .hits
        .records()
        .iter()
        .find(|r| r.kind == "circle")
        .expect("a station circle on screen")
        .clone();
    let (cx, cy) = ((circle.bbox.0 + circle.bbox.2) / 2, (circle.bbox.1 + circle.bbox.3) / 2);
    let mut dialog = s.begin_update("atlas", cx, cy).unwrap();
    assert_eq!(dialog.table, "Stations");
    let old_lat: f64 =
        dialog.fields.iter().find(|f| f.name == "latitude").unwrap().original.parse().unwrap();
    dialog.set_field("latitude", format!("{}", old_lat + 0.8)).unwrap();
    dialog.commit(&mut s).unwrap();

    let after = s.render("atlas").unwrap();
    assert_ne!(before.fb.pixels(), after.fb.pixels(), "the station moved on screen");
}

#[test]
fn prelude_exposes_the_working_surface() {
    use tioga2::prelude::*;
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 10, 2, 1);
    let mut s = Session::new(Environment::new(catalog));
    let t = s.add_table("Stations").unwrap();
    s.add_viewer(t, "v").unwrap();
    let d: Displayable = s.displayable("v").unwrap();
    assert_eq!(d.tuple_count(), 10);
    let e: Expr = parse("1 + 2").unwrap();
    assert_eq!(e.to_string(), "1 + 2");
    let fb = Framebuffer::new(4, 4);
    assert_eq!(fb.width(), 4);
    let _c: Color = Color::RED;
}
