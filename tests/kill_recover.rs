//! Kill-and-recover chaos properties: crash a session at any fault site,
//! replay its journal, and require the recovered session to be
//! byte-identical — framebuffers, catalog, and demand results — at 1, 2,
//! and 8 plan workers.
//!
//! "Crash" here means: a fault (structured error or contained panic)
//! fires mid-demand, and all that survives is the append-only event
//! journal.  Recovery rebuilds the session from the last snapshot plus
//! the replayable tail, with the fault disarmed (a restart does not
//! re-arm the crash).  Faults are scoped to the session's own engine, so
//! this binary never touches the process-global fault registry.

use proptest::prelude::*;
use std::sync::OnceLock;
use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::relational::persist as rel_persist;
use tioga2::relational::{Catalog, FaultPlan};

/// Keep injected panics (expected here) from spraying backtraces.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !payload.contains("injected fault") {
                default(info);
            }
        }));
    });
}

/// A per-session plan that never fires: keeps the engine off the
/// process-global fault registry.
fn noop_plan() -> FaultPlan {
    FaultPlan::parse("kill_recover_noop_site=err").unwrap()
}

fn session() -> Session {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 90, 6, 77);
    let mut s = Session::new(Environment::new(catalog));
    s.set_fault_plan(Some(noop_plan()));
    s
}

/// Seed program: Figure 1 with a canvas, rendered once, snapshotted so
/// the journal is recoverable whatever the random tail does.
fn seed_session() -> Session {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    s.render("main").unwrap();
    s.snapshot_now().unwrap();
    s
}

/// Random session activity after the snapshot: edits, gestures, undo,
/// more snapshots.  Individual failures are fine (and rolled back); the
/// property only requires that whatever *was* journaled replays exactly.
fn apply_ops(s: &mut Session, seeds: &[(u8, u64)]) {
    for &(tag, a) in seeds {
        match tag % 8 {
            0 => {
                let last = s.graph.node_ids().last().copied();
                if let Some(n) = last {
                    let _ = s.restrict(n, &format!("altitude > {}.0", (a % 200) as i64 - 100));
                }
            }
            1 => {
                let _ = s.add_table("Observations");
            }
            2 => {
                let _ = s.pan("main", (a % 21) as i32 - 10, (a % 13) as i32 - 6);
            }
            3 => {
                let _ = s.zoom("main", 0.5 + (a % 30) as f64 / 10.0);
            }
            4 => {
                s.undo();
            }
            5 => {
                s.redo();
            }
            6 => {
                let _ = s.render("main");
            }
            7 => {
                let _ = s.snapshot_now();
            }
            _ => unreachable!(),
        }
    }
}

/// The fault sites a "crash" draws from: stream sites, eager sites, and
/// worker panics, as errors and as contained panics.
fn site_pool(coord: u64) -> Vec<String> {
    vec![
        format!("scan:{coord}=err"),
        format!("scan:{coord}=panic"),
        "scan=err".to_string(),
        format!("restrict:pull:{coord}=err"),
        format!("restrict:pull:{coord}=panic"),
        "sort=err".to_string(),
        "sort=panic".to_string(),
        "worker=panic".to_string(),
    ]
}

/// Everything recovery must reproduce: per-canvas framebuffer bytes,
/// per-canvas demand results (serialized relations), and the non-sys
/// catalog.
fn fingerprint(s: &mut Session) -> (Vec<(String, Vec<u8>)>, Vec<String>, Vec<(String, String)>) {
    let mut frames = Vec::new();
    let mut demands = Vec::new();
    for c in s.canvas_names() {
        let f = s.render(&c).expect("unfaulted render");
        frames.push((c.clone(), f.fb.pixels().iter().flatten().copied().collect()));
        match s.displayable(&c).expect("unfaulted demand") {
            tioga2::display::Displayable::R(dr) => {
                demands.push(rel_persist::save_relation(&dr.rel).unwrap())
            }
            other => demands.push(format!("non-relational: {}", other.type_tag())),
        }
    }
    let mut tables = Vec::new();
    for name in s.env.catalog.table_names() {
        if name.starts_with("sys.") {
            continue;
        }
        let rel = s.env.catalog.snapshot(&name).unwrap();
        tables.push((name, rel_persist::save_relation(&rel).unwrap()));
    }
    (frames, demands, tables)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash at any fault site, recover from the journal, and compare
    /// the recovered session byte-for-byte at 1, 2, and 8 workers.
    #[test]
    fn crash_replay_is_byte_identical_across_worker_counts(
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..6),
        site in 0usize..8,
        coord in 0u64..16,
    ) {
        quiet_injected_panics();
        let mut s = seed_session();
        apply_ops(&mut s, &seeds);

        // The crash: arm a fault on this session's engine and drive the
        // canvas.  The demand dies (or the site is never reached); either
        // way the journal is what survives.
        let spec = site_pool(coord)[site].clone();
        s.set_fault_plan(Some(FaultPlan::parse(&spec).unwrap()));
        let crashed = s.render("main").is_err();
        let log = s.journal_text();

        // Post-crash restart: fault disarmed.  The original session is
        // the reference for what the journal must reproduce.
        s.set_fault_plan(Some(noop_plan()));
        let want = fingerprint(&mut s);

        for threads in [1usize, 2, 8] {
            let mut back = Session::recover(&log)
                .unwrap_or_else(|e| panic!("recover (crashed={crashed}, {spec}): {e}"));
            back.set_fault_plan(Some(noop_plan()));
            back.set_threads(threads);
            let got = fingerprint(&mut back);
            prop_assert_eq!(&want.0, &got.0);
            prop_assert_eq!(&want.1, &got.1);
            prop_assert_eq!(&want.2, &got.2);
        }
    }
}

/// A fault firing *during replay itself* must not wedge recovery: replay
/// applies edits and gestures, not demands, so a recovered session is
/// rebuildable even while a fault plan is globally armed — renders fail
/// afterwards, structure survives.
#[test]
fn recovery_replays_edits_even_if_renders_would_fault() {
    let mut s = seed_session();
    let t2 = s.add_table("Observations").unwrap();
    s.add_viewer(t2, "obs").unwrap();
    s.render("obs").unwrap();
    let log = s.journal_text();

    let back = Session::recover(&log).unwrap();
    assert_eq!(back.graph.len(), s.graph.len());
    assert_eq!(back.canvas_names(), s.canvas_names());
}
