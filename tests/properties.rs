//! Cross-crate property-based tests (proptest) on the system's core
//! invariants — see DESIGN.md §5.

use proptest::prelude::*;
use tioga2::expr::{self, BinOp, Expr, ScalarType, UnaryOp, Value};
use tioga2::relational::ops;
use tioga2::relational::relation::RelationBuilder;
use tioga2::relational::Relation;

const KEYWORDS: &[&str] =
    &["and", "or", "not", "true", "false", "null", "if", "then", "else", "end"];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

/// Literals whose printed form lexes back to the same literal.
fn printable_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        // i64::MIN prints as a magnitude the lexer cannot re-admit.
        (i64::MIN + 1..i64::MAX).prop_map(Value::Int),
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(|x| Value::Float(if x == 0.0 { 0.0 } else { x })),
        ".*".prop_map(Value::Text),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf =
        prop_oneof![printable_literal().prop_map(Expr::Literal), ident().prop_map(Expr::Attr),];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (any::<bool>(), inner.clone()).prop_map(|(neg, e)| {
                // Unary minus over a numeric literal folds in the parser;
                // avoid the non-roundtripping corner by wrapping literals.
                let op = if neg { UnaryOp::Neg } else { UnaryOp::Not };
                match (&op, &e) {
                    (UnaryOp::Neg, Expr::Literal(Value::Int(_) | Value::Float(_))) => e,
                    _ => Expr::Unary(op, Box::new(e)),
                }
            }),
            (
                prop_oneof![
                    Just(BinOp::Or),
                    Just(BinOp::And),
                    Just(BinOp::Eq),
                    Just(BinOp::Ne),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Concat),
                    Just(BinOp::Combine),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            (ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(name, args)| Expr::call(name, args)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::If(
                Box::new(c),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

/// A small relation of integers/floats/texts for algebraic laws.
fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((any::<i64>(), -1e6f64..1e6, "[a-z]{0,4}"), 0..40).prop_map(|rows| {
        let mut b = RelationBuilder::new()
            .field("k", ScalarType::Int)
            .field("v", ScalarType::Float)
            .field("s", ScalarType::Text);
        for (k, v, s) in rows {
            b = b.row(vec![Value::Int(k), Value::Float(v), Value::Text(s)]);
        }
        b.build().unwrap()
    })
}

fn pred(src: &str) -> Expr {
    expr::parse(src).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The expression printer emits source that parses back to the same
    /// AST — the foundation of program persistence.
    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let parsed = expr::parse(&printed)
            .unwrap_or_else(|err| panic!("printed `{printed}` failed to parse: {err}"));
        prop_assert_eq!(parsed, e);
    }

    /// Restrict is commutative and composable: filtering by p then q
    /// equals filtering by q then p equals filtering by p AND q.
    #[test]
    fn restrict_commutes(rel in arb_relation(), c1 in -1000i64..1000, c2 in -1000i64..1000) {
        let p = pred(&format!("k > {c1}"));
        let q = pred(&format!("k % 7 <> {}", c2.rem_euclid(7)));
        let pq = ops::restrict(&ops::restrict(&rel, &p).unwrap(), &q).unwrap();
        let qp = ops::restrict(&ops::restrict(&rel, &q).unwrap(), &p).unwrap();
        let conj = ops::restrict(&rel, &pred(&format!("k > {c1} AND k % 7 <> {}", c2.rem_euclid(7)))).unwrap();
        prop_assert_eq!(pq.tuples(), qp.tuples());
        prop_assert_eq!(pq.tuples(), conj.tuples());
    }

    /// Sample at probability 1 is the identity; at 0 it is empty; and it
    /// is deterministic in the seed.
    #[test]
    fn sample_boundaries(rel in arb_relation(), seed in any::<u64>(), p in 0.0f64..=1.0) {
        let all = ops::sample(&rel, 1.0, seed).unwrap();
        prop_assert_eq!(all.tuples(), rel.tuples());
        prop_assert_eq!(ops::sample(&rel, 0.0, seed).unwrap().len(), 0);
        let a = ops::sample(&rel, p, seed).unwrap();
        let b = ops::sample(&rel, p, seed).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
        prop_assert!(a.len() <= rel.len());
    }

    /// Join with a TRUE predicate is the cross product; equijoin output
    /// is a subset of it.
    #[test]
    fn join_cardinalities(a in arb_relation(), b in arb_relation()) {
        let cross = ops::join(&a, &b, &pred("TRUE")).unwrap();
        prop_assert_eq!(cross.len(), a.len() * b.len());
        let eq = ops::join(&a, &b, &pred("k = k_2")).unwrap();
        prop_assert!(eq.len() <= cross.len());
        // The hash path agrees with the nested-loop path.
        let nl = ops::join(&a, &b, &pred("TRUE AND to_float(k) = to_float(k_2)")).unwrap();
        prop_assert_eq!(eq.len(), nl.len());
    }

    /// Sorting produces an ordered permutation.
    #[test]
    fn sort_is_ordered_permutation(rel in arb_relation()) {
        let sorted = ops::sort(&rel, &[("v", true)]).unwrap();
        prop_assert_eq!(sorted.len(), rel.len());
        let mut ids: Vec<u64> = sorted.tuples().iter().map(|t| t.row_id).collect();
        ids.sort_unstable();
        let mut orig: Vec<u64> = rel.tuples().iter().map(|t| t.row_id).collect();
        orig.sort_unstable();
        prop_assert_eq!(ids, orig);
        for w in sorted.tuples().windows(2) {
            let x = w[0].values()[1].as_f64().unwrap();
            let y = w[1].values()[1].as_f64().unwrap();
            prop_assert!(x <= y);
        }
    }

    /// Projection drops columns but never tuples, and keeps the relation
    /// displayable via re-defaulting.
    #[test]
    fn project_preserves_cardinality(rel in arb_relation()) {
        let p = ops::project(&rel, &["s", "k"]).unwrap();
        prop_assert_eq!(p.len(), rel.len());
        prop_assert_eq!(p.schema().len(), 2);
        let dr = tioga2::display::defaults::make_display_relation(p, "t").unwrap();
        dr.validate().unwrap();
    }

    /// Rendering any viewport over a random scatter never panics and
    /// never writes outside the buffer (implicit: Framebuffer bounds are
    /// enforced by construction).
    #[test]
    fn render_any_viewport_is_safe(
        rel in arb_relation(),
        cx in -1e9f64..1e9,
        cy in -1e9f64..1e9,
        elev in prop_oneof![1e-6f64..1e-3, 1e-3f64..1e3, 1e3f64..1e12],
    ) {
        use tioga2::display::{defaults, Composite};
        use tioga2::viewer::{compose_scene, CullOptions};
        let mut dr = defaults::make_display_relation(rel, "t").unwrap();
        dr.rel.set_method("x", ScalarType::Float, pred("v")).unwrap();
        dr.rel
            .set_method(
                "display",
                ScalarType::DrawList,
                pred("circle(1.0,'red') ++ rect(2.0,1.0,'blue') ++ line(3.0,3.0,'black') ++ text(s,'green')"),
            )
            .unwrap();
        let c = Composite::new(vec![dr]).unwrap();
        let vp = tioga2::render::Viewport::new((cx, cy), elev, 64, 64);
        let scene = compose_scene(&c, elev, &[], vp.world_bounds(), CullOptions::default()).unwrap();
        let mut fb = tioga2::render::Framebuffer::new(64, 64);
        let hits = tioga2::render::render_scene(&scene, &vp, &mut fb);
        prop_assert!(hits.len() <= scene.len());
    }

    /// Elevation culling never changes what is drawn when every layer is
    /// visible at the probe elevation (A2's correctness side).
    #[test]
    fn culling_is_invisible_when_nothing_culled(rel in arb_relation(), elev in 1.0f64..1e4) {
        use tioga2::display::{defaults, Composite};
        use tioga2::viewer::{compose_scene, CullOptions};
        let mut dr = defaults::make_display_relation(rel, "t").unwrap();
        dr.rel.set_method("x", ScalarType::Float, pred("v")).unwrap();
        let c = Composite::new(vec![dr]).unwrap();
        let vp = tioga2::render::Viewport::new((0.0, 0.0), elev, 48, 48);
        let on = compose_scene(&c, elev, &[], vp.world_bounds(), CullOptions { elevation: true, bounds: false }).unwrap();
        let off = compose_scene(&c, elev, &[], vp.world_bounds(), CullOptions { elevation: false, bounds: false }).unwrap();
        prop_assert_eq!(on, off);
    }

    /// Bounds culling changes which items enter the scene, but never the
    /// rendered pixels: culled items were invisible anyway.
    #[test]
    fn bounds_culling_preserves_pixels(rel in arb_relation(), cx in -100f64..100.0) {
        use tioga2::display::{defaults, Composite};
        use tioga2::viewer::{compose_scene, CullOptions};
        let mut dr = defaults::make_display_relation(rel, "t").unwrap();
        dr.rel.set_method("x", ScalarType::Float, pred("v / 1000.0")).unwrap();
        dr.rel
            .set_method("display", ScalarType::DrawList, pred("point('red') ++ nodraw()"))
            .unwrap();
        let c = Composite::new(vec![dr]).unwrap();
        let vp = tioga2::render::Viewport::new((cx, 0.0), 50.0, 64, 64);
        let culled = compose_scene(&c, 1.0, &[], vp.world_bounds(), CullOptions::default()).unwrap();
        let full = compose_scene(&c, 1.0, &[], vp.world_bounds(), CullOptions { elevation: true, bounds: false }).unwrap();
        let mut fb1 = tioga2::render::Framebuffer::new(64, 64);
        let mut fb2 = tioga2::render::Framebuffer::new(64, 64);
        tioga2::render::render_scene(&culled, &vp, &mut fb1);
        tioga2::render::render_scene(&full, &vp, &mut fb2);
        prop_assert_eq!(fb1.pixels(), fb2.pixels());
    }

    /// Relation persistence is lossless.
    #[test]
    fn relation_persistence_roundtrip(rel in arb_relation()) {
        let text = tioga2::relational::persist::save_relation(&rel).unwrap();
        let back = tioga2::relational::persist::load_relation(&text).unwrap();
        prop_assert_eq!(back.tuples(), rel.tuples());
        prop_assert_eq!(back.schema(), rel.schema());
    }
}

/// Random legal edit scripts keep the session invariant: no dangling
/// inputs, every canvas renders, undo restores the previous program.
#[test]
fn random_edit_scripts_preserve_visualizability() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tioga2::core::{Environment, Session};
    use tioga2::datagen::register_standard_catalog;
    use tioga2::relational::Catalog;

    for seed in 0..12u64 {
        let catalog = Catalog::new();
        register_standard_catalog(&catalog, 25, 3, seed);
        let mut s = Session::new(Environment::new(catalog));
        let mut rng = StdRng::seed_from_u64(seed);
        let t = s.add_table("Stations").unwrap();
        let mut frontier = t;
        let mut viewer_count = 0usize;

        for step in 0..30 {
            let before = s.graph.clone();
            let choice = rng.gen_range(0..8);
            let result = match choice {
                0 => s.restrict(frontier, "altitude > 10.0").map(|n| {
                    frontier = n;
                }),
                1 => s.sample(frontier, 0.8, rng.gen()).map(|n| {
                    frontier = n;
                }),
                2 => s.sort(frontier, &[("name", true)]).map(|n| {
                    frontier = n;
                }),
                3 => s.scale_attribute(frontier, "y", 2.0).map(|n| {
                    frontier = n;
                }),
                4 => {
                    viewer_count += 1;
                    s.add_viewer(frontier, &format!("c{viewer_count}")).map(|_| ())
                }
                5 => s.add_tee(frontier, 0).map(|_| ()).or(Ok::<(), tioga2::core::CoreError>(())),
                6 => s.set_range(frontier, 0.0, 1e6, Default::default()).map(|n| {
                    frontier = n;
                }),
                _ => {
                    // Undo/redo churn.
                    s.undo();
                    s.redo();
                    Ok(())
                }
            };
            let _ = result; // Edits may legitimately fail (e.g. tee with no edge).

            // Invariants after every step: every input port connected —
            // session-level edits never leave a box dangling.
            assert!(
                s.graph.dangling_inputs().is_empty(),
                "dangling inputs after step {step} (seed {seed})"
            );
            // Everything demanded renders.
            for c in s.canvas_names() {
                let frame = s.render(&c).unwrap_or_else(|e| panic!("canvas {c} failed: {e}"));
                let _ = frame;
            }
            // Undo exactly inverts the last successful edit.
            let after = s.graph.clone();
            if after != before && s.undo() {
                assert_eq!(
                    s.graph, before,
                    "undo must restore the pre-edit program (seed {seed}, step {step})"
                );
                assert!(s.redo());
                assert_eq!(s.graph, after);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregation laws: grouped counts sum to the relation size, and the
    /// grouped sums add up to the global sum.
    #[test]
    fn aggregate_partition_laws(rel in arb_relation()) {
        use tioga2::relational::{aggregate, AggFunc, AggSpec};
        let grouped = aggregate(
            &rel,
            &["s"],
            &[AggSpec::count("n"), AggSpec::of(AggFunc::Sum, "v", "total")],
        )
        .unwrap();
        let n: i64 = grouped
            .tuples()
            .iter()
            .map(|t| match t.values()[1] {
                Value::Int(i) => i,
                _ => 0,
            })
            .sum();
        prop_assert_eq!(n as usize, rel.len());
        let group_sum: f64 = grouped
            .tuples()
            .iter()
            .filter_map(|t| t.values()[2].as_f64())
            .sum();
        let global = aggregate(&rel, &[], &[AggSpec::of(AggFunc::Sum, "v", "total")]).unwrap();
        let global_sum = global.tuples()[0].values()[0].as_f64().unwrap_or(0.0);
        prop_assert!((group_sum - global_sum).abs() <= 1e-6 * global_sum.abs().max(1.0));
        // Distinct group keys == number of groups.
        let d = tioga2::relational::distinct(&rel, &["s"]).unwrap();
        prop_assert_eq!(d.len(), grouped.len());
    }

    /// Replicate with complementary predicates is an exhaustive,
    /// disjoint partition of the tuples.
    #[test]
    fn replicate_partitions_exhaustively(rel in arb_relation(), cut in -1000i64..1000) {
        use tioga2::display::compose::{replicate, PartitionSpec};
        use tioga2::display::defaults::make_display_relation;
        let dr = make_display_relation(rel.clone(), "t").unwrap();
        let g = replicate(
            &dr,
            PartitionSpec::Predicates(vec![
                ("lo".into(), pred(&format!("k <= {cut}"))),
                ("hi".into(), pred(&format!("k > {cut}"))),
            ]),
            None,
        )
        .unwrap();
        let total: usize = g.members.iter().map(|m| m.layers[0].rel.len()).sum();
        prop_assert_eq!(total, rel.len());
        // Disjoint: no row id appears in both partitions.
        let lo: std::collections::HashSet<u64> =
            g.members[0].layers[0].rel.tuples().iter().map(|t| t.row_id).collect();
        for t in g.members[1].layers[0].rel.tuples() {
            prop_assert!(!lo.contains(&t.row_id));
        }
    }

    /// The spatial index answers arbitrary window queries identically to
    /// a brute-force scan.
    #[test]
    fn spatial_index_matches_scan(
        rel in arb_relation(),
        x0 in -2e6f64..2e6,
        y0 in -2e6f64..2e6,
        w in 0.0f64..4e6,
        h in 0.0f64..4e6,
    ) {
        use tioga2::display::defaults::make_display_relation;
        use tioga2::viewer::SpatialIndex;
        let mut dr = make_display_relation(rel, "t").unwrap();
        dr.rel.set_method("x", ScalarType::Float, pred("v")).unwrap();
        dr.rel
            .set_method("y", ScalarType::Float, pred("to_float(k % 1000)"))
            .unwrap();
        let index = SpatialIndex::build(&dr).unwrap();
        let got = index.query(x0, y0, x0 + w, y0 + h);
        let mut want = Vec::new();
        for seq in 0..dr.rel.len() {
            let pos = dr.tuple_position(seq).unwrap();
            if !pos[0].is_nan()
                && pos[0] >= x0
                && pos[0] <= x0 + w
                && pos[1] >= y0
                && pos[1] <= y0 + h
            {
                want.push(seq);
            }
        }
        prop_assert_eq!(got, want);
    }
}
