//! Property test: planned, streamed, *rewritten* execution of a random
//! relational box chain is indistinguishable from the naive
//! box-at-a-time demand — schema, methods, display metadata, tuple
//! contents, tuple order and row ids all equal.  See DESIGN.md "Plan
//! layer".

use proptest::prelude::*;
use tioga2::dataflow::boxes::{BoxKind, RelOpKind};
use tioga2::dataflow::{Engine, Graph};
use tioga2::display::{DisplayRelation, Displayable};
use tioga2::expr::{parse, ScalarType, Value};
use tioga2::relational::relation::RelationBuilder;
use tioga2::relational::{Catalog, FaultPlan, Relation};

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((any::<i64>(), -1e6f64..1e6, "[a-z]{0,4}"), 0..40).prop_map(|rows| {
        let mut b = RelationBuilder::new()
            .field("k", ScalarType::Int)
            .field("v", ScalarType::Float)
            .field("s", ScalarType::Text);
        for (k, v, s) in rows {
            b = b.row(vec![Value::Int(k), Value::Float(v), Value::Text(s)]);
        }
        b.build().unwrap()
    })
}

/// One op per seed triple, decoded against the columns still present at
/// that point in the chain so every generated program is total (no
/// dangling attribute references, no name collisions).
fn decode_ops(seeds: &[(u8, u64, u64)]) -> Vec<RelOpKind> {
    let mut cols: Vec<(String, ScalarType)> = vec![
        ("k".into(), ScalarType::Int),
        ("v".into(), ScalarType::Float),
        ("s".into(), ScalarType::Text),
    ];
    let mut kinds = Vec::new();
    for (i, &(tag, a, b)) in seeds.iter().enumerate() {
        let pick = |x: u64| cols[(x as usize) % cols.len()].clone();
        match tag % 7 {
            0 => {
                let (c, t) = pick(a);
                let p = match t {
                    ScalarType::Int => format!("{c} > {}", (a % 100) as i64 - 50),
                    ScalarType::Float => {
                        format!("{c} <= {:.1}", (b % 2000) as f64 / 10.0 - 100.0)
                    }
                    _ => format!("{c} <> 'q'"),
                };
                kinds.push(RelOpKind::Restrict(parse(&p).unwrap()));
            }
            1 => {
                let mut keep: Vec<(String, ScalarType)> = cols
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| (a >> j) & 1 == 1)
                    .map(|(_, c)| c.clone())
                    .collect();
                if keep.is_empty() {
                    keep = cols.clone();
                }
                kinds.push(RelOpKind::Project(keep.iter().map(|c| c.0.clone()).collect()));
                cols = keep;
            }
            2 => kinds.push(RelOpKind::Sample { p: (a % 101) as f64 / 100.0, seed: b }),
            3 => {
                let mut keys = vec![(pick(a).0, a & 1 == 0)];
                if b & 1 == 1 {
                    let k2 = pick(b).0;
                    if k2 != keys[0].0 {
                        keys.push((k2, b & 2 == 0));
                    }
                }
                kinds.push(RelOpKind::Sort(keys));
            }
            4 => {
                let cs = if a % 2 == 0 { Vec::new() } else { vec![pick(b).0] };
                kinds.push(RelOpKind::Distinct(cs));
            }
            5 => {
                kinds.push(RelOpKind::Limit { offset: (a % 10) as usize, count: (b % 20) as usize })
            }
            6 => {
                let (from, t) = pick(a);
                let to = format!("r{i}");
                let idx = cols.iter().position(|c| c.0 == from).unwrap();
                cols[idx] = (to.clone(), t);
                kinds.push(RelOpKind::Rename { from, to });
            }
            _ => unreachable!(),
        }
    }
    kinds
}

fn dr_of(d: Displayable) -> DisplayRelation {
    match d {
        Displayable::R(dr) => dr,
        other => panic!("expected R, got {}", other.type_tag()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// demand == demand_planned (rewrites off) == demand_planned
    /// (rewrites on), for any total chain of the seven plannable ops.
    #[test]
    fn planned_equals_naive(
        rel in arb_relation(),
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..6),
    ) {
        let kinds = decode_ops(&seeds);
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("T".into()));
        let mut prev = t;
        for kind in kinds {
            let n = g.add(BoxKind::rel(kind));
            g.connect(prev, 0, n, 0).unwrap();
            prev = n;
        }
        let mk = || {
            let c = Catalog::new();
            c.register("T", rel.clone());
            Engine::new(c)
        };
        let naive =
            dr_of(mk().demand(&g, prev, 0).unwrap().into_displayable().unwrap());
        // Planned execution must match at every worker count, with and
        // without rewrites: partitioned execution merges back into the
        // exact serial tuple order, and __seq-dependent chains fall back
        // to serial of their own accord.
        for threads in [1usize, 2, 8] {
            let mut raw_engine = mk();
            raw_engine.set_threads(threads);
            let raw = dr_of(
                raw_engine.demand_planned_opts(&g, prev, 0, false, None)
                    .unwrap().into_displayable().unwrap(),
            );
            let mut opt_engine = mk();
            opt_engine.set_threads(threads);
            let opt = dr_of(
                opt_engine.demand_planned_opts(&g, prev, 0, true, None)
                    .unwrap().into_displayable().unwrap(),
            );
            prop_assert_eq!(&naive, &raw);
            prop_assert_eq!(&naive, &opt);
        }
    }

    /// Fault equivalence (DESIGN.md §10): a fault injected mid-scan
    /// surfaces as the *same* structured error from the serial stream
    /// and from the partitioned pipeline at any worker count — scan
    /// fault coordinates are global scan positions, and the pipeline
    /// reports the earliest-partition error first.
    #[test]
    fn injected_fault_is_thread_count_invariant(
        rel in arb_relation(),
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..6),
        coord_seed in any::<u64>(),
    ) {
        // Limit legitimately early-exits the serial scan but not the
        // parallel one, so its reached-coordinate set differs: remap it
        // (t%7==5 implies t>=5) onto Restrict.
        let seeds: Vec<_> = seeds
            .into_iter()
            .map(|(t, a, b)| if t % 7 == 5 { (t - 5, a, b) } else { (t, a, b) })
            .collect();
        let kinds = decode_ops(&seeds);
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("T".into()));
        let mut prev = t;
        for kind in kinds {
            let n = g.add(BoxKind::rel(kind));
            g.connect(prev, 0, n, 0).unwrap();
            prev = n;
        }
        let coord = coord_seed % (rel.len() as u64).max(1);
        let spec = format!("scan:{coord}=err");
        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 8] {
            let c = Catalog::new();
            c.register("T", rel.clone());
            let mut e = Engine::new(c);
            e.set_threads(threads);
            e.set_fault_plan(Some(FaultPlan::parse(&spec).unwrap()));
            outcomes.push(match e.demand_planned(&g, prev, 0) {
                Ok(_) => "ok".to_string(),
                Err(err) => format!("{err}"),
            });
        }
        if !rel.is_empty() && !seeds.is_empty() {
            // Every planned chain scans its whole input (no Limit), so a
            // coordinate inside the table always fires.  (An empty chain
            // is a bare Table box: no plan, no scan site.)
            prop_assert!(outcomes[0].contains("injected fault"), "{}", &outcomes[0]);
        }
        prop_assert_eq!(&outcomes[0], &outcomes[1]);
        prop_assert_eq!(&outcomes[0], &outcomes[2]);
    }
}

mod parallel_observability {
    use super::*;
    use std::sync::Arc;
    use tioga2::obs::{InMemoryRecorder, Recorder};

    fn rows() -> Relation {
        let mut b =
            RelationBuilder::new().field("k", ScalarType::Int).field("v", ScalarType::Float);
        for i in 0..64 {
            b = b.row(vec![Value::Int(i), Value::Float(i as f64 * 0.5)]);
        }
        b.build().unwrap()
    }

    fn demand_with_recorder(pred: &str, threads: usize) -> Arc<InMemoryRecorder> {
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("T".into()));
        let r = g.add(BoxKind::rel(RelOpKind::Restrict(parse(pred).unwrap())));
        g.connect(t, 0, r, 0).unwrap();
        let c = Catalog::new();
        c.register("T", rows());
        let mut e = Engine::new(c);
        e.set_threads(threads);
        let rec = Arc::new(InMemoryRecorder::new());
        e.set_recorder(rec.clone());
        e.demand_planned(&g, r, 0).unwrap();
        rec
    }

    /// A restrict over stored fields parallelizes and says so.
    #[test]
    fn seq_free_restrict_reports_parallel_segments() {
        let rec = demand_with_recorder("v > 3.0", 4);
        assert_eq!(rec.counter("plan.parallel.segments"), Some(1));
        assert_eq!(rec.counter("plan.parallel.rows"), Some(64));
    }

    /// `y` is the default layout method `-__seq * 12`: filtering on it is
    /// position-dependent, so the plan must stay serial.
    #[test]
    fn seq_dependent_restrict_stays_serial() {
        let rec = demand_with_recorder("y < 0.0 - 24.0", 4);
        assert_eq!(rec.counter("plan.parallel.segments"), None);
    }

    /// One worker means no partitioned segment is ever built.
    #[test]
    fn single_thread_reports_no_parallel_segments() {
        let rec = demand_with_recorder("v > 3.0", 1);
        assert_eq!(rec.counter("plan.parallel.segments"), None);
    }
}
