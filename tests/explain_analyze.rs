//! Property test: `:explain analyze` attribution invariants.
//!
//! Per-operator *row* counts in a demand trace are exact, so they must
//! be byte-identical whether the plan ran serially or partition-parallel
//! (TIOGA2_THREADS=1 vs 4), and every parent's rows_in must equal the
//! sum of its children's rows_out.  Chains exclude Limit: its serial
//! early-exit legitimately pulls fewer upstream tuples than the
//! materializing parallel path, so upstream counts are execution-
//! strategy-dependent by design (DESIGN.md §9).

use proptest::prelude::*;
use tioga2::dataflow::boxes::{BoxKind, RelOpKind};
use tioga2::dataflow::{Engine, Graph};
use tioga2::expr::{parse, ScalarType, Value};
use tioga2::obs::OpNode;
use tioga2::relational::relation::RelationBuilder;
use tioga2::relational::{Catalog, Relation};

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((any::<i64>(), -1e6f64..1e6, "[a-z]{0,4}"), 0..40).prop_map(|rows| {
        let mut b = RelationBuilder::new()
            .field("k", ScalarType::Int)
            .field("v", ScalarType::Float)
            .field("s", ScalarType::Text);
        for (k, v, s) in rows {
            b = b.row(vec![Value::Int(k), Value::Float(v), Value::Text(s)]);
        }
        b.build().unwrap()
    })
}

/// Like plan_equivalence's decoder, minus Limit (see module doc).
fn decode_ops(seeds: &[(u8, u64, u64)]) -> Vec<RelOpKind> {
    let mut cols: Vec<(String, ScalarType)> = vec![
        ("k".into(), ScalarType::Int),
        ("v".into(), ScalarType::Float),
        ("s".into(), ScalarType::Text),
    ];
    let mut kinds = Vec::new();
    for (i, &(tag, a, b)) in seeds.iter().enumerate() {
        let pick = |x: u64| cols[(x as usize) % cols.len()].clone();
        match tag % 6 {
            0 => {
                let (c, t) = pick(a);
                let p = match t {
                    ScalarType::Int => format!("{c} > {}", (a % 100) as i64 - 50),
                    ScalarType::Float => {
                        format!("{c} <= {:.1}", (b % 2000) as f64 / 10.0 - 100.0)
                    }
                    _ => format!("{c} <> 'q'"),
                };
                kinds.push(RelOpKind::Restrict(parse(&p).unwrap()));
            }
            1 => {
                let mut keep: Vec<(String, ScalarType)> = cols
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| (a >> j) & 1 == 1)
                    .map(|(_, c)| c.clone())
                    .collect();
                if keep.is_empty() {
                    keep = cols.clone();
                }
                kinds.push(RelOpKind::Project(keep.iter().map(|c| c.0.clone()).collect()));
                cols = keep;
            }
            2 => kinds.push(RelOpKind::Sample { p: (a % 101) as f64 / 100.0, seed: b }),
            3 => {
                let mut keys = vec![(pick(a).0, a & 1 == 0)];
                if b & 1 == 1 {
                    let k2 = pick(b).0;
                    if k2 != keys[0].0 {
                        keys.push((k2, b & 2 == 0));
                    }
                }
                kinds.push(RelOpKind::Sort(keys));
            }
            4 => {
                let cs = if a % 2 == 0 { Vec::new() } else { vec![pick(b).0] };
                kinds.push(RelOpKind::Distinct(cs));
            }
            5 => {
                let (from, t) = pick(a);
                let to = format!("r{i}");
                let idx = cols.iter().position(|c| c.0 == from).unwrap();
                cols[idx] = (to.clone(), t);
                kinds.push(RelOpKind::Rename { from, to });
            }
            _ => unreachable!(),
        }
    }
    kinds
}

/// Preorder (label, rows_in, rows_out) — the thread-invariant part of a
/// trace (times and worker counts are execution details).
fn rows_shape(n: &OpNode, out: &mut Vec<(String, u64, u64)>) {
    out.push((n.op.clone(), n.rows_in, n.rows_out));
    for c in &n.children {
        rows_shape(c, out);
    }
}

/// Parent/child accounting: rows_in of every non-source node equals the
/// sum of its children's rows_out.
fn check_sums(n: &OpNode) {
    if !n.children.is_empty() {
        let sum: u64 = n.children.iter().map(|c| c.rows_out).sum();
        prop_assert!(n.rows_in == sum, "rows_in of '{}' != children rows_out", n.op);
    } else {
        prop_assert!(n.rows_in == n.rows_out, "source '{}' scans what it emits", n.op);
    }
    for c in &n.children {
        check_sums(c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Attribution invariants for any Limit-free chain of plannable ops.
    #[test]
    fn analyzed_rows_identical_across_thread_counts(
        rel in arb_relation(),
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..6),
    ) {
        let kinds = decode_ops(&seeds);
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("T".into()));
        let mut prev = t;
        for kind in kinds {
            let n = g.add(BoxKind::rel(kind));
            g.connect(prev, 0, n, 0).unwrap();
            prev = n;
        }

        let mut shapes = Vec::new();
        for threads in [1usize, 4] {
            let c = Catalog::new();
            c.register("T", rel.clone());
            let mut engine = Engine::new(c);
            engine.set_threads(threads);
            let (_, trace) = engine.demand_analyzed(&g, prev, 0, true, None).unwrap();
            let trace = trace.expect("a chain of >= 1 op always yields a trace");
            prop_assert_eq!(trace.threads, threads);
            check_sums(&trace.root);
            let mut shape = Vec::new();
            rows_shape(&trace.root, &mut shape);
            shapes.push(shape);
        }
        // Per-node labels and exact row counts are byte-identical at any
        // worker count.
        prop_assert_eq!(&shapes[0], &shapes[1]);
    }
}
