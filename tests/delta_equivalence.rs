//! Property test: delta-maintained caches are indistinguishable from
//! recompute-from-scratch.
//!
//! Random Restrict / Project / Sample / Sort / Distinct / Limit /
//! Rename chains (including `__seq`-dependent predicates and window
//! wraps) are demanded to warm the caches, then random edit sequences
//! are committed as tuple deltas via [`Engine::apply_delta`].  After
//! every edit, the warm engine's re-demand must be byte-identical —
//! schema, methods, display metadata, tuple contents, order and row
//! ids — to a cold engine evaluating the same graph over the same
//! catalog from scratch.  Operators with a delta rule are patched in
//! place; everything else must *fall back* to selective eviction and
//! still converge to the same answer.  A third property injects
//! chaos-harness faults (error and panic actions) mid-delta and checks
//! no poisoned cache survives.

use proptest::prelude::*;
use tioga2::dataflow::boxes::{BoxKind, RelOpKind};
use tioga2::dataflow::{Engine, Graph, NodeId};
use tioga2::display::{DisplayRelation, Displayable};
use tioga2::expr::{parse, ScalarType, Value};
use tioga2::relational::relation::RelationBuilder;
use tioga2::relational::update::{install_update_delta, FieldChange};
use tioga2::relational::{AggFunc, AggSpec, Catalog, FaultPlan, Relation};

fn arb_relation() -> impl Strategy<Value = Relation> {
    proptest::collection::vec((any::<i64>(), -1e6f64..1e6, "[a-z]{0,4}"), 1..40).prop_map(|rows| {
        let mut b = RelationBuilder::new()
            .field("k", ScalarType::Int)
            .field("v", ScalarType::Float)
            .field("s", ScalarType::Text);
        for (k, v, s) in rows {
            b = b.row(vec![Value::Int(k), Value::Float(v), Value::Text(s)]);
        }
        b.build().unwrap()
    })
}

/// One op per seed triple, decoded against the columns still present at
/// that point in the chain so every generated program is total.  Tag 7
/// restricts on the default layout method `y = -__seq * 12`, forcing
/// the position-dependent fallback path.
fn decode_ops(seeds: &[(u8, u64, u64)]) -> Vec<RelOpKind> {
    let mut cols: Vec<(String, ScalarType)> = vec![
        ("k".into(), ScalarType::Int),
        ("v".into(), ScalarType::Float),
        ("s".into(), ScalarType::Text),
    ];
    let mut kinds = Vec::new();
    for (i, &(tag, a, b)) in seeds.iter().enumerate() {
        let pick = |x: u64| cols[(x as usize) % cols.len()].clone();
        match tag % 8 {
            0 => {
                let (c, t) = pick(a);
                let p = match t {
                    ScalarType::Int => format!("{c} > {}", (a % 100) as i64 - 50),
                    ScalarType::Float => {
                        format!("{c} <= {:.1}", (b % 2000) as f64 / 10.0 - 100.0)
                    }
                    _ => format!("{c} <> 'q'"),
                };
                kinds.push(RelOpKind::Restrict(parse(&p).unwrap()));
            }
            1 => {
                let mut keep: Vec<(String, ScalarType)> = cols
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| (a >> j) & 1 == 1)
                    .map(|(_, c)| c.clone())
                    .collect();
                if keep.is_empty() {
                    keep = cols.clone();
                }
                kinds.push(RelOpKind::Project(keep.iter().map(|c| c.0.clone()).collect()));
                cols = keep;
            }
            2 => kinds.push(RelOpKind::Sample { p: (a % 101) as f64 / 100.0, seed: b }),
            3 => {
                let mut keys = vec![(pick(a).0, a & 1 == 0)];
                if b & 1 == 1 {
                    let k2 = pick(b).0;
                    if k2 != keys[0].0 {
                        keys.push((k2, b & 2 == 0));
                    }
                }
                kinds.push(RelOpKind::Sort(keys));
            }
            4 => {
                let cs = if a % 2 == 0 { Vec::new() } else { vec![pick(b).0] };
                kinds.push(RelOpKind::Distinct(cs));
            }
            5 => {
                kinds.push(RelOpKind::Limit { offset: (a % 10) as usize, count: (b % 20) as usize })
            }
            6 => {
                let (from, t) = pick(a);
                let to = format!("r{i}");
                let idx = cols.iter().position(|c| c.0 == from).unwrap();
                cols[idx] = (to.clone(), t);
                kinds.push(RelOpKind::Rename { from, to });
            }
            7 => {
                let bound = -((a % 6) as f64) * 12.0;
                kinds.push(RelOpKind::Restrict(parse(&format!("y >= {bound:.1}")).unwrap()));
            }
            _ => unreachable!(),
        }
    }
    kinds
}

fn dr_of(d: Displayable) -> DisplayRelation {
    match d {
        Displayable::R(dr) => dr,
        other => panic!("expected R, got {}", other.type_tag()),
    }
}

fn build_chain(kinds: Vec<RelOpKind>) -> (Graph, NodeId) {
    let mut g = Graph::new();
    let t = g.add(BoxKind::Table("T".into()));
    let mut prev = t;
    for kind in kinds {
        let n = g.add(BoxKind::rel(kind));
        g.connect(prev, 0, n, 0).unwrap();
        prev = n;
    }
    (g, prev)
}

/// One edit against the base table: pick a live row, a stored field,
/// and a type-conforming new value.
fn apply_edit(catalog: &Catalog, edit: &(u64, u64, i64, String)) -> tioga2::relational::Delta {
    let (row_seed, field_seed, ival, sval) = edit;
    let snap = catalog.snapshot("T").unwrap();
    let row_id = snap.tuples()[(*row_seed as usize) % snap.len()].row_id;
    let (field, value) = match field_seed % 3 {
        0 => ("k", Value::Int(*ival)),
        1 => ("v", Value::Float((*ival % 2_000_000) as f64 / 1000.0)),
        _ => ("s", Value::Text(sval.clone())),
    };
    install_update_delta(catalog, "T", row_id, &[FieldChange { field: field.into(), value }])
        .unwrap()
}

fn edits_strategy() -> impl Strategy<Value = Vec<(u64, u64, i64, String)>> {
    proptest::collection::vec((any::<u64>(), any::<u64>(), any::<i64>(), "[a-z]{0,3}"), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm caches + apply_delta == cold recompute, for any chain, any
    /// edit sequence, any worker count, with and without a window wrap.
    #[test]
    fn delta_maintained_equals_recompute(
        rel in arb_relation(),
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..6),
        edits in edits_strategy(),
        window_pick in 0u8..3,
    ) {
        let (g, root) = build_chain(decode_ops(&seeds));
        let window = match window_pick {
            0 => None,
            // Content-dependent window: patchable when the chain is.
            1 => Some(parse("x >= 0.0").unwrap()),
            // `y` defaults to -__seq * 12: position-dependent fallback.
            _ => Some(parse("y >= 0.0 - 120.0").unwrap()),
        };
        for threads in [1usize, 2, 8] {
            let catalog = Catalog::new();
            catalog.register("T", rel.clone());
            let mut warm = Engine::new(catalog.clone());
            warm.set_threads(threads);
            warm.demand_planned_opts(&g, root, 0, true, window.as_ref()).unwrap();
            for edit in &edits {
                let delta = apply_edit(&catalog, edit);
                warm.apply_delta(&g, &delta);
                let got = dr_of(
                    warm.demand_planned_opts(&g, root, 0, true, window.as_ref())
                        .unwrap().into_displayable().unwrap(),
                );
                let mut cold = Engine::new(catalog.clone());
                cold.set_threads(threads);
                let want = dr_of(
                    cold.demand_planned_opts(&g, root, 0, true, window.as_ref())
                        .unwrap().into_displayable().unwrap(),
                );
                prop_assert!(
                    got == want,
                    "threads={} window={}: {:?} != {:?}",
                    threads,
                    window_pick,
                    got,
                    want
                );
            }
        }
    }

    /// Aggregates over the edited table: mergeable cells are patched,
    /// everything else (avg, ties, float sums, key changes) falls back —
    /// either way the memo answer equals a cold recompute.
    #[test]
    fn aggregate_delta_equals_recompute(
        rel in arb_relation(),
        edits in edits_strategy(),
        spec_seed in any::<u64>(),
    ) {
        let aggs = vec![
            AggSpec::count("n"),
            AggSpec::of(AggFunc::Sum, "k", "sk"),
            AggSpec::of(AggFunc::Min, "v", "lo"),
            AggSpec::of(AggFunc::Max, "v", "hi"),
            AggSpec::of(AggFunc::Avg, "k", "ak"),
        ];
        let keys = if spec_seed % 2 == 0 { vec!["s".to_string()] } else { vec![] };
        let mut g = Graph::new();
        let t = g.add(BoxKind::Table("T".into()));
        let a = g.add(BoxKind::rel(RelOpKind::Aggregate { keys, aggs }));
        g.connect(t, 0, a, 0).unwrap();
        let catalog = Catalog::new();
        catalog.register("T", rel.clone());
        let mut warm = Engine::new(catalog.clone());
        warm.demand_planned(&g, a, 0).unwrap();
        for edit in &edits {
            let delta = apply_edit(&catalog, edit);
            warm.apply_delta(&g, &delta);
            let got = dr_of(warm.demand_planned(&g, a, 0).unwrap().into_displayable().unwrap());
            let mut cold = Engine::new(catalog.clone());
            let want = dr_of(cold.demand_planned(&g, a, 0).unwrap().into_displayable().unwrap());
            prop_assert_eq!(&got, &want);
        }
    }

    /// Chaos: a fault (error *or* panic action) injected at any `delta`
    /// patch site degrades that entry to eviction — never a poisoned
    /// cache, never `invalidate_all`.  The re-demand still equals a cold
    /// recompute, and unrelated-table entries survive the faulty delta.
    #[test]
    fn fault_mid_delta_leaves_no_poisoned_cache(
        rel in arb_relation(),
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..5),
        edit in (any::<u64>(), any::<u64>(), any::<i64>(), "[a-z]{0,3}"),
        coord in 0u64..4,
        panic_action in any::<bool>(),
    ) {
        let (mut g, root) = build_chain(decode_ops(&seeds));
        // A second, unrelated table feeding its own chain.
        let u = g.add(BoxKind::Table("U".into()));
        let ur = g.add(BoxKind::rel(RelOpKind::Restrict(parse("k > -1000000").unwrap())));
        g.connect(u, 0, ur, 0).unwrap();
        let catalog = Catalog::new();
        catalog.register("T", rel.clone());
        catalog.register("U", rel.clone());
        let mut warm = Engine::new(catalog.clone());
        warm.demand_planned(&g, root, 0).unwrap();
        let unrelated_before =
            dr_of(warm.demand_planned(&g, ur, 0).unwrap().into_displayable().unwrap());
        let action = if panic_action { "panic" } else { "err" };
        warm.set_fault_plan(Some(FaultPlan::parse(&format!("delta:{coord}={action}")).unwrap()));
        let delta = apply_edit(&catalog, &edit);
        warm.apply_delta(&g, &delta);
        warm.set_fault_plan(None);
        let got = dr_of(warm.demand_planned(&g, root, 0).unwrap().into_displayable().unwrap());
        let mut cold = Engine::new(catalog.clone());
        let want = dr_of(cold.demand_planned(&g, root, 0).unwrap().into_displayable().unwrap());
        prop_assert_eq!(&got, &want);
        // The unrelated table's cone was never touched by the delta walk.
        let unrelated_after =
            dr_of(warm.demand_planned(&g, ur, 0).unwrap().into_displayable().unwrap());
        prop_assert_eq!(&unrelated_before, &unrelated_after);
    }
}
