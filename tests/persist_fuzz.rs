//! Corrupt-one-byte fuzz over the persistence formats: flipping any
//! single byte of a saved program (or saved relation) must yield either
//! a clean reload or a structured error — never a panic, never a
//! mangled silent success that changes the graph shape class.

use proptest::prelude::*;
use tioga2::dataflow::boxes::RelOpKind;
use tioga2::dataflow::{persist, BoxKind, BoxRegistry, Graph};
use tioga2::expr::{parse, ScalarType, Value};
use tioga2::relational::persist as rel_persist;
use tioga2::relational::relation::RelationBuilder;

/// A representative program: table, predicates with strings and floats,
/// a multi-output switch, a viewer — every value shape the S-expr
/// format serializes.
fn sample_program() -> String {
    let mut g = Graph::new();
    let t = g.add(BoxKind::Table("Stations".into()));
    let r =
        g.add(BoxKind::rel(RelOpKind::Restrict(parse("state = 'LA' AND altitude > 1.5").unwrap())));
    let p = g.add(BoxKind::rel(RelOpKind::Project(vec!["name".into(), "state".into()])));
    let sw = g.add(BoxKind::Switch(parse("altitude > 10.0").unwrap()));
    let v = g.add(BoxKind::Viewer { canvas: "main".into(), ty: tioga2::dataflow::PortType::R });
    g.connect(t, 0, r, 0).unwrap();
    g.connect(r, 0, p, 0).unwrap();
    g.connect(p, 0, sw, 0).unwrap();
    g.connect(sw, 0, v, 0).unwrap();
    persist::save_program(&g)
}

fn sample_relation() -> String {
    let mut rel = RelationBuilder::new()
        .field("name", ScalarType::Text)
        .field("qty", ScalarType::Int)
        .field("w", ScalarType::Float)
        .row(vec![Value::Text("tab\there \\ done".into()), Value::Int(-3), Value::Float(0.25)])
        .row(vec![Value::Null, Value::Int(7), Value::Float(-1.5e10)])
        .build()
        .unwrap();
    rel.add_method("x2", ScalarType::Float, parse("w * 2.0").unwrap()).unwrap();
    rel_persist::save_relation(&rel).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Flip one byte anywhere in a saved program; loading must not
    /// panic, and must either error structurally or parse cleanly.
    #[test]
    fn corrupt_one_byte_program_never_panics(pos in 0usize..4096, byte in any::<u8>()) {
        let text = sample_program();
        let mut bytes = text.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let corrupted = String::from_utf8_lossy(&bytes).to_string();
        let reg = BoxRegistry::with_primitives();
        // Either outcome is fine; a panic here fails the test by itself.
        let _ = persist::load_program(&corrupted, &reg);
    }

    /// Same property over the relation format (catalog snapshots, the
    /// journal's snapshot payloads).
    #[test]
    fn corrupt_one_byte_relation_never_panics(pos in 0usize..4096, byte in any::<u8>()) {
        let text = sample_relation();
        let mut bytes = text.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let corrupted = String::from_utf8_lossy(&bytes).to_string();
        let _ = rel_persist::load_relation(&corrupted);
    }

    /// Deleting one byte (truncation mid-token) is also survivable.
    #[test]
    fn delete_one_byte_program_never_panics(pos in 0usize..4096) {
        let text = sample_program();
        let mut bytes = text.clone().into_bytes();
        let pos = pos % bytes.len();
        bytes.remove(pos);
        let corrupted = String::from_utf8_lossy(&bytes).to_string();
        let reg = BoxRegistry::with_primitives();
        let _ = persist::load_program(&corrupted, &reg);
    }
}

/// An uncorrupted control: the fuzz inputs really are loadable programs,
/// so the properties above are exercising the parser, not the magic
/// check alone.
#[test]
fn uncorrupted_samples_load() {
    let reg = BoxRegistry::with_primitives();
    assert!(persist::load_program(&sample_program(), &reg).is_ok());
    assert!(rel_persist::load_relation(&sample_relation()).is_ok());
}
