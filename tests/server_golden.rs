//! The golden equivalence test behind the PR's refactor: one gesture
//! script driven through the single-user REPL and through a tiogad
//! client must produce byte-identical replies and byte-identical
//! rendered framebuffers — the server hosts *the same* sessions, not a
//! reimplementation.

use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::relational::Catalog;
use tioga2::repl::{self, ReplOutcome};
use tioga2_server::{Client, ServerConfig, ServerHandle};

fn catalog() -> Catalog {
    let c = Catalog::new();
    register_standard_catalog(&c, 150, 10, 20260706);
    c
}

/// The shared gesture script: build the Louisiana view, then navigate.
/// `{out}` is the per-path render file stem.
const SCRIPT: &[&str] = &[
    "table Stations",
    "restrict 0 state = 'LA'",
    "setattr 1 x float longitude",
    "setattr 2 y float latitude",
    "viewer 3 gold",
    "zoom gold 2.0",
    "pan gold 3 -2",
    "show 3 8",
    "program",
    "render gold {out}",
];

fn run_repl(out: &str) -> Vec<String> {
    let mut s = Session::new(Environment::new(catalog()));
    SCRIPT
        .iter()
        .map(|line| {
            let line = line.replace("{out}", out);
            match repl::run_line(&mut s, &line).unwrap() {
                ReplOutcome::Message(m) => m,
                ReplOutcome::Quit => unreachable!(),
            }
        })
        .collect()
}

fn run_server(out: &str) -> Vec<String> {
    let mut h = ServerHandle::start(catalog(), ServerConfig::default(), "127.0.0.1:0").unwrap();
    let mut c = Client::connect(h.addr()).unwrap();
    c.attach(Some("golden"), None).unwrap().unwrap();
    let replies = SCRIPT
        .iter()
        .map(|line| {
            let line = line.replace("{out}", out);
            c.run(&line).unwrap().unwrap()
        })
        .collect();
    h.stop();
    replies
}

#[test]
fn same_script_same_pixels_through_repl_and_tiogad() {
    let repl_replies = run_repl("golden_repl");
    let srv_replies = run_server("golden_srv");

    // Every reply is byte-identical except the render line, which names
    // its output file; strip the path and compare the rest of it too.
    assert_eq!(repl_replies.len(), srv_replies.len());
    for (i, (r, s)) in repl_replies.iter().zip(&srv_replies).enumerate() {
        if SCRIPT[i].starts_with("render") {
            let tail = |m: &str| m.split_once(": ").map(|(_, t)| t.to_string());
            assert_eq!(tail(r), tail(s), "render reply diverged");
        } else {
            assert_eq!(r, s, "reply {i} ('{}') diverged", SCRIPT[i]);
        }
    }

    // And the pixels themselves are the same.
    let a = std::fs::read("out/golden_repl.ppm").unwrap();
    let b = std::fs::read("out/golden_srv.ppm").unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "framebuffers diverged between repl and tiogad");
}
