//! The paper's §1.2 design principles and §10 conclusions, asserted as
//! executable claims against the public API.

use std::sync::Arc;
use tioga2::core::{Environment, Session};
use tioga2::dataflow::{BoxKind, CustomBox, Data, FlowError, PortType};
use tioga2::datagen::register_standard_catalog;
use tioga2::display::Displayable;
use tioga2::expr::ScalarType as T;
use tioga2::relational::Catalog;

fn session() -> Session {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 80, 6, 11);
    Session::new(Environment::new(catalog))
}

/// Principle 1: "Every result of a user action has a valid visual
/// representation."  After *each* step of a long pipeline the frontier
/// is renderable through a probe viewer, including steps (Project,
/// Aggregate) that destroy previously defined display functions.
type Step = Box<dyn Fn(&mut Session, tioga2::dataflow::NodeId) -> tioga2::dataflow::NodeId>;

#[test]
fn principle1_every_step_is_visualizable() {
    let mut s = session();
    let mut frontier = s.add_table("Stations").unwrap();
    let steps: Vec<Step> = vec![
        Box::new(|s, f| s.restrict(f, "state = 'LA'").unwrap()),
        Box::new(|s, f| s.set_attribute(f, "x", T::Float, "longitude").unwrap()),
        Box::new(|s, f| s.set_attribute(f, "y", T::Float, "latitude").unwrap()),
        Box::new(|s, f| {
            s.set_attribute(f, "display", T::DrawList, "circle(0.1,'red') ++ nodraw()").unwrap()
        }),
        // Projection drops longitude: the x function dies, defaults revive.
        Box::new(|s, f| s.project(f, &["name", "altitude"]).unwrap()),
        Box::new(|s, f| s.sort(f, &[("altitude", false)]).unwrap()),
        // Aggregation replaces the schema wholesale.
        Box::new(|s, f| {
            s.aggregate(
                f,
                &["name"],
                vec![tioga2::relational::AggSpec::of(
                    tioga2::relational::AggFunc::Max,
                    "altitude",
                    "peak",
                )],
            )
            .unwrap()
        }),
        Box::new(|s, f| s.limit(f, 0, 5).unwrap()),
    ];
    for (i, step) in steps.into_iter().enumerate() {
        frontier = step(&mut s, frontier);
        let probe = format!("probe{i}");
        s.add_viewer(frontier, &probe).unwrap();
        let frame = s.render(&probe).unwrap();
        // Valid visual representation: the render succeeds; if any tuples
        // exist, something is on screen.
        if s.displayable(&probe).unwrap().tuple_count() > 0 {
            assert!(frame.fb.ink_fraction() > 0.0, "step {i} rendered nothing");
        }
    }
}

/// Principle 2 / §10 "better programming environment": construction,
/// modification and use are the same activity — a saved program can be
/// reloaded, used, then edited further without any compile step.
#[test]
fn principle2_construct_modify_use_are_one_activity() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r = s.restrict(t, "state = 'LA'").unwrap();
    s.add_viewer(r, "main").unwrap();
    s.save_program("p");

    // "Use" in a second session over the same environment.
    s.load_program("p").unwrap();
    let la = s.displayable("main").unwrap().tuple_count();
    assert!(la > 0);

    // Keep editing the loaded program: the viewer updates immediately.
    let node = s
        .graph
        .node_ids()
        .into_iter()
        .find(|id| s.graph.node(*id).unwrap().name() == "Restrict")
        .unwrap();
    s.update_box(
        node,
        BoxKind::RelOp {
            op: tioga2::dataflow::boxes::RelOpKind::Restrict(
                tioga2::expr::parse("state = 'TX'").unwrap(),
            ),
            shape: PortType::R,
            sel: Default::default(),
        },
    )
    .unwrap();
    let tx = s.displayable("main").unwrap().tuple_count();
    assert_ne!(la, tx);
}

/// Principle 4: no inference — the same gesture sequence always produces
/// the same program and the same pixels.
#[test]
fn principle4_gestures_are_deterministic() {
    let build = || {
        let mut s = session();
        let t = s.add_table("Stations").unwrap();
        let r = s.restrict(t, "altitude > 50.0").unwrap();
        let x = s.set_attribute(r, "x", T::Float, "longitude").unwrap();
        let y = s.set_attribute(x, "y", T::Float, "latitude").unwrap();
        s.add_viewer(y, "v").unwrap();
        let frame = s.render("v").unwrap();
        (tioga2::dataflow::persist::save_program(&s.graph), frame.fb)
    };
    let (p1, fb1) = build();
    let (p2, fb2) = build();
    assert_eq!(p1, p2, "identical programs");
    assert_eq!(fb1.pixels(), fb2.pixels(), "identical pixels");
}

/// Principle 5 / §10 "functionality": the big programmer registers boxes
/// (custom functions) that little programmers then wire up; boxes may
/// have multiple outputs (Switch, T) — "all of which are absent from
/// Tioga".
#[test]
fn principle5_big_little_programmer_and_multi_output() {
    let mut s = session();
    // Big programmer: a "top-3 by altitude" box.
    s.env.register_custom(Arc::new(CustomBox {
        name: "Top3ByAltitude".into(),
        in_types: vec![PortType::R],
        out_types: vec![PortType::R],
        f: Box::new(|ins| {
            let d = ins[0].clone().into_displayable().map_err(FlowError::from)?;
            match d {
                Displayable::R(dr) => {
                    let sorted = tioga2::relational::ops::sort(&dr.rel, &[("altitude", false)])?;
                    let top = tioga2::relational::limit(&sorted, 0, 3);
                    let mut out = dr.clone();
                    out.rel = top;
                    Ok(vec![Data::D(Displayable::R(out))])
                }
                other => Ok(vec![Data::D(other)]),
            }
        }),
    }));
    // Little programmer: finds it in the boxes menu and wires it up.
    assert!(tioga2::core::menus::boxes_menu(&s).contains(&"Top3ByAltitude".to_string()));
    let t = s.add_table("Stations").unwrap();
    let kind = s.env.registry.get("Top3ByAltitude").unwrap().kind.clone().unwrap();
    let top = s.add_box(kind).unwrap();
    s.connect(t, 0, top, 0).unwrap();
    assert_eq!(s.demand(top, 0).unwrap().tuple_count(), 3);

    // Multiple outputs: Switch routes, T duplicates.
    let sw = s.switch(t, "state = 'LA'").unwrap();
    let la = s.demand(sw, 0).unwrap().tuple_count();
    let rest = s.demand(sw, 1).unwrap().tuple_count();
    assert_eq!(la + rest, 80);
    assert_eq!(s.graph.node(sw).unwrap().out_types.len(), 2);
}

/// §10 "easy to instrument": a viewer goes onto *any* arc, and the
/// intermediate data it shows tracks upstream edits.
#[test]
fn conclusion_viewers_instrument_any_edge() {
    let mut s = session();
    let t = s.add_table("Stations").unwrap();
    let r1 = s.restrict(t, "altitude > 10.0").unwrap();
    let r2 = s.restrict(r1, "state = 'LA'").unwrap();
    s.add_viewer(r2, "final").unwrap();
    // Instrument the middle edge.
    let probe = s.add_viewer_on_edge(r2, 0, "middle").unwrap();
    let _ = probe;
    let mid = s.displayable("middle").unwrap().tuple_count();
    let fin = s.displayable("final").unwrap().tuple_count();
    assert!(mid >= fin);
    // An upstream edit is visible at both probes.
    s.update_box(
        r1,
        BoxKind::RelOp {
            op: tioga2::dataflow::boxes::RelOpKind::Restrict(
                tioga2::expr::parse("altitude > 1e9").unwrap(),
            ),
            shape: PortType::R,
            sel: Default::default(),
        },
    )
    .unwrap();
    assert_eq!(s.displayable("middle").unwrap().tuple_count(), 0);
    assert_eq!(s.displayable("final").unwrap().tuple_count(), 0);
}

/// §8: updates are *screen-object* updates, not general SQL — a tuple
/// that is not traceable to a base table (a join output) cannot open an
/// update dialog.
#[test]
fn section8_updates_require_lineage() {
    let mut s = session();
    let st = s.add_table("Stations").unwrap();
    let obs = s.add_table("Observations").unwrap();
    let j = s.join(st, obs, "id = station_id").unwrap();
    s.add_viewer(j, "joined").unwrap();
    let frame = s.render("joined").unwrap();
    let rec = frame.hits.records()[0].clone();
    let (cx, cy) = ((rec.bbox.0 + rec.bbox.2) / 2, (rec.bbox.1 + rec.bbox.3) / 2);
    let err = s.begin_update("joined", cx, cy).unwrap_err();
    assert!(err.to_string().contains("not traceable"), "{err}");
}
