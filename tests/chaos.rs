//! Chaos suite (DESIGN.md §10): deterministic fault injection, budgets,
//! cancellation, and panic containment, all exercised through the public
//! engine API.  The properties under test:
//!
//! * every injected fault — error or panic, at any operator site, at any
//!   worker count — surfaces as a *structured* error; no panic escapes
//!   `Engine::demand*`;
//! * the engine stays usable afterwards: a follow-up clean demand
//!   returns byte-identical rows to a never-faulted run;
//! * no poisoned entry survives in the memo or plan caches.
//!
//! The fault registry has a process-global fallback (`TIOGA2_FAULTS`),
//! so every test here serializes on one mutex; per-engine plans
//! (`Engine::set_fault_plan`) keep the faults scoped regardless.

use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use tioga2::dataflow::boxes::{BoxKind, RelOpKind};
use tioga2::dataflow::{Engine, FlowError, Graph};
use tioga2::display::{DisplayRelation, Displayable};
use tioga2::expr::{parse, ScalarType, Value};
use tioga2::obs::{InMemoryRecorder, Recorder};
use tioga2::relational::relation::RelationBuilder;
use tioga2::relational::{fault, Budget, CancelToken, Catalog, FaultPlan, RelError, Relation};

/// Serialize the whole binary: the registry fallback is process-global,
/// and injected panics from one test must not interleave with another's
/// assertions.  Poison-tolerant because proptest failures unwind.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
}

/// Keep injected panics (they are *expected* here) from spraying the
/// default hook's backtraces over the test output.
fn quiet_injected_panics() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !payload.contains("injected fault") {
                default(info);
            }
        }));
    });
}

fn numbers(n: i64) -> Relation {
    let mut b = RelationBuilder::new()
        .field("k", ScalarType::Int)
        .field("v", ScalarType::Float)
        .field("s", ScalarType::Text);
    for i in 0..n {
        b = b.row(vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.5 - 10.0),
            Value::Text(format!("t{}", i % 7)),
        ]);
    }
    b.build().unwrap()
}

/// A chain ending in `prev` over table `T`; returns (graph, tail node).
fn chain(kinds: Vec<RelOpKind>) -> (Graph, tioga2::dataflow::NodeId) {
    let mut g = Graph::new();
    let mut prev = g.add(BoxKind::Table("T".into()));
    for kind in kinds {
        let n = g.add(BoxKind::rel(kind));
        g.connect(prev, 0, n, 0).unwrap();
        prev = n;
    }
    (g, prev)
}

fn engine_for(rel: &Relation, threads: usize) -> Engine {
    let c = Catalog::new();
    c.register("T", rel.clone());
    let mut e = Engine::new(c);
    e.set_threads(threads);
    // Chaos engines never consult the global registry implicitly: a
    // never-matching override keeps concurrent env plans out.
    e.set_fault_plan(Some(FaultPlan::parse("chaos_noop_site=err").unwrap()));
    e
}

fn dr_of(d: Displayable) -> DisplayRelation {
    match d {
        Displayable::R(dr) => dr,
        other => panic!("expected R, got {}", other.type_tag()),
    }
}

fn demand_dr(
    e: &mut Engine,
    g: &Graph,
    n: tioga2::dataflow::NodeId,
) -> Result<DisplayRelation, FlowError> {
    e.demand_planned(g, n, 0).map(|d| dr_of(d.into_displayable().unwrap()))
}

fn is_structured_fault(e: &FlowError) -> bool {
    matches!(e, FlowError::Rel(RelError::FaultInjected(_)) | FlowError::Rel(RelError::Panic(_)))
}

/// Ops used by the random chains: every plannable shape except Limit
/// (its early exit legitimately changes which coordinates are reached).
/// The project reorders but keeps all columns, so every chain is total.
fn decode_ops(seeds: &[(u8, u64)]) -> Vec<RelOpKind> {
    let mut kinds = Vec::new();
    for &(tag, a) in seeds {
        match tag % 5 {
            0 => kinds.push(RelOpKind::Restrict(
                parse(&format!("k > {}", (a % 40) as i64 - 20)).unwrap(),
            )),
            1 => kinds.push(RelOpKind::Project(vec!["s".into(), "k".into(), "v".into()])),
            2 => kinds.push(RelOpKind::Sort(vec![("k".into(), a & 1 == 0)])),
            3 => kinds.push(RelOpKind::Distinct(vec!["s".into()])),
            4 => kinds.push(RelOpKind::Sample { p: 0.5 + (a % 50) as f64 / 100.0, seed: a }),
            _ => unreachable!(),
        }
    }
    kinds
}

/// The fault-site pool the proptest draws from.  Wildcards and concrete
/// coordinates, error and panic actions, stream and eager and worker
/// sites — every naming-scheme shape from DESIGN.md §10.
fn site_pool(coord: u64) -> Vec<String> {
    vec![
        format!("scan:{coord}=err"),
        format!("scan:{coord}=panic"),
        "scan=err".to_string(),
        format!("restrict:pull:{coord}=err"),
        format!("project:pull:{coord}=panic"),
        format!("distinct:pull:{coord}=err"),
        format!("sample:pull:{coord}=err"),
        "sort=err".to_string(),
        "sort=panic".to_string(),
        "join=err".to_string(),
        "worker=panic".to_string(),
        format!("worker:{}=panic", coord % 4),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random plan x random injection point x random worker count: the
    /// fault either surfaces structurally or never fires, and the same
    /// engine then answers a clean demand byte-identically to an
    /// uninjected run.
    #[test]
    fn injected_faults_surface_structured_and_engine_recovers(
        rows in 0i64..48,
        seeds in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..4),
        site in 0usize..12,
        coord in 0u64..24,
        threads_sel in 0usize..3,
    ) {
        let threads = [1usize, 2, 8][threads_sel];
        let _guard = serial();
        quiet_injected_panics();
        let rel = numbers(rows);
        let (g, tail) = chain(decode_ops(&seeds));

        let mut clean = engine_for(&rel, threads);
        let baseline = demand_dr(&mut clean, &g, tail).unwrap();

        let spec = site_pool(coord)[site].clone();
        let mut e = engine_for(&rel, threads);
        e.set_fault_plan(Some(FaultPlan::parse(&spec).unwrap()));
        match demand_dr(&mut e, &g, tail) {
            // The fault fired: it must be one of the two structured
            // shapes, never a raw unwind (proptest would report those as
            // a test panic) and never a mangled result.
            Err(err) => prop_assert!(is_structured_fault(&err), "{spec} -> {err}"),
            // The site/coordinate was never reached (or a worker panic
            // fell back to serial): the result must be untouched.
            Ok(dr) => prop_assert_eq!(&dr, &baseline),
        }

        // Recovery on the *same* engine: disarm, demand again, compare
        // byte-for-byte (schema, methods, tuple order, row ids).
        e.set_fault_plan(Some(FaultPlan::parse("chaos_noop_site=err").unwrap()));
        let recovered = demand_dr(&mut e, &g, tail);
        prop_assert!(recovered.is_ok(), "clean follow-up failed: {:?}", recovered.err());
        prop_assert_eq!(&recovered.unwrap(), &baseline);

        // And again, through whatever was cached: no poisoned entries.
        let cached = demand_dr(&mut e, &g, tail).unwrap();
        prop_assert_eq!(&cached, &baseline);
    }
}

/// A faulted demand must not populate the plan cache with a partial
/// result: while the fault stays armed every demand fails afresh.
#[test]
fn faulted_demands_are_not_cached() {
    let _guard = serial();
    let rel = numbers(64);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);
    let mut e = engine_for(&rel, 1);
    e.set_fault_plan(Some(FaultPlan::parse("scan:10=err").unwrap()));
    for _ in 0..3 {
        let err = demand_dr(&mut e, &g, tail).unwrap_err();
        assert!(
            matches!(&err, FlowError::Rel(RelError::FaultInjected(m)) if m == "scan@10"),
            "{err}"
        );
    }
    e.set_fault_plan(Some(FaultPlan::parse("chaos_noop_site=err").unwrap()));
    let mut clean = engine_for(&rel, 1);
    assert_eq!(demand_dr(&mut e, &g, tail).unwrap(), demand_dr(&mut clean, &g, tail).unwrap());
}

/// A worker panic is contained, the parallel attempt is abandoned, and
/// the serial fallback still answers the demand correctly — the panic is
/// an execution-strategy failure, not a query failure.
#[test]
fn worker_panic_falls_back_to_serial() {
    let _guard = serial();
    quiet_injected_panics();
    let rel = numbers(256);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("v > 3.0").unwrap())]);

    let mut clean = engine_for(&rel, 1);
    let baseline = demand_dr(&mut clean, &g, tail).unwrap();

    let mut e = engine_for(&rel, 8);
    let rec = std::sync::Arc::new(InMemoryRecorder::new());
    e.set_recorder(rec.clone());
    e.set_fault_plan(Some(FaultPlan::parse("worker:1=panic").unwrap()));
    let dr = demand_dr(&mut e, &g, tail).unwrap();
    assert_eq!(dr, baseline, "serial fallback must be byte-identical");
    assert!(
        rec.counter("plan.parallel.worker_panics").unwrap_or(0) >= 1,
        "fallback must be visible in the counters"
    );
}

/// An eager-site panic (sort) is converted to `RelError::Panic`, the
/// caches are dropped defensively, and the engine recovers.
#[test]
fn sort_panic_is_contained_and_invalidates_caches() {
    let _guard = serial();
    quiet_injected_panics();
    let rel = numbers(32);
    let (g, tail) = chain(vec![RelOpKind::Sort(vec![("k".into(), false)])]);

    let mut clean = engine_for(&rel, 1);
    let baseline = demand_dr(&mut clean, &g, tail).unwrap();

    let mut e = engine_for(&rel, 1);
    let rec = std::sync::Arc::new(InMemoryRecorder::new());
    e.set_recorder(rec.clone());
    e.set_fault_plan(Some(FaultPlan::parse("sort=panic").unwrap()));
    let err = demand_dr(&mut e, &g, tail).unwrap_err();
    match &err {
        FlowError::Rel(RelError::Panic(m)) => assert!(m.contains("injected fault"), "{m}"),
        other => panic!("expected contained panic, got {other}"),
    }
    assert_eq!(rec.counter("demand.panics_contained"), Some(1));
    assert!(rec.counter("cache.invalidations").unwrap_or(0) >= 1, "panic drops the caches");

    e.set_fault_plan(Some(FaultPlan::parse("chaos_noop_site=err").unwrap()));
    assert_eq!(demand_dr(&mut e, &g, tail).unwrap(), baseline);
}

/// Row budgets abort cooperatively with a structured error, and lifting
/// the budget restores byte-identical results on the same engine.
#[test]
fn row_budget_aborts_and_lifting_it_recovers() {
    let _guard = serial();
    let rel = numbers(256);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);

    let mut clean = engine_for(&rel, 1);
    let baseline = demand_dr(&mut clean, &g, tail).unwrap();

    let mut e = engine_for(&rel, 1);
    e.set_budget(Some(Budget::new().rows(10)));
    let err = demand_dr(&mut e, &g, tail).unwrap_err();
    assert!(matches!(err, FlowError::Rel(RelError::BudgetExceeded(_))), "{err}");

    e.set_budget(None);
    assert_eq!(demand_dr(&mut e, &g, tail).unwrap(), baseline);
}

/// An already-elapsed deadline aborts before (or during) evaluation.
#[test]
fn elapsed_deadline_aborts() {
    let _guard = serial();
    let rel = numbers(64);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);
    let mut e = engine_for(&rel, 1);
    e.set_budget(Some(Budget::new().millis(0)));
    std::thread::sleep(std::time::Duration::from_millis(2));
    let err = demand_dr(&mut e, &g, tail).unwrap_err();
    assert!(matches!(err, FlowError::Rel(RelError::BudgetExceeded(_))), "{err}");
}

/// A pre-cancelled token aborts with `Cancelled` before any evaluation.
#[test]
fn cancelled_token_aborts_demand() {
    let _guard = serial();
    let rel = numbers(64);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);
    let mut e = engine_for(&rel, 1);
    let token = CancelToken::new();
    token.cancel();
    e.set_budget(Some(Budget::new().with_token(token)));
    let err = demand_dr(&mut e, &g, tail).unwrap_err();
    assert!(matches!(err, FlowError::Rel(RelError::Cancelled)), "{err}");
    // Un-cancelled demands on the same engine work again.
    e.set_budget(None);
    assert!(demand_dr(&mut e, &g, tail).is_ok());
}

/// Aborted demands still leave a trace in the ring, flagged with the
/// abort class, so `:explain analyze` and `sys.demands` can show them.
#[test]
fn aborted_demand_leaves_flagged_trace() {
    let _guard = serial();
    let rel = numbers(64);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);
    let mut e = engine_for(&rel, 1);
    e.set_fault_plan(Some(FaultPlan::parse("scan:3=err").unwrap()));
    assert!(e.demand_analyzed(&g, tail, 0, true, None).is_err());
    let trace = e.demand_traces().back().expect("aborted demand must be traced");
    assert!(trace.is_aborted());
    assert_eq!(trace.status, "fault_injected");
    assert!(trace.render().contains("ABORTED (fault_injected)"), "{}", trace.render());
}

/// The process-global registry (the `TIOGA2_FAULTS` path) reaches
/// engines with no per-engine override, and uninstalls cleanly.
#[test]
fn global_registry_reaches_unscoped_engines() {
    let _guard = serial();
    let rel = numbers(64);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);
    let c = Catalog::new();
    c.register("T", rel.clone());
    let mut e = Engine::new(c); // no override: consults the registry
    let prev = fault::install(Some(FaultPlan::parse("scan:0=err").unwrap()));
    let err = demand_dr(&mut e, &g, tail).unwrap_err();
    assert!(matches!(&err, FlowError::Rel(RelError::FaultInjected(m)) if m == "scan@0"), "{err}");
    // Disarmed: the same engine succeeds now.
    fault::install(None);
    assert!(demand_dr(&mut e, &g, tail).is_ok());
    // Put back whatever was armed before (e.g. a TIOGA2_FAULTS plan).
    fault::install(prev.map(|p| (*p).clone()));
}

/// The `TIOGA2_FAULTS` env path, exercised by the CI chaos leg (which
/// sets the variable and runs this binary).  A no-op under a plain
/// `cargo test` where the variable is unset.
#[test]
fn env_fault_plan_reaches_unscoped_engines() {
    let _guard = serial();
    let Ok(spec) = std::env::var("TIOGA2_FAULTS") else { return };
    let rel = numbers(64);
    let (g, tail) = chain(vec![RelOpKind::Restrict(parse("k > 5").unwrap())]);
    let c = Catalog::new();
    c.register("T", rel);
    let mut e = Engine::new(c); // no override: consults the registry
                                // Earlier tests in this (serialized) binary may have replaced the
                                // env-resolved plan; reinstall through the same parse path.
    let prev = fault::install(Some(
        FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("TIOGA2_FAULTS: {e}")),
    ));
    let result = demand_dr(&mut e, &g, tail);
    fault::install(prev.map(|p| (*p).clone()));
    let err = result.expect_err("the CI chaos spec must name a reachable site, e.g. scan:0=err");
    assert!(is_structured_fault(&err), "{err}");
}
