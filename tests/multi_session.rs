//! Multi-session isolation over shared-catalog snapshots (the tiogad
//! storage model): N sessions fork the base catalog, share one tuple
//! allocation per base table, and never observe each other's §8 writes.

use proptest::prelude::*;
use std::collections::BTreeMap;
use tioga2::datagen::register_standard_catalog;
use tioga2::expr::Value;
use tioga2::relational::update::{install_update, FieldChange};
use tioga2::relational::Catalog;

fn base() -> Catalog {
    let c = Catalog::new();
    register_standard_catalog(&c, 30, 2, 11);
    c
}

fn altitude_at(c: &Catalog, row_id: u64) -> Value {
    let snap = c.snapshot("Stations").unwrap();
    let i = snap.schema().index_of("altitude").unwrap();
    let t = snap.tuples().iter().find(|t| t.row_id == row_id).unwrap();
    t.values()[i].clone()
}

fn set_altitude(c: &Catalog, row_id: u64, v: f64) {
    install_update(
        c,
        "Stations",
        row_id,
        &[FieldChange { field: "altitude".into(), value: Value::Float(v) }],
    )
    .unwrap();
}

/// The memory proof behind the A9 ablation, at the catalog layer: K
/// forks are one allocation (`Arc::strong_count == K + 1`) until a
/// write COW-diverges exactly the writer's copy of exactly that table.
#[test]
fn forks_share_one_allocation_until_write() {
    let b = base();
    let forks: Vec<Catalog> = (0..4).map(|_| b.fork()).collect();

    let base_id = b.storage_id("Stations").unwrap();
    for f in &forks {
        assert_eq!(f.storage_id("Stations").unwrap(), base_id);
    }
    // base + 4 forks, one Stations tuple store.
    assert_eq!(b.storage_refs("Stations").unwrap(), 5);

    let row = b.snapshot("Stations").unwrap().tuples()[0].row_id;
    set_altitude(&forks[0], row, 4321.0);

    // Only the writer diverged; the other three still share with base.
    assert_ne!(forks[0].storage_id("Stations").unwrap(), base_id);
    for f in &forks[1..] {
        assert_eq!(f.storage_id("Stations").unwrap(), base_id);
    }
    assert_eq!(b.storage_refs("Stations").unwrap(), 4);
    // Untouched tables are still fully shared by everyone.
    assert_eq!(b.storage_refs("Observations").unwrap(), 5);
    assert_eq!(altitude_at(&b, row), altitude_at(&forks[1], row));
    assert_eq!(altitude_at(&forks[0], row), Value::Float(4321.0));
}

proptest! {
    /// K sessions each apply an arbitrary interleaving of §8 updates to
    /// private forks of the same base table.  No session ever observes
    /// another's write, and the base never changes.
    #[test]
    fn concurrent_session_writes_stay_private(
        k in 2usize..6,
        writes in proptest::collection::vec(
            (0usize..6, 0usize..30, -8000.0f64..8000.0),
            1..12,
        ),
    ) {
        let b = base();
        let snap = b.snapshot("Stations").unwrap();
        let row_ids: Vec<u64> = snap.tuples().iter().map(|t| t.row_id).collect();
        let pristine: Vec<Value> =
            row_ids.iter().map(|r| altitude_at(&b, *r)).collect();
        drop(snap);

        let forks: Vec<Catalog> = (0..k).map(|_| b.fork()).collect();
        // expected[(session, row_id)] = last value that session wrote.
        let mut expected: BTreeMap<(usize, u64), f64> = BTreeMap::new();
        for (s, r, v) in &writes {
            let s = s % k;
            let row = row_ids[r % row_ids.len()];
            set_altitude(&forks[s], row, *v);
            expected.insert((s, row), *v);
        }

        for (s, fork) in forks.iter().enumerate() {
            for (i, row) in row_ids.iter().enumerate() {
                let want = match expected.get(&(s, *row)) {
                    // A session sees its own writes...
                    Some(v) => Value::Float(*v),
                    // ...and pristine base values everywhere else, no
                    // matter what the other sessions wrote.
                    None => pristine[i].clone(),
                };
                prop_assert_eq!(altitude_at(fork, *row), want);
            }
        }
        // The base table itself never moved.
        for (i, row) in row_ids.iter().enumerate() {
            prop_assert_eq!(altitude_at(&b, *row), pristine[i].clone());
        }
    }
}
