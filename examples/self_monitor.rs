//! The engine monitoring itself with its own machinery.
//!
//! Runs an ordinary visualization pipeline with tracing on, captures
//! per-operator attribution with `explain_analyze`, publishes the
//! session's instrumentation as the self-hosted `sys.*` catalog tables,
//! and then builds a *second* Tioga-2 program over `sys.demands` that
//! draws a per-operator latency bar chart — the profiler rendered by the
//! very engine being profiled.
//!
//! Run with: `cargo run --example self_monitor`
//! Exits non-zero if the monitoring canvas comes out empty.

use std::sync::Arc;
use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::display::attr_ops::AttrRole;
use tioga2::expr::ScalarType as T;
use tioga2::obs::InMemoryRecorder;
use tioga2::relational::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 400, 12, 42);
    let mut session = Session::new(Environment::new(catalog));
    session.set_recorder(Arc::new(InMemoryRecorder::new()));

    // --- the workload: the paper's Figure 1 pipeline, exercised a bit.
    let stations = session.add_table("Stations")?;
    let la = session.restrict(stations, "state = 'LA'")?;
    let proj = session.project(la, &["name", "longitude", "latitude", "altitude"])?;
    session.add_viewer(proj, "main")?;
    session.render("main")?;
    session.zoom("main", 0.5)?;
    session.render("main")?;

    // Per-operator attribution for the demanded output.
    let report = session.explain_analyze(proj, 0)?;
    println!("{report}");

    // --- publish the instrumentation as ordinary catalog tables.
    for name in session.refresh_sys_tables()? {
        let rows = session.env.catalog.snapshot(&name)?.len();
        println!("{name:16} {rows} tuple(s)");
    }
    let demands = session.env.catalog.snapshot("sys.demands")?;
    println!("\nsys.demands:\n{}", demands.to_ascii_table(12));

    // --- a Tioga-2 program over sys.demands: per-operator latency bars.
    // x/y locate each operator (bar grows rightward with its effective
    // nanoseconds, one row per operator); the display attribute is the
    // bar itself plus the operator label.
    let t = session.add_table("sys.demands")?;
    let x = session.set_attribute(t, "x", T::Float, "ns * 0.0000005")?;
    let y = session.set_attribute(x, "y", T::Float, "0.0 - __seq")?;
    let d = session.set_attribute(
        y,
        "display",
        T::DrawList,
        "rect(ns * 0.000001 + 0.02, 0.6, 'red') \
         ++ offset(text(node, 'black'), 0.2, 0.0)",
    )?;
    let depth =
        session.add_attribute(d, "op_depth", T::Float, "depth * 1.0", AttrRole::Location)?;
    session.add_viewer(depth, "monitor")?;
    let frame = session.render("monitor")?;

    std::fs::create_dir_all("out")?;
    tioga2::render::ppm::write_ppm(&frame.fb, "out/self_monitor.ppm")?;
    println!(
        "rendered {} screen objects to out/self_monitor.ppm (ink {:.4})",
        frame.hits.len(),
        frame.fb.ink_fraction()
    );

    if frame.fb.ink_fraction() <= 0.0 {
        eprintln!("self-monitoring canvas is empty — attribution produced no operators");
        std::process::exit(1);
    }
    Ok(())
}
