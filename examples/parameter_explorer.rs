//! Runtime parameters and browsing-query performance: the §2 "runtime
//! parameter supplied by the user" flowing through scalar edges, plus the
//! [Che95]-style spatial index answering deep-zoom visible-region queries.
//!
//! Run with: `cargo run --example parameter_explorer`

use std::collections::HashMap;
use std::time::Instant;
use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::expr::{ScalarType as T, Value};
use tioga2::relational::{AggFunc, AggSpec, Catalog};
use tioga2::viewer::{compose_scene, CullOptions, SpatialIndex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 5_000, 4, 17);
    let mut s = Session::new(Environment::new(catalog));

    // ---- A parameterized pipeline: one Const box drives the predicate.
    let stations = s.add_table("Stations")?;
    let cutoff = s.add_const(Value::Float(500.0))?;
    let filtered = s.restrict_with_params(stations, "altitude > cutoff", &[("cutoff", cutoff)])?;
    s.add_viewer(filtered, "high")?;

    println!("altitude cutoff sweep (same program, one Const box twiddled):");
    for c in [0.0, 250.0, 500.0, 1000.0, 2000.0] {
        s.set_const(cutoff, Value::Float(c))?;
        let n = s.displayable("high")?.tuple_count();
        let evals = s.engine_stats();
        println!(
            "  cutoff {c:>7.0} -> {n:>5} stations   (cumulative box evals {})",
            evals.box_evals
        );
    }

    // ---- Aggregate the filtered view per state.
    let per_state = s.aggregate(
        filtered,
        &["state"],
        vec![AggSpec::count("n"), AggSpec::of(AggFunc::Avg, "altitude", "avg_alt")],
    )?;
    if let tioga2::display::Displayable::R(dr) = s.demand(per_state, 0)? {
        println!("\nhigh stations per state (cutoff 2000):");
        print!("{}", dr.rel.to_ascii_table(8));
    }

    // ---- Spatial index: deep-zoom browsing over the full continent.
    let sx = s.set_attribute(stations, "x", T::Float, "longitude")?;
    let sy = s.set_attribute(sx, "y", T::Float, "latitude")?;
    let styled = s.set_attribute(sy, "display", T::DrawList, "point('red') ++ nodraw()")?;
    let d = s.demand(styled, 0)?;
    let composite = d.into_composite()?;

    let t0 = Instant::now();
    let index = SpatialIndex::build(&composite.layers[0])?;
    let build = t0.elapsed();

    // A ~1-degree window over Louisiana (deep zoom on a 70-degree canvas).
    let vp = tioga2::render::Viewport::new((-91.1, 30.4), 1.0, 640, 480);
    let bounds = vp.world_bounds();

    let t0 = Instant::now();
    let scan = compose_scene(&composite, 1.0, &[], bounds, CullOptions::default())?;
    let scan_t = t0.elapsed();

    let mut indices = HashMap::new();
    indices.insert(composite.layers[0].name.clone(), index);
    let t0 = Instant::now();
    let fast = tioga2::viewer::compose_scene_indexed(&composite, 1.0, &[], bounds, &indices)?;
    let index_t = t0.elapsed();

    assert_eq!(scan, fast, "index must be invisible to output");
    println!("\ndeep-zoom visible-region query over 5000 stations ({} visible):", scan.len());
    println!("  full scan      {scan_t:>12.2?}");
    println!("  indexed        {index_t:>12.2?}   (index built once in {build:.2?})");
    Ok(())
}
