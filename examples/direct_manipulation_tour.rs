//! A scripted tour of Tioga-2's direct-manipulation programming model:
//! the workflow the paper's "little programmer" would follow, with every
//! gesture's program-edit semantics made visible.
//!
//! Covers: the Apply Box menu, T nodes and probe viewers on arcs,
//! rejected edits rolling back, undo/redo, Encapsulate with a hole and
//! reuse through the boxes menu, elevation-map manipulation as a program
//! edit, Save/Load Program, and the Switch box.
//!
//! Run with: `cargo run --example direct_manipulation_tour`

use tioga2::core::menus;
use tioga2::core::{Environment, Session};
use tioga2::dataflow::boxes::RelOpKind;
use tioga2::dataflow::BoxKind;
use tioga2::datagen::register_standard_catalog;
use tioga2::expr::parse;
use tioga2::relational::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 80, 6, 3);
    let mut s = Session::new(Environment::new(catalog));

    println!("== menu bar (§3) ==");
    println!("tables menu: {:?}", menus::tables_menu(&s));
    println!(
        "operations: {} entries; e.g. {:?}",
        menus::OPERATIONS.len(),
        menus::help("Overlay").unwrap()
    );

    println!("\n== build incrementally, inspect any edge (§4) ==");
    let t = s.add_table("Stations")?;
    println!("Apply Box on the Stations edge offers:");
    for cand in s.apply_box_candidates(&[(t, 0)])? {
        println!("  - {}", cand.name);
    }
    let r = s.restrict(t, "state = 'LA'")?;
    let p = s.project(r, &["name", "state", "altitude"])?;
    s.add_viewer(p, "main")?;
    println!(
        "pipeline tuples: table {} -> restrict {} -> project {}",
        s.demand(t, 0)?.tuple_count(),
        s.demand(r, 0)?.tuple_count(),
        s.demand(p, 0)?.tuple_count()
    );

    println!("\n== a bad edit is rejected atomically ==");
    match s.restrict(p, "no_such_column > 3") {
        Err(e) => println!("rejected as expected: {e}"),
        Ok(_) => println!("BUG: should have been rejected"),
    }
    println!("program still has {} boxes", s.graph.len());

    println!("\n== T + probe viewer: debugging on an arc (§10) ==");
    let tee = s.add_tee(r, 0)?;
    let probe =
        s.add_box(BoxKind::Viewer { canvas: "probe".into(), ty: tioga2::dataflow::PortType::R })?;
    s.connect(tee, 1, probe, 0)?;
    println!("probe canvas sees {} tuples (pre-restrict)", s.displayable("probe")?.tuple_count());

    println!("\n== undo button ==");
    let before = s.graph.len();
    s.delete_box(probe)?;
    println!("deleted probe viewer: {} -> {} boxes", before, s.graph.len());
    s.undo();
    println!("undo: back to {} boxes, canvases {:?}", s.graph.len(), s.canvas_names());

    println!("\n== encapsulate with a hole: a graphical macro (§4.1) ==");
    let mid = s.restrict(p, "TRUE")?;
    let tail = s.sort(mid, &[("altitude", false)])?;
    let def = s.encapsulate(&[mid, tail], &[vec![mid]], "PrepAndSort")?;
    println!(
        "registered '{}' with {} hole(s); boxes menu now: {:?}",
        def.name,
        def.holes.len(),
        menus::boxes_menu(&s).iter().filter(|n| *n == "PrepAndSort").collect::<Vec<_>>()
    );
    // Plug the hole two different ways.
    for (label, plug) in [
        ("sample 50%", BoxKind::rel(RelOpKind::Sample { p: 0.5, seed: 1 })),
        ("lowland only", BoxKind::rel(RelOpKind::Restrict(parse("altitude < 150.0")?))),
    ] {
        let inst = def.instantiate(vec![plug])?;
        let e = s.add_box(inst)?;
        s.connect(p, 0, e, 0)?;
        println!("  plugged with {label}: {} tuples", s.demand(e, 0)?.tuple_count());
        s.delete_box(e)?;
    }

    println!("\n== switch: multi-output control flow (§1.2) ==");
    let sw = s.switch(t, "altitude > 100.0")?;
    println!(
        "high/low split: {} / {}",
        s.demand(sw, 0)?.tuple_count(),
        s.demand(sw, 1)?.tuple_count()
    );

    println!("\n== elevation map manipulation = program edit (§6.1) ==");
    let n = s.graph.len();
    s.set_range_via_map("main", 0, 0.0, 250.0)?;
    println!(
        "dragging the bar added a box: {} -> {} (a Set Range spliced into the canvas edge)",
        n,
        s.graph.len()
    );
    for bar in s.elevation_map("main")? {
        println!("  [{}] {} {:?}..{:?}", bar.order, bar.layer_name, bar.range.min, bar.range.max);
    }

    println!("\n== save / load (Fig. 2) ==");
    s.save_program("tour");
    let size = s.graph.len();
    s.new_program();
    s.load_program("tour")?;
    println!("round-tripped program: {} boxes (was {})", s.graph.len(), size);
    println!("\nprogram window:\n{}", s.graph.to_ascii());
    Ok(())
}
