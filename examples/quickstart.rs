//! Quickstart: the paper's Figure 1 in a dozen lines.
//!
//! Builds the boxes-and-arrows program `Stations → Restrict(state='LA') →
//! Project → Viewer`, renders the default ASCII-table visualization to a
//! canvas, and writes `out/quickstart.ppm` / `.svg`.
//!
//! Run with: `cargo run --example quickstart`

use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::relational::Catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A catalog with the paper's tables (synthetic, seeded).
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 200, 12, 42);

    // One user session: program window + canvases + menus.
    let mut session = Session::new(Environment::new(catalog));

    // Incrementally build the Figure 1 program.  Every step immediately
    // evaluates, so a typo'd predicate fails *here*, not at runtime.
    let stations = session.add_table("Stations")?;
    let louisiana = session.restrict(stations, "state = 'LA'")?;
    let trimmed = session.project(louisiana, &["name", "longitude", "latitude", "altitude"])?;
    session.add_viewer(trimmed, "main")?;

    // The program window, as ASCII.
    println!("program:\n{}", session.graph.to_ascii());

    // Intermediate results are inspectable on any edge (§4).
    println!(
        "stations: {} total, {} in Louisiana",
        session.demand(stations, 0)?.tuple_count(),
        session.demand(louisiana, 0)?.tuple_count(),
    );

    // Render the canvas: the default display is the classic
    // terminal-monitor table (§5.2).
    let frame = session.render("main")?;
    std::fs::create_dir_all("out")?;
    tioga2::render::ppm::write_ppm(&frame.fb, "out/quickstart.ppm")?;
    let viewer = session.viewers.get("main")?;
    tioga2::render::svg::write_svg(&frame.scene, &viewer.viewport(), "out/quickstart.svg")?;
    println!(
        "rendered {} screen objects to out/quickstart.ppm ({}x{})",
        frame.hits.len(),
        frame.fb.width(),
        frame.fb.height()
    );
    Ok(())
}
