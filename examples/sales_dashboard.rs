//! A sales/HR dashboard over the `Employees` relation: the paper's
//! §7 machinery on a non-weather domain.
//!
//! * **Replicate** (§7.4, Figure 11): the exact example from the paper —
//!   tabular replication with `salary <= 5000` / `salary > 5000`
//!   horizontally and the enumerated type `department` vertically.
//! * **Stitch** (§7.3, Figure 10): salary-vs-tenure scatter stitched to a
//!   headcount strip, with the second member slaved to the first.
//! * **Magnifying glass** (§7.2, Figure 9): an alternative display
//!   attribute (hire year) inspected through a lens.
//! * **Update** (§8): click an employee row, give them a raise.
//!
//! Run with: `cargo run --example sales_dashboard`

use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::display::compose::PartitionSpec;
use tioga2::display::{Displayable, Layout, Selection};
use tioga2::expr::{parse, ScalarType as T};
use tioga2::relational::Catalog;
use tioga2::viewer::magnifier::Magnifier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 50, 4, 99);
    let mut s = Session::new(Environment::new(catalog));
    s.set_canvas_size(800, 600);
    std::fs::create_dir_all("out")?;

    // ---------------------------------------------------- scatter view
    let emps = s.add_table("Employees")?;
    let x = s.set_attribute(emps, "x", T::Float, "to_float(year(hired)) - 1975.0")?;
    let y = s.set_attribute(x, "y", T::Float, "to_float(salary) / 100.0")?;
    let d = s.set_attribute(
        y,
        "display",
        T::DrawList,
        "if department = 'engineering' then circle(0.4,'blue') \
         else if department = 'sales' then circle(0.4,'green') \
         else circle(0.4,'orange') end end ++ nodraw()",
    )?;
    // Alternative display for the magnifier: the hire year as text.
    let d = s.add_attribute(
        d,
        "hired_view",
        T::DrawList,
        "rect(0.6,0.6,'gray') ++ offset(text(to_text(year(hired)),'black'), 0.0, -0.9)",
        tioga2::display::attr_ops::AttrRole::Display,
    )?;

    // ------------------------------------- Figure 11: tabular replicate
    let replicated = s.replicate(
        d,
        PartitionSpec::Predicates(vec![
            ("salary <= 5000".into(), parse("salary <= 5000")?),
            ("salary > 5000".into(), parse("salary > 5000")?),
        ]),
        Some(PartitionSpec::Enumerate("department".into())),
        Selection::default(),
    )?;
    s.add_viewer(replicated, "replicated")?;
    match s.displayable("replicated")? {
        Displayable::G(g) => {
            println!("Figure 11 replicate: {} cells, layout {:?}", g.members.len(), g.layout);
            for (label, m) in g.labels.iter().zip(&g.members) {
                println!("  {:42} {:3} employees", label, m.layers[0].rel.len());
            }
        }
        other => println!("unexpected displayable {}", other.type_tag()),
    }
    let frame = s.render("replicated")?;
    tioga2::render::ppm::write_ppm(&frame.fb, "out/dashboard_replicated.ppm")?;

    // ----------------------------------------- Figure 10: stitch + slave
    let salary_member = s.demand(d, 0)?; // reuse the styled scatter
    let _ = salary_member;
    let stitched = s.stitch(&[d, d], Layout::Vertical)?;
    s.add_viewer(stitched, "stitched")?;
    s.render("stitched")?;
    {
        let gw = s.group_window_mut("stitched")?;
        gw.slave_members(0, 1)?;
        gw.pan_member(0, 60, 0)?; // drag the top member; the bottom follows
        let p0 = gw.viewers.get(&tioga2::viewer::group::member_viewer_name(0))?.position.clone();
        let p1 = gw.viewers.get(&tioga2::viewer::group::member_viewer_name(1))?.position.clone();
        println!("Figure 10 stitch: members slaved, centers {:?} / {:?}", p0.center, p1.center);
    }
    let frame = s.render("stitched")?;
    tioga2::render::ppm::write_ppm(&frame.fb, "out/dashboard_stitched.ppm")?;

    // --------------------------------------- Figure 9: magnifying glass
    s.add_viewer(d, "scatter")?;
    s.render("scatter")?;
    let lens = Magnifier::new((250, 180, 220, 160), 2.0)?.with_display("hired_view");
    s.add_magnifier("scatter", lens)?;
    let frame = s.render("scatter")?;
    tioga2::render::ppm::write_ppm(&frame.fb, "out/dashboard_magnifier.ppm")?;
    println!("Figure 9 magnifier: lens shows the hire-year display inside the scatter");

    // ----------------------------------------------- §8: click to update
    let frame = s.render("scatter")?;
    if let Some(rec) = frame.hits.records().first().cloned() {
        let (cx, cy) = ((rec.bbox.0 + rec.bbox.2) / 2, (rec.bbox.1 + rec.bbox.3) / 2);
        let mut dialog = s.begin_update("scatter", cx, cy)?;
        let old: i64 = dialog
            .fields
            .iter()
            .find(|f| f.name == "salary")
            .map(|f| f.original.parse().unwrap_or(0))
            .unwrap_or(0);
        dialog.set_field("salary", (old + 500).to_string())?;
        let row = dialog.row_id;
        dialog.commit(&mut s)?;
        println!("§8 update: employee row {row} got a raise: {} -> {}", old, old + 500);
    }

    println!("dashboards written to out/dashboard_*.ppm");
    Ok(())
}
