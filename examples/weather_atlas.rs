//! The full Louisiana weather atlas: the worked example of paper
//! sections 4–6 (Figures 4, 7 and 8) as one runnable program.
//!
//! * Figure 4 — stations positioned at (longitude, latitude), drawn as a
//!   circle plus their name, with an Altitude slider dimension.
//! * Figure 7 — the state border map overlaid under two station layers
//!   whose elevation ranges implement drill-down: plain circles from
//!   high up, names appearing as you descend.
//! * Figure 8 — zooming all the way into a station passes through a
//!   wormhole onto that station's temperature-vs-time canvas; the rear
//!   view mirror shows the underside of the canvas you left.
//!
//! Run with: `cargo run --example weather_atlas`

use tioga2::core::{Environment, Session};
use tioga2::datagen::register_standard_catalog;
use tioga2::display::Selection;
use tioga2::expr::ScalarType as T;
use tioga2::relational::Catalog;

fn save(frame: &tioga2::core::canvas::CanvasFrame, name: &str) -> std::io::Result<()> {
    std::fs::create_dir_all("out")?;
    tioga2::render::ppm::write_ppm(&frame.fb, format!("out/{name}.ppm"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new();
    register_standard_catalog(&catalog, 300, 40, 7);
    let mut s = Session::new(Environment::new(catalog));
    s.set_canvas_size(640, 480);

    // ------------------------------------------------------- Figure 4
    let stations = s.add_table("Stations")?;
    let la = s.restrict(stations, "state = 'LA'")?;
    let sx = s.set_attribute(la, "x", T::Float, "longitude")?;
    let sy = s.set_attribute(sx, "y", T::Float, "latitude")?;
    let alt = s.add_attribute(
        sy,
        "alt",
        T::Float,
        "altitude",
        tioga2::display::attr_ops::AttrRole::Location,
    )?;

    // Two alternative levels of detail for drill-down (Figure 7): a
    // plain circle at high elevation, circle+name lower down.  A T lets
    // both style chains share the positioned relation.
    let tee = s.add_tee_output(alt)?;
    let circles =
        s.set_attribute(tee.0, "display", T::DrawList, "circle(0.035,'red') ++ nodraw()")?;
    let circles = s.set_layer_name(circles, "stations (far)")?;
    let circles = s.set_range(circles, 1.2, 1e12, Selection::default())?;

    let named = s.set_attribute_on(
        tee.1,
        "display",
        T::DrawList,
        "circle(0.035,'red') ++ offset(text(name,'black'), 0.0, -0.06) \
         ++ viewer('temps', 60.0, to_float(id) * 50.0, 15.0, 0.25, 0.2)",
    )?;
    let named = s.set_layer_name(named, "stations (near)")?;
    let named = s.set_range(named, 0.0, 1.2, Selection::default())?;

    // ------------------------------------------------------- Figure 7
    // The Louisiana border map, "derived from a relation of lines".
    let border = s.add_table("LaBorder")?;
    let bx = s.set_attribute(border, "x", T::Float, "x1")?;
    let by = s.set_attribute(bx, "y", T::Float, "y1")?;
    let bd =
        s.set_attribute(by, "display", T::DrawList, "line(x2 - x1, y2 - y1, 'gray') ++ nodraw()")?;
    let map = s.set_layer_name(bd, "state map")?;

    // Counties appear only when fairly close (second map level).
    let counties = s.add_table("LaCounties")?;
    let cx = s.set_attribute(counties, "x", T::Float, "x1")?;
    let cy = s.set_attribute(cx, "y", T::Float, "y1")?;
    let cd =
        s.set_attribute(cy, "display", T::DrawList, "line(x2 - x1, y2 - y1, 'cyan') ++ nodraw()")?;
    let cn = s.set_layer_name(cd, "county grid")?;
    let counties = s.set_range(cn, 0.0, 2.5, Selection::default())?;

    // Underside of the atlas canvas (§6.3): a marker visible only in
    // rear view mirrors after travelling through a wormhole — "the rear
    // view mirror [illuminates] the wormholes back to the canvas from
    // which the user came".
    let under = s.add_table("LaBorder")?;
    let ux = s.set_attribute(under, "x", T::Float, "x1")?;
    let uy = s.set_attribute(ux, "y", T::Float, "y1")?;
    let ud = s.set_attribute(
        uy,
        "display",
        T::DrawList,
        "line(x2 - x1, y2 - y1, 'purple') ++ nodraw()",
    )?;
    let un = s.set_layer_name(ud, "atlas underside")?;
    let under = s.set_range(un, -1e12, -0.0001, Selection::default())?;

    // Overlay: map at the bottom, then counties, circles, names, and the
    // underside.  The 2-D map is invariant in the stations' Altitude
    // dimension (§6.1).
    let o1 = s.overlay(map, counties, vec![], true)?;
    let o2 = s.overlay(o1, circles, vec![], true)?;
    let o3 = s.overlay(o2, named, vec![], true)?;
    let atlas = s.overlay(o3, under, vec![], true)?;
    s.add_viewer(atlas, "atlas")?;

    // ------------------------------------------------------- Figure 8
    // The wormhole destination: temperature vs time per station; x
    // encodes station id * 50 + day so each station has its own strip.
    let obs = s.add_table("Observations")?;
    let ox = s.set_attribute(
        obs,
        "x",
        T::Float,
        "to_float(station_id) * 50.0 + to_float(epoch(time)) / 86400.0 - 5480.0",
    )?;
    let oy = s.set_attribute(ox, "y", T::Float, "temperature")?;
    let od = s.set_attribute(oy, "display", T::DrawList, "point('blue') ++ nodraw()")?;
    // Underside axes marker: visible only in rear view mirrors.
    let od = s.set_layer_name(od, "temperature")?;
    s.add_viewer(od, "temps")?;

    // Render the atlas from three elevations to show the drill-down.
    let far = s.render("atlas")?;
    save(&far, "atlas_far")?;
    println!("far view: {} objects (names hidden above elevation 1.2)", far.hits.len());
    for bar in s.elevation_map("atlas")? {
        println!(
            "  elevation map: [{}] {:24} range {:>8.2}..{:<12.2} {}",
            bar.order,
            bar.layer_name,
            bar.range.min,
            bar.range.max,
            if bar.active { "ACTIVE" } else { "" }
        );
    }

    // Descend toward Baton Rouge-ish coordinates.
    s.pan("atlas", 0, 0)?;
    s.zoom("atlas", 0.5)?;
    s.zoom("atlas", 0.5)?;
    let near = s.render("atlas")?;
    save(&near, "atlas_near")?;
    println!("near view: {} objects (names + counties now visible)", near.hits.len());

    // Use the Altitude slider: only low-lying stations.
    s.set_slider("atlas", "alt", 0.0, 40.0)?;
    let low = s.render("atlas")?;
    save(&low, "atlas_lowland")?;
    println!("lowland stations only: {} objects", low.hits.len());
    s.set_slider("atlas", "alt", 0.0, 1e9)?;

    // Center on a specific station, then keep zooming until we fall
    // through its wormhole (the paper's drill-down to Figure 8).
    if let tioga2::display::Displayable::R(dr) = s.demand(la, 0)? {
        let lon = dr.rel.attr_value(0, "longitude")?.as_f64().unwrap();
        let lat = dr.rel.attr_value(0, "latitude")?.as_f64().unwrap();
        s.viewers.set_center("atlas", (lon, lat))?;
    }
    let mut destination = None;
    for _ in 0..80 {
        if let Some(d) = s.zoom("atlas", 0.6)? {
            destination = Some(d);
            break;
        }
    }
    match destination {
        Some(d) => {
            println!("passed through a wormhole to '{d}' (travel depth {})", s.travel_depth());
            let temps = s.render("temps")?;
            save(&temps, "temps")?;
            // Descend a little; the rear view mirror lights up.
            s.zoom("temps", 0.5)?;
            if let Some((fb, scene)) = s.render_rear_view(200, 160)? {
                tioga2::render::ppm::write_ppm(&fb, "out/rear_view.ppm")?;
                println!(
                    "rear view mirror: {} underside objects at elevation {:.1}",
                    scene.len(),
                    s.rear_view_elevation().unwrap_or(0.0)
                );
            }
            let home = s.go_back()?;
            println!("went back home to '{home}'");
        }
        None => println!("no wormhole under the descent path this run"),
    }

    println!("figures written to out/atlas_*.ppm, out/temps.ppm, out/rear_view.ppm");
    Ok(())
}

/// Small helper extensions used by the examples: a T with both outputs
/// exposed, and applying a styling op to a specific tee output.
trait SessionExt {
    fn add_tee_output(
        &mut self,
        upstream: tioga2::dataflow::NodeId,
    ) -> Result<
        (tioga2::dataflow::NodeId, (tioga2::dataflow::NodeId, usize)),
        tioga2::core::CoreError,
    >;
    fn set_attribute_on(
        &mut self,
        from: (tioga2::dataflow::NodeId, usize),
        name: &str,
        ty: T,
        def: &str,
    ) -> Result<tioga2::dataflow::NodeId, tioga2::core::CoreError>;
}

impl SessionExt for Session {
    fn add_tee_output(
        &mut self,
        upstream: tioga2::dataflow::NodeId,
    ) -> Result<
        (tioga2::dataflow::NodeId, (tioga2::dataflow::NodeId, usize)),
        tioga2::core::CoreError,
    > {
        use tioga2::dataflow::{BoxKind, PortType};
        let tee = self.add_box(BoxKind::Tee(PortType::R))?;
        self.connect(upstream, 0, tee, 0)?;
        Ok((tee, (tee, 1)))
    }

    fn set_attribute_on(
        &mut self,
        from: (tioga2::dataflow::NodeId, usize),
        name: &str,
        ty: T,
        def: &str,
    ) -> Result<tioga2::dataflow::NodeId, tioga2::core::CoreError> {
        use tioga2::dataflow::boxes::RelOpKind;
        use tioga2::dataflow::{BoxKind, PortType};
        let kind = BoxKind::RelOp {
            op: RelOpKind::SetAttribute {
                name: name.into(),
                ty,
                def: tioga2::expr::parse(def).map_err(tioga2::core::CoreError::from)?,
            },
            shape: PortType::R,
            sel: Selection::default(),
        };
        let id = self.add_box(kind)?;
        self.connect(from.0, from.1, id, 0)?;
        Ok(id)
    }
}
